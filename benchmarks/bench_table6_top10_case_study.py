"""Table VI: top-10 similar resources for the physics-vs-java subject.

Paper result: the January list is all Java sites (0/10 right), FC fixes
almost nothing (4/10), FP recovers 9/10 of the ideal year-end list.
"""

from repro.experiments import run_case_study


def test_table6_physics_subject(benchmark, bench_case_scenario):
    result = benchmark.pedantic(
        lambda: run_case_study(bench_case_scenario, budget=2500),
        rounds=1,
        iterations=1,
    )
    physics = result.subjects[0]
    print("\n== Table VI: top-10 for the physics-vs-java subject ==")
    print(physics.render(result.labels))

    fp_column = next(k for k in physics.overlaps if k.startswith("FP"))
    fc_column = next(k for k in physics.overlaps if k.startswith("FC"))
    assert physics.overlaps["Jan 31"] <= 3  # the wrong (Java) list
    assert physics.overlaps[fp_column] >= 7  # paper: 9/10
    assert physics.overlaps[fp_column] > physics.overlaps[fc_column]
