"""Ablation: FP vs stability-aware FP (online stopping).

Plain FP keeps buying posts for resources whose rfds have already
stabilised once the waterline passes their stable points; the
stability-aware variant (an extension of this repo, in the spirit of
Section VI) detects stability *from observed posts only* and retires
such resources.  At large budgets it spends less for the same quality.
"""

from repro.allocation import FewestPostsFirst, StabilityAwareFewestPosts


def test_adaptive_stop_saves_budget(benchmark, bench_harness):
    split = bench_harness.split
    budget = min(6000, split.total_future_posts)

    def run_aware():
        return bench_harness.runner.run(
            StabilityAwareFewestPosts(omega=5, tau=0.999), budget
        )

    aware = benchmark.pedantic(run_aware, rounds=1, iterations=1)
    plain = bench_harness.runner.run(FewestPostsFirst(), budget)

    aware_quality = bench_harness.evaluator.quality_of_x(aware.x)
    plain_quality = bench_harness.evaluator.quality_of_x(plain.x)
    print(
        f"\nplain FP : spent {plain.budget_spent}, quality {plain_quality:.4f}\n"
        f"FP-stop  : spent {aware.budget_spent}, quality {aware_quality:.4f}"
    )
    # The online stopper cannot spend more, and keeps ~all the quality.
    assert aware.budget_spent <= plain.budget_spent
    assert aware_quality >= plain_quality - 0.02
