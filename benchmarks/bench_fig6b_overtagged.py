"""Fig 6(b): number of over-tagged resources vs budget.

Paper shape: FC and RR push more resources past their stable points;
FP, MU and FP-MU never do.
"""

from repro.allocation import RoundRobin
from repro.experiments import render_figure_6b


def test_fig6b_overtagged_resources(benchmark, bench_harness, bench_comparison):
    budget = bench_harness.scale.max_budget
    benchmark.pedantic(
        lambda: bench_harness.runner.run(RoundRobin(), budget), rounds=3, iterations=1
    )
    print("\n== Fig 6(b): over-tagged resources vs budget ==")
    print(render_figure_6b(bench_comparison))

    comparison = bench_comparison
    for name in ("FP", "MU", "FP-MU"):
        series = comparison[name]
        assert series.over_tagged[-1] == series.over_tagged[0], name
    assert comparison["FC"].over_tagged[-1] >= comparison["FC"].over_tagged[0]
    assert comparison["RR"].over_tagged[-1] >= comparison["RR"].over_tagged[0]
