"""Section V-B: budget needed to bring EVERY resource to stability.

Paper result: FC needs > 2M post tasks where FP/FP-MU need ~200k — a
90% saving.  The reproduction shows the same direction: FP reaches full
stability far cheaper than FC, and MU never gets there at all (it
cannot see sub-ω resources).
"""

from repro.experiments import budget_to_stability


def test_budget_to_full_stability(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: budget_to_stability(bench_harness), rounds=1, iterations=1
    )
    print("\n" + result.render())

    fp = result.budgets["FP"]
    fc = result.budgets["FC"]
    assert fp is not None
    if fc is not None:
        saving = 1.0 - fp / fc
        print(f"FP saves {saving:.0%} of FC's budget (paper: ~90%)")
        assert fp < fc
    assert result.budgets["MU"] is None
