"""Fig 6(c): wasted post tasks vs budget.

Paper shape: FC wastes roughly half its tasks on already-over-tagged
resources; RR wastes some; FP / MU / FP-MU waste none.
"""

from repro.allocation import FreeChoice
from repro.experiments import render_figure_6c


def test_fig6c_wasted_posts(benchmark, bench_harness, bench_comparison):
    budget = bench_harness.scale.max_budget
    benchmark.pedantic(
        lambda: bench_harness.runner.run(FreeChoice(), budget), rounds=3, iterations=1
    )
    print("\n== Fig 6(c): wasted post tasks vs budget ==")
    print(render_figure_6c(bench_comparison))

    comparison = bench_comparison
    for name in ("FP", "MU", "FP-MU"):
        assert comparison[name].wasted[-1] == 0, name
    fc_wasted = int(comparison["FC"].wasted[-1])
    print(f"\nFC wasted {fc_wasted}/{budget} tasks "
          f"({100.0 * fc_wasted / budget:.0f}%; paper: ~48%)")
    assert fc_wasted > 0.2 * budget
    assert fc_wasted >= comparison["RR"].wasted[-1]
