"""Load replay: per-batch ingest latency under an interleaved live feed.

The throughput benches answer "how fast can the engine chew a backlog";
this one answers the operational question: when an interleaved
multi-user stream (:func:`repro.simulate.interleaved_event_stream`)
arrives in bursts, what latency does each arrival batch see at the
engine, and how deep does the arrival queue get?

The replay models a live feed deterministically: arrival ticks push
fixed-size event chunks onto a queue (with a repeating burst pattern, so
the queue depth actually oscillates), and the engine drains the queue
every tick, one chunk per :meth:`~repro.engine.IngestEngine.submit`.
Each drain is timed through an enabled :class:`repro.obs.Telemetry` —
the same histogram machinery a production run would use — and the
``replay.ingest`` p50/p95/p99 land in the bench-metric registry
(informational; absolute latencies are machine-dependent).

Set ``REPLAY_TRACE_JSONL=<path>`` to also stream the per-chunk spans as
a Chrome-trace JSONL (CI uploads this as an artifact; render it with
``repro-tagging stats <path>``).

The second test gates the tentpole's zero-overhead contract:
``obs.enabled_overhead_ratio`` is the bank's ingest rate with telemetry
*enabled* over the rate with telemetry *disabled*, measured
back-to-back in the same process.  Telemetry off must be free (the hot
path pays one attribute check), and on it must stay cheap — the ratio
is a machine-independent property of the instrumentation and is
regression-gated against ``BENCH_BASELINE.json``.
"""

import os
import time
from collections import deque

import pytest

import _metrics
from repro import obs
from repro.engine import IngestEngine, StabilityBank
from repro.engine.events import encode_events
from repro.simulate import interleaved_event_stream
from repro.simulate.popularity import PopularityConfig

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 120 if SMOKE else 400
OMEGA = 5
TAU = 0.99
ARRIVAL_CHUNK = 256 if SMOKE else 512
"""Events per arrival tick (one queued chunk)."""

BURST_PATTERN = (1, 1, 2, 1, 3)
"""Chunks arriving per tick, cycled — bursts make the queue oscillate."""

OVERHEAD_ROUNDS = 3 if SMOKE else 5
MIN_OVERHEAD_RATIO = 0.80 if SMOKE else 0.90
"""Hard floor for enabled/disabled throughput (the gate is tighter)."""

POPULARITY = (
    PopularityConfig(min_posts=30, max_posts=160)
    if SMOKE
    else PopularityConfig(min_posts=60, max_posts=400)
)


@pytest.fixture(scope="module")
def replay_events():
    """An interleaved multi-user stream, materialised once."""
    return list(
        interleaved_event_stream(
            n_resources=N_RESOURCES, seed=23, popularity=POPULARITY
        )
    )


def test_load_replay_latency(replay_events):
    events = replay_events
    chunks = [
        events[start : start + ARRIVAL_CHUNK]
        for start in range(0, len(events), ARRIVAL_CHUNK)
    ]

    trace_path = os.environ.get("REPLAY_TRACE_JSONL") or None
    telemetry = obs.Telemetry(trace_path=trace_path)
    previous = obs.set_active(telemetry)
    try:
        # constructed under the active telemetry (capture-at-construction)
        engine = IngestEngine.create(
            omega=OMEGA, tau=TAU, batch_size=ARRIVAL_CHUNK
        )
        queue: deque = deque()
        max_depth = 0
        arrivals = iter(chunks)
        tick = 0
        exhausted = False
        while not exhausted or queue:
            if not exhausted:
                for _ in range(BURST_PATTERN[tick % len(BURST_PATTERN)]):
                    chunk = next(arrivals, None)
                    if chunk is None:
                        exhausted = True
                        break
                    queue.append(chunk)
            tick += 1
            max_depth = max(max_depth, len(queue))
            if queue:  # drain one chunk per tick: bursts build a backlog
                chunk = queue.popleft()
                with telemetry.span(
                    "replay.ingest", events=len(chunk), depth=len(queue)
                ):
                    engine.submit(chunk)
        telemetry.gauge("replay.max_queue_depth", max_depth)
        snapshot = telemetry.snapshot()
    finally:
        obs.set_active(previous)
        telemetry.close()

    ingest = snapshot["histograms"]["replay.ingest"]
    assert ingest["count"] == len(chunks)
    assert engine.stats.events == len(events)
    assert max_depth > 1, "burst pattern never built a backlog"

    for quantile in ("p50", "p95", "p99"):
        _metrics.record(
            f"replay.ingest_{quantile}_ms",
            ingest[quantile],
            unit="ms",
            higher_is_better=False,
            gate=False,  # absolute latency is machine-dependent
        )
    _metrics.record(
        "replay.max_queue_depth", max_depth, unit="chunks",
        higher_is_better=False, gate=False,
    )
    print(
        f"\nreplayed {len(events):,} events in {len(chunks)} chunks of "
        f"{ARRIVAL_CHUNK} (max queue depth {max_depth})\n"
        f"  ingest latency: p50 {ingest['p50']:.3f} ms, "
        f"p95 {ingest['p95']:.3f} ms, p99 {ingest['p99']:.3f} ms"
        + (f"\n  trace written to {trace_path}" if trace_path else "")
    )


def test_telemetry_overhead_ratio(replay_events):
    """Telemetry off must be free; the gate watches enabled/disabled."""
    events = replay_events
    n = len(events)
    batch_size = 8192 if SMOKE else 32768
    batches = [events[i : i + batch_size] for i in range(0, n, batch_size)]

    def timed_ingest() -> float:
        """One full pass: fresh bank under the *current* telemetry."""
        bank = StabilityBank(OMEGA, TAU, initial_rows=N_RESOURCES + 24)
        encoded = [
            encode_events(batch, tags=bank.tags, resources=bank.resources)
            for batch in batches
        ]
        started = time.perf_counter()
        for batch in encoded:
            bank.ingest(batch)
        return time.perf_counter() - started

    disabled_best = enabled_best = float("inf")
    telemetry = obs.Telemetry()
    try:
        # interleave the passes so both see the same machine state
        for _ in range(OVERHEAD_ROUNDS):
            disabled_best = min(disabled_best, timed_ingest())
            previous = obs.set_active(telemetry)
            try:
                enabled_best = min(enabled_best, timed_ingest())
            finally:
                obs.set_active(previous)
    finally:
        telemetry.close()

    disabled_rate = n / disabled_best
    enabled_rate = n / enabled_best
    ratio = enabled_rate / disabled_rate
    _metrics.record("obs.enabled_overhead_ratio", ratio, unit="x")
    _metrics.record(
        "obs.enabled_events_per_s", enabled_rate, unit="events/s", gate=False
    )
    print(
        f"\nbank ingest, telemetry off: {disabled_rate:12,.0f} events/s\n"
        f"bank ingest, telemetry on : {enabled_rate:12,.0f} events/s "
        f"({ratio:.3f}x)"
    )
    assert ratio >= MIN_OVERHEAD_RATIO, (
        f"enabled telemetry costs too much: {ratio:.3f}x of the disabled rate"
    )
