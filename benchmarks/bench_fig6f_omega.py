"""Fig 6(f): the effect of ω on MU and FP-MU.

Paper shape: MU's quality falls as ω grows (more resources become
invisible); FP-MU tracks slightly above FP until its warm-up consumes
the whole budget, after which it *is* FP.
"""

from repro.experiments import figure_6f


def test_fig6f_omega_sweep(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: figure_6f(harness=bench_harness), rounds=1, iterations=1
    )
    print("\n== Fig 6(f): effect of omega ==")
    print(f"(budget {result.budget})")
    print(result.render())

    # MU declines with omega.
    assert result.mu_quality[0] > result.mu_quality[-1]
    # FP-MU never falls meaningfully below FP.
    assert (result.fpmu_quality >= result.fp_quality - 0.01).all()
    # Warm-up grows with omega and eventually saturates the budget.
    assert result.fpmu_warmup[-1] >= result.fpmu_warmup[0]
    saturated = result.fpmu_warmup >= result.budget
    if saturated.any():
        import numpy as np
        for i in np.flatnonzero(saturated):
            assert abs(result.fpmu_quality[i] - result.fp_quality) < 1e-9
