"""Fig 6(g): runtime vs budget, per strategy and for DP.

Paper shape: DP's runtime explodes with the budget while the online
strategies grow near-linearly and stay orders of magnitude faster.
These benches time each strategy individually via pytest-benchmark; the
summary table printed at the end uses the library's wall-clock sweep.
"""

import pytest

from repro.allocation import (
    FewestPostsFirst,
    FreeChoice,
    HybridFPMU,
    MostUnstableFirst,
    RoundRobin,
    gains_from_profiles,
    solve_dp,
)
from repro.experiments import runtime_vs_budget

STRATEGIES = {
    "FC": FreeChoice,
    "RR": RoundRobin,
    "FP": FewestPostsFirst,
    "MU": lambda: MostUnstableFirst(omega=5),
    "FP-MU": lambda: HybridFPMU(omega=5),
}


@pytest.mark.parametrize("name", list(STRATEGIES))
@pytest.mark.parametrize("budget", [500, 1500])
def test_strategy_runtime(benchmark, bench_harness, name, budget):
    factory = STRATEGIES[name]
    benchmark.pedantic(
        lambda: bench_harness.runner.run(factory(), budget), rounds=3, iterations=1
    )


@pytest.mark.parametrize("budget", [500, 1500])
def test_dp_runtime(benchmark, bench_harness, budget):
    gains = gains_from_profiles(
        bench_harness.truth.profiles, bench_harness.split.initial_counts, budget
    )
    benchmark.pedantic(lambda: solve_dp(gains, budget), rounds=3, iterations=1)


def test_fig6g_summary_table(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: runtime_vs_budget(
            harness=bench_harness, budgets=(300, 600, 900, 1200, 1500)
        ),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig 6(g): runtime (s) vs budget ==")
    print(result.render())
    # DP is the slow one, and it grows super-linearly with the budget.
    assert result.seconds["DP"][-1] > result.seconds["FP"][-1]
    assert result.seconds["DP"][-1] > 1.5 * result.seconds["DP"][0]
