"""Campaign stability backends: tracker vs engine vs sharded (serial + pooled).

The campaign's step-3 bookkeeping (Fig 2) is its stability hot path;
after the monitor unification all backends run behind one
:class:`~repro.allocation.monitor.StabilityMonitor` interface, so this
bench measures exactly what a deployment chooses between:

* ``tracker``  — per-post scalar updates, per-post retirement;
* ``engine``   — one vectorized bank ingest per epoch;
* ``sharded``  — the same, split across hash-routed shard banks
  (vectorized CRC routing + the small-batch scalar kernel keep the
  per-epoch shard flushes cheap);
* ``sharded+pool`` — the sharded backend with its per-shard kernels
  forced through a thread pool (the inline small-flush cutoff zeroed,
  so the pool genuinely engages every epoch);
* ``sharded+proc`` — the process shard engine: long-lived workers own
  their shard's bank, per-epoch flushes travel through shared-memory
  buffers.

Asserted invariants:

* ``engine``, ``sharded``, ``sharded+pool`` and ``sharded+proc``
  produce **byte-identical campaigns** (sharding is a memory-layout
  choice and the executor a scheduling choice — neither is semantic);
* every backend reconciles its ledger and completes the same spend.

Recorded metrics (see ``BENCH_BASELINE.json``):

* ``campaign.engine_vs_tracker_ratio`` — ungated trend metric;
* ``campaign.sharded_vs_tracker_ratio`` — **gated**: the best sharded
  configuration must stay competitive with the scalar tracker;
* ``campaign.sharded_parallel_vs_serial_ratio`` — pooled over serial
  sharded (>1 means the pool wins).  Ungated, and read it for what it
  is: campaign epochs flush ~100 events (~25/shard), a regime where the
  per-shard kernels are GIL-bound at *any* core count (the scalar
  small-batch path is pure Python, and even the vectorized pass at that
  size is mostly NumPy dispatch), so this config measures forced pool
  round-trip overhead, not parallel speedup — which is exactly why the
  production default keeps such tiny flushes inline
  (``PARALLEL_MIN_EVENTS``).  A regression here means dispatch got more
  expensive.  Genuine overlap needs bulk-ingest batch sizes on
  multi-core hosts.
* ``campaign.sharded_process_vs_serial_ratio`` — the process shard
  engine over serial sharded.  Gated only where the runner has more
  than one core (the gate flag is recorded from the baseline host);
  on a single core it measures IPC round-trip overhead, not speedup,
  and stays informational.

(At campaign scale the worker simulation dominates wall-clock, so the
tracker ratios hover near 1 — the gates watch for the monitor path
*regressing*, e.g. an accidental per-post flush.)

Timings take the best of interleaved rounds to damp scheduler noise.
"""

import os
import time

import pytest

import _metrics
import repro.api as api
from repro.api import CampaignSpec, CorpusSpec, ExecutionSpec

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 100 if SMOKE else 250
BUDGET = 6_000 if SMOKE else 25_000
WORKERS = 10
SHARDS = 4
POOL_WORKERS = 4
ROUNDS = 2 if SMOKE else 5
CONFIGS = ("tracker", "engine", "sharded", "sharded+pool", "sharded+proc")

# Worker simulation dominates; the monitor must stay within the noise.
MAX_SLOWDOWN = 1.6 if SMOKE else 1.35

_EXECUTION = {
    None: ExecutionSpec(backend="serial", shards=SHARDS),
    "pool": ExecutionSpec(backend="thread", shards=SHARDS, workers=POOL_WORKERS),
    "proc": ExecutionSpec(backend="process", shards=SHARDS, workers=POOL_WORKERS),
}


def make_spec(config: str) -> CampaignSpec:
    backend, _, variant = config.partition("+")
    return CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=N_RESOURCES, seed=13),
        strategy="FP",
        budget=BUDGET,
        workers=WORKERS,
        seed=5,
        omega=5,
        stop_tau=0.99,
        stability_backend=backend,
        execution=_EXECUTION[variant or None],
        batch_size=100,
        max_epochs=500,
    )


def trace_of(result) -> tuple:
    """Everything trace-visible, for cross-backend identity checks."""
    return (
        tuple(
            (r.epoch, r.published, r.completed, r.unfilled, r.spent, r.observed_stable)
            for r in result.reports
        ),
        tuple(result.final_counts.tolist()),
        tuple(sorted(result.stopped_resources)),
        tuple(
            tuple(sorted(map(tuple, (sorted(p.tags) for p in posts))))
            for posts in result.bought_posts
        ),
    )


@pytest.fixture(scope="module")
def campaign_corpus():
    return api.materialize(make_spec("tracker").corpus)


def test_campaign_backends(campaign_corpus):
    from repro.service import IncentiveCampaign

    best = {config: float("inf") for config in CONFIGS}
    results = {}
    for _ in range(ROUNDS):
        for config in CONFIGS:
            spec = make_spec(config)
            campaign = IncentiveCampaign.from_spec(spec, campaign_corpus)
            try:
                if "+" in config:
                    # zero the inline cutoff: measure true pool dispatch
                    campaign.monitor.parallel_min_events = 0
                started = time.perf_counter()
                results[config] = campaign.run(max_epochs=spec.max_epochs)
                best[config] = min(best[config], time.perf_counter() - started)
            finally:
                campaign.close()

    completed = {c: results[c].total_completed for c in CONFIGS}
    print(
        f"\ncampaign: {N_RESOURCES} resources, budget {BUDGET:,}, "
        f"{WORKERS} workers (FP, omega=5, tau=0.99, "
        f"{SHARDS} shards, pool={POOL_WORKERS})"
    )
    for config in CONFIGS:
        rate = completed[config] / best[config]
        print(
            f"  {config:12s}: {best[config]:6.2f}s  {rate:10,.0f} tasks/s  "
            f"({completed[config]} completed, "
            f"{len(results[config].stopped_resources)} stopped)"
        )

    engine_ratio = best["tracker"] / best["engine"]
    best_sharded = min(best["sharded"], best["sharded+pool"])
    sharded_ratio = best["tracker"] / best_sharded
    parallel_ratio = best["sharded"] / best["sharded+pool"]
    process_ratio = best["sharded"] / best["sharded+proc"]
    # engine_vs_tracker stays an ungated trend metric (worker simulation
    # noise); sharded_vs_tracker is gated now that routing is vectorized
    # and tiny shard flushes take the scalar fast path — a regression
    # here means the parallel-ingestion machinery itself got slower.
    _metrics.record(
        "campaign.engine_vs_tracker_ratio", engine_ratio, unit="x", gate=False
    )
    _metrics.record(
        "campaign.sharded_vs_tracker_ratio", sharded_ratio, unit="x", gate=True
    )
    _metrics.record(
        "campaign.sharded_parallel_vs_serial_ratio",
        parallel_ratio,
        unit="x",
        gate=False,
    )
    # the gate flag is read from the committed baseline, so regenerating
    # the baseline on a multi-core host turns enforcement on there and
    # leaves single-core baselines informational
    _metrics.record(
        "campaign.sharded_process_vs_serial_ratio",
        process_ratio,
        unit="x",
        gate=(os.cpu_count() or 1) > 1,
    )
    _metrics.record(
        "campaign.tracker_tasks_per_s",
        completed["tracker"] / best["tracker"],
        unit="tasks/s",
        gate=False,
    )

    # --- semantics ---------------------------------------------------------
    engine_trace = trace_of(results["engine"])
    assert engine_trace == trace_of(results["sharded"]), (
        "sharded campaign diverged from the single-bank engine campaign"
    )
    assert engine_trace == trace_of(results["sharded+pool"]), (
        "pooled sharded campaign diverged from the serial sharded campaign"
    )
    assert engine_trace == trace_of(results["sharded+proc"]), (
        "process sharded campaign diverged from the serial sharded campaign"
    )
    for config in CONFIGS:
        assert results[config].ledger.reconcile()
        assert results[config].ledger.spent == completed[config]

    # --- the acceptance bar ------------------------------------------------
    assert engine_ratio >= 1.0 / MAX_SLOWDOWN, (
        f"engine-backed campaign is {1 / engine_ratio:.2f}x slower than tracker"
    )
    assert sharded_ratio >= 1.0 / MAX_SLOWDOWN, (
        f"sharded-backed campaign is {1 / sharded_ratio:.2f}x slower than tracker"
    )
