"""Campaign stability backends: tracker vs engine vs sharded.

The campaign's step-3 bookkeeping (Fig 2) is its stability hot path;
after the monitor unification all three backends run behind one
:class:`~repro.allocation.monitor.StabilityMonitor` interface, so this
bench measures exactly what a deployment chooses between:

* ``tracker`` — per-post scalar updates, per-post retirement;
* ``engine``  — one vectorized bank ingest per epoch;
* ``sharded`` — the same, split across hash-routed shard banks.

Asserted invariants:

* ``engine`` and ``sharded`` produce **byte-identical campaigns**
  (sharding is a memory-layout choice, not a semantic one);
* every backend reconciles its ledger and completes the same spend.

The recorded engine-vs-tracker ratio is gated by CI against
``BENCH_BASELINE.json``.  (At campaign scale the worker simulation
dominates wall-clock, so the ratio hovers near 1 — the gate watches for
the monitor path *regressing*, e.g. an accidental per-post flush.)

Timings take the best of interleaved rounds to damp scheduler noise.
"""

import time

import pytest

import _metrics
import repro.api as api
from repro.api import CampaignSpec, CorpusSpec

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 100 if SMOKE else 250
BUDGET = 6_000 if SMOKE else 25_000
WORKERS = 10
ROUNDS = 2 if SMOKE else 3
BACKENDS = ("tracker", "engine", "sharded")

# Worker simulation dominates; the monitor must stay within the noise.
MAX_SLOWDOWN = 1.6 if SMOKE else 1.35


def make_spec(backend: str) -> CampaignSpec:
    return CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=N_RESOURCES, seed=13),
        strategy="FP",
        budget=BUDGET,
        workers=WORKERS,
        seed=5,
        omega=5,
        stop_tau=0.99,
        stability_backend=backend,
        batch_size=100,
        max_epochs=500,
    )


def trace_of(result) -> tuple:
    """Everything trace-visible, for cross-backend identity checks."""
    return (
        tuple(
            (r.epoch, r.published, r.completed, r.unfilled, r.spent, r.observed_stable)
            for r in result.reports
        ),
        tuple(result.final_counts.tolist()),
        tuple(sorted(result.stopped_resources)),
        tuple(
            tuple(sorted(map(tuple, (sorted(p.tags) for p in posts))))
            for posts in result.bought_posts
        ),
    )


@pytest.fixture(scope="module")
def campaign_corpus():
    return api.materialize(make_spec("tracker").corpus)


def test_campaign_backends(campaign_corpus):
    from repro.service import IncentiveCampaign

    best = {backend: float("inf") for backend in BACKENDS}
    results = {}
    for _ in range(ROUNDS):
        for backend in BACKENDS:
            spec = make_spec(backend)
            campaign = IncentiveCampaign.from_spec(spec, campaign_corpus)
            started = time.perf_counter()
            results[backend] = campaign.run(max_epochs=spec.max_epochs)
            best[backend] = min(best[backend], time.perf_counter() - started)

    completed = {b: results[b].total_completed for b in BACKENDS}
    print(
        f"\ncampaign: {N_RESOURCES} resources, budget {BUDGET:,}, "
        f"{WORKERS} workers (FP, omega=5, tau=0.99)"
    )
    for backend in BACKENDS:
        rate = completed[backend] / best[backend]
        print(
            f"  {backend:8s}: {best[backend]:6.2f}s  {rate:10,.0f} tasks/s  "
            f"({completed[backend]} completed, "
            f"{len(results[backend].stopped_resources)} stopped)"
        )

    engine_ratio = best["tracker"] / best["engine"]
    sharded_ratio = best["tracker"] / best["sharded"]
    # Worker simulation dominates campaign wall-clock, so these ratios
    # hover near 1 with real scheduler noise: recorded for trend-watching
    # but ungated — the in-bench MAX_SLOWDOWN asserts catch a genuinely
    # regressed monitor path (e.g. an accidental per-post flush).
    _metrics.record(
        "campaign.engine_vs_tracker_ratio", engine_ratio, unit="x", gate=False
    )
    _metrics.record(
        "campaign.sharded_vs_tracker_ratio", sharded_ratio, unit="x", gate=False
    )
    _metrics.record(
        "campaign.tracker_tasks_per_s",
        completed["tracker"] / best["tracker"],
        unit="tasks/s",
        gate=False,
    )

    # --- semantics ---------------------------------------------------------
    assert trace_of(results["engine"]) == trace_of(results["sharded"]), (
        "sharded campaign diverged from the single-bank engine campaign"
    )
    for backend in BACKENDS:
        assert results[backend].ledger.reconcile()
        assert results[backend].ledger.spent == completed[backend]

    # --- the acceptance bar ------------------------------------------------
    assert engine_ratio >= 1.0 / MAX_SLOWDOWN, (
        f"engine-backed campaign is {1 / engine_ratio:.2f}x slower than tracker"
    )
    assert sharded_ratio >= 1.0 / MAX_SLOWDOWN, (
        f"sharded-backed campaign is {1 / sharded_ratio:.2f}x slower than tracker"
    )
