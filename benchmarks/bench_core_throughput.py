"""Microbenchmarks: Table V's "efficient in time and space" claims.

Times the core operations everything else is built from — post
ingestion with incremental adjacent similarity, MA tracking, quality
profiling, and corpus generation — so the per-strategy costs in
Figs 6(g)/(h) can be decomposed.
"""

import numpy as np
import pytest

from repro.core.frequency import TagFrequencyTable
from repro.core.quality import QualityProfile
from repro.core.stability import StabilityTracker
from repro.simulate import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def long_sequence(bench_harness):
    resources = bench_harness.corpus.dataset.resources
    longest = max(resources, key=lambda r: len(r.sequence))
    return longest.sequence


def test_frequency_table_ingest(benchmark, long_sequence):
    def ingest():
        table = TagFrequencyTable()
        for post in long_sequence:
            table.add_post(post.tags)
        return table

    table = benchmark(ingest)
    rate = len(long_sequence) / benchmark.stats.stats.mean
    print(f"\ningested {len(long_sequence)} posts "
          f"({rate:,.0f} posts/s incl. adjacent similarity)")
    assert table.num_posts == len(long_sequence)


def test_stability_tracker_ingest(benchmark, long_sequence):
    def ingest():
        tracker = StabilityTracker(omega=5, tau=0.999)
        tracker.add_posts(long_sequence)
        return tracker

    tracker = benchmark(ingest)
    assert tracker.num_posts == len(long_sequence)


def test_quality_profile_build(benchmark, bench_harness, long_sequence):
    index = max(
        range(len(bench_harness.truth.profiles)),
        key=lambda i: len(bench_harness.truth.profiles[i]),
    )
    stable_rfd = bench_harness.truth.stable_rfds[index]
    sequence = bench_harness.corpus.dataset.resources[index].sequence

    profile = benchmark(lambda: QualityProfile(sequence, stable_rfd))
    assert len(profile) == len(sequence)


def test_corpus_generation_throughput(benchmark):
    def generate():
        return CorpusGenerator(CorpusConfig(n_resources=40), seed=3).generate()

    corpus = benchmark.pedantic(generate, rounds=3, iterations=1)
    posts = corpus.dataset.total_posts
    print(f"\ngenerated {posts} posts across 40 resources")
    assert posts > 1000
