"""Fig 6(e): effect of the number of resources at a fixed budget.

Paper shape: quality falls as the corpus grows (fixed budget spread
thinner); FP and FP-MU stay closest to DP at every size.
"""

from repro.experiments import figure_6e


def test_fig6e_quality_vs_resources(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: figure_6e(harness=bench_harness), rounds=1, iterations=1
    )
    print("\n== Fig 6(e): quality vs number of resources ==")
    print(f"(fixed budget {result.budget})")
    print(result.render())

    assert result.quality["DP"][0] >= result.quality["DP"][-1]
    for i in range(len(result.resource_counts)):
        assert result.quality["FP"][i] <= result.quality["DP"][i] + 1e-9
        assert result.quality["FC"][i] <= result.quality["DP"][i] + 1e-9
    # FP tracks DP more closely than FC does, at every corpus size.
    for i in range(len(result.resource_counts)):
        fp_gap = result.quality["DP"][i] - result.quality["FP"][i]
        fc_gap = result.quality["DP"][i] - result.quality["FC"][i]
        assert fp_gap <= fc_gap + 1e-9
