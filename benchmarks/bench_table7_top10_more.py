"""Table VII: more top-10 comparisons, including the espn control.

Paper result: FP matches the ideal Dec-31 list far better than FC on
every early-biased subject; the over-popular control ("espn") is
correct in all four columns because free tagging already covered it.
"""

from repro.experiments import run_case_study


def test_table7_remaining_subjects(benchmark, bench_case_scenario):
    result = benchmark.pedantic(
        lambda: run_case_study(bench_case_scenario, budget=2500),
        rounds=1,
        iterations=1,
    )
    print("\n== Table VII: all case-study subjects ==")
    for subject in result.subjects:
        overlap_line = "  ".join(
            f"{name}={value}/10" for name, value in subject.overlaps.items()
        )
        print(f"{subject.subject.story:30s} {overlap_line}")

    for subject in result.subjects[:3]:  # the early-biased subjects
        fp_column = next(k for k in subject.overlaps if k.startswith("FP"))
        fc_column = next(k for k in subject.overlaps if k.startswith("FC"))
        assert subject.overlaps[fp_column] > subject.overlaps[fc_column]
    control = result.subjects[-1]
    assert all(value >= 9 for value in control.overlaps.values())
