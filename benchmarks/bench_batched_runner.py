"""Batched allocation: scalar loop vs ``batch_size=64`` + engine monitor.

The acceptance bar for the batched CHOOSE protocol, on a 1,000-resource
*generative* run (unbounded posts, so no replay exhaustion muddies the
timing):

* the batched path must deliver a **byte-identical task trace** — the
  protocol is exact, not approximate;
* with the engine-backed :class:`BankStabilityMonitor` receiving posts
  one chunk at a time, it must **beat the scalar campaign path**
  (``batch_size=1`` + per-post :class:`TrackerStabilityMonitor`) on
  wall-clock.

A second test drives the same comparison through ``repro.api.run`` specs
end to end (corpus materialization included) and pins trace identity
there too.

Timings take the best of three interleaved rounds to damp scheduler
noise.
"""

import time

import pytest

import _metrics
from repro.core import Post
from repro.allocation import (
    BankStabilityMonitor,
    FewestPostsFirst,
    IncentiveRunner,
    TrackerStabilityMonitor,
)

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 300 if SMOKE else 1000
BUDGET = 9_000 if SMOKE else 30_000
BATCH = 64
OMEGA = 5
TAU = 0.99
ROUNDS = 2 if SMOKE else 3

# In smoke mode the hard wall-clock bar is relaxed (noisy shared CI
# runners); the recorded ratio is gated against BENCH_BASELINE.json.
MIN_SPEEDUP = 0.9 if SMOKE else 1.0

_POOLS = [tuple(f"t{i}_{j}" for j in range(40)) for i in range(N_RESOURCES)]


def _post(index: int, position: int) -> Post:
    """Deterministic synthetic post: ~12 tags from the resource's pool."""
    pool = _POOLS[index]
    tags = {pool[(position * 7 + m * m) % 40] for m in range(12)}
    return Post(frozenset(tags), timestamp=float(position))


@pytest.fixture(scope="module")
def generative_setup():
    """Initial state plus a deterministic post factory over 1k resources."""
    import numpy as np

    counts = np.array([3 + (i % 13) for i in range(N_RESOURCES)], dtype=np.int64)
    initial_posts = [
        [_post(i, p) for p in range(int(counts[i]))] for i in range(N_RESOURCES)
    ]

    def make_runner() -> IncentiveRunner:
        positions = counts.astype(int).tolist()

        def factory(index: int) -> Post:
            positions[index] += 1
            return _post(index, positions[index] - 1)

        return IncentiveRunner.generative(counts, initial_posts, factory)

    return make_runner


def test_batched_engine_beats_scalar_campaign_path(generative_setup):
    make_runner = generative_setup
    scalar_best = batched_best = float("inf")
    scalar_trace = batched_trace = None
    scalar_monitor = batched_monitor = None
    for _ in range(ROUNDS):
        scalar_monitor = TrackerStabilityMonitor(OMEGA, TAU)
        runner = make_runner()
        started = time.perf_counter()
        scalar_trace = runner.run(
            FewestPostsFirst(), BUDGET, monitor=scalar_monitor
        )
        scalar_best = min(scalar_best, time.perf_counter() - started)

        batched_monitor = BankStabilityMonitor(OMEGA, TAU)
        runner = make_runner()
        started = time.perf_counter()
        batched_trace = runner.run(
            FewestPostsFirst(), BUDGET, batch_size=BATCH, monitor=batched_monitor
        )
        batched_best = min(batched_best, time.perf_counter() - started)

    ratio = scalar_best / batched_best
    print(
        f"\n{BUDGET:,} tasks over {N_RESOURCES} resources "
        f"(FP, omega={OMEGA}, tau={TAU})\n"
        f"  scalar loop + tracker monitor : {BUDGET / scalar_best:10,.0f} tasks/s\n"
        f"  batch={BATCH:3d} + engine monitor  : {BUDGET / batched_best:10,.0f} tasks/s"
        f"  ({ratio:.2f}x)"
    )

    _metrics.record("runner.batched_vs_scalar_ratio", ratio, unit="x")
    _metrics.record(
        "runner.batched_tasks_per_s", BUDGET / batched_best, unit="tasks/s", gate=False
    )

    # --- exactness: the batched path replays the scalar decisions ---------
    assert batched_trace.order == scalar_trace.order, "delivered-task traces diverge"
    assert batched_trace.spend == scalar_trace.spend
    assert batched_monitor.stable_indices() == scalar_monitor.stable_indices()
    assert batched_monitor.drain_newly_stable() == scalar_monitor.drain_newly_stable()

    # --- the acceptance bar ------------------------------------------------
    assert ratio >= MIN_SPEEDUP, (
        f"batched path is not faster: {batched_best:.3f}s vs scalar {scalar_best:.3f}s"
    )


def test_api_run_batched_matches_scalar():
    """The same comparison through declarative specs, corpus build included."""
    from repro.api import AllocateSpec, CorpusSpec, run

    corpus = CorpusSpec(kind="paper", resources=40 if SMOKE else 60, seed=7)
    base = AllocateSpec(
        corpus=corpus, strategy="FP", budget=1_500 if SMOKE else 4_000,
        mode="generative", seed=3,
    )
    timings = {}
    results = {}
    for label, spec in (
        ("scalar+tracker", base.replace(batch_size=1, stability="tracker")),
        ("batch64+engine", base.replace(batch_size=BATCH, stability="engine")),
    ):
        started = time.perf_counter()
        results[label] = run(spec)
        timings[label] = time.perf_counter() - started
    print(
        f"\nrepro.api.run, {base.budget:,} generative tasks on a "
        f"{corpus.resources}-resource paper corpus (corpus build included):\n"
        + "\n".join(f"  {label:15s}: {elapsed:6.2f}s" for label, elapsed in timings.items())
    )
    assert (
        results["scalar+tracker"].details["order"]
        == results["batch64+engine"].details["order"]
    ), "api-level delivered-task traces diverge"
    assert (
        results["scalar+tracker"].metrics["observed_stable"]
        == results["batch64+engine"].metrics["observed_stable"]
    )
