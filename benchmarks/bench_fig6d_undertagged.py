"""Fig 6(d): percentage of under-tagged resources vs budget.

Paper shape: FP shows a late sharp drop to zero (it floods the lowest
counts first, then everything crosses the 10-post threshold at once);
MU drops early but plateaus at the sub-ω floor it cannot see; FC barely
moves.
"""

import numpy as np

from repro.allocation import HybridFPMU
from repro.experiments import render_figure_6d


def test_fig6d_undertagged_fraction(benchmark, bench_harness, bench_comparison):
    budget = bench_harness.scale.max_budget
    omega = bench_harness.scale.omega
    benchmark.pedantic(
        lambda: bench_harness.runner.run(HybridFPMU(omega=omega), budget),
        rounds=3,
        iterations=1,
    )
    print("\n== Fig 6(d): under-tagged fraction vs budget ==")
    print(render_figure_6d(bench_comparison))

    comparison = bench_comparison
    assert comparison["FP"].under_fraction[-1] == 0.0
    assert comparison["FP-MU"].under_fraction[-1] == 0.0
    # MU plateaus at its ineligibility floor.
    floor = float((bench_harness.split.initial_counts < omega).mean())
    assert comparison["MU"].under_fraction[-1] >= floor - 1e-9
    # FC remains the worst reducer.
    assert comparison["FC"].under_fraction[-1] >= comparison["FP"].under_fraction[-1]
