"""Ablation: DP implementations and the greedy shortcut.

Compares the NumPy max-plus DP against the paper's literal triple loop
(identical optima, large constant-factor gap) and against the offline
marginal-gain greedy (near-optimal on real gain tables but not exact —
quality curves are not concave, which is why the paper needs the DP).
"""

import pytest

from repro.allocation import gains_from_profiles, solve_dp, solve_dp_reference, solve_greedy

BUDGET = 300


@pytest.fixture(scope="module")
def gains(bench_harness):
    return gains_from_profiles(
        bench_harness.truth.profiles, bench_harness.split.initial_counts, BUDGET
    )


def test_vectorised_dp(benchmark, gains):
    result = benchmark.pedantic(lambda: solve_dp(gains, BUDGET), rounds=3, iterations=1)
    assert result.x.sum() == BUDGET


def test_reference_dp(benchmark, gains):
    result = benchmark.pedantic(
        lambda: solve_dp_reference(gains, BUDGET), rounds=1, iterations=1
    )
    assert result.x.sum() == BUDGET


def test_greedy(benchmark, gains):
    result = benchmark.pedantic(lambda: solve_greedy(gains, BUDGET), rounds=3, iterations=1)
    assert result.x.sum() == BUDGET


def test_solver_agreement(benchmark, gains):
    def run():
        fast = solve_dp(gains, BUDGET)
        slow = solve_dp_reference(gains, BUDGET)
        greedy = solve_greedy(gains, BUDGET)
        return fast, slow, greedy

    fast, slow, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(fast.value - slow.value) < 1e-9
    ratio = greedy.value / fast.value
    print(f"\ngreedy/optimal value ratio: {ratio:.4f} (greedy is not exact)")
    assert 0.90 <= ratio <= 1.0 + 1e-12
