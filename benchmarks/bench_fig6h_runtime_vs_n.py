"""Fig 6(h): runtime vs number of resources at a fixed budget.

Paper shape: every online strategy scales mildly with n; DP dominates
the cost at every size.
"""

from repro.experiments import runtime_vs_resources


def test_fig6h_runtime_vs_resources(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: runtime_vs_resources(harness=bench_harness, budget=400),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig 6(h): runtime (s) vs number of resources ==")
    print(result.render())
    # The heap strategies are decisively cheaper than DP at every size;
    # MU/FP-MU carry MA-tracker constants, so at this reduced scale they
    # can approach the (vectorised) DP — the paper-scale gap appears in
    # Fig 6(g)'s budget growth, asserted there.
    for name in ("FC", "RR", "FP"):
        assert result.seconds[name][-1] < result.seconds["DP"][-1]
