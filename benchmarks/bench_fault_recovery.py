"""Fault-recovery overhead of the supervised process shard engine.

The self-healing machinery (heartbeats, delta journaling, respawn +
re-seed) must be cheap in both directions:

* **steady state** — journaling every flushed batch in the parent while
  no fault ever fires must not meaningfully slow a clean run;
* **recovery** — a SIGKILLed worker mid-ingest costs one respawn plus a
  journal replay, and the run still ends in the exact reference state.

The gated metric is ``faults.recovery_overhead_ratio``: wall-clock of a
run that loses a worker mid-ingest over the clean supervised run.  It is
machine-independent (both runs share the machine and the workload) and
bounded by design — recovery replays only the delta journal, never the
whole stream.  Recorded lower-is-better; CI's 25% gate catches a
recovery path that starts re-ingesting from scratch.
"""

import time
import warnings

import pytest

import _metrics
from repro import faults
from repro.engine import ProcessExecutor, ShardedStabilityBank
from repro.faults.plan import _reset_for_tests
from repro.simulate import interleaved_event_stream
from repro.simulate.popularity import PopularityConfig

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 150 if SMOKE else 400
N_SHARDS = 3
WORKERS = 2
OMEGA = 5
TAU = 0.99
N_BATCHES = 6
ROUNDS = 2 if SMOKE else 3

POPULARITY = (
    PopularityConfig(min_posts=20, max_posts=120)
    if SMOKE
    else PopularityConfig(min_posts=40, max_posts=250)
)

# A worker lost once mid-run must not double the wall-clock: replaying
# the bounded delta journal is the whole recovery cost.  Smoke runs on
# shared CI runners get a looser absolute bar; the regression gate
# against BENCH_BASELINE.json is the precise check.
MAX_OVERHEAD_RATIO = 4.0 if SMOKE else 3.0


@pytest.fixture(scope="module")
def batches():
    events = list(
        interleaved_event_stream(
            n_resources=N_RESOURCES, seed=23, popularity=POPULARITY
        )
    )
    size = (len(events) + N_BATCHES - 1) // N_BATCHES
    return [events[i : i + size] for i in range(0, len(events), size)]


def _run_once(batches, plan=None):
    """One supervised process-engine pass; returns (seconds, state)."""
    if plan is None:
        faults.deactivate()
    else:
        faults.activate(plan)
    executor = ProcessExecutor(WORKERS)
    bank = ShardedStabilityBank(N_SHARDS, OMEGA, TAU, executor=executor)
    started = time.perf_counter()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for batch in batches:
                bank.ingest_events(batch)
            state = sorted(bank.stable_points().items())
        elapsed = time.perf_counter() - started
    finally:
        executor.close()
        _reset_for_tests()
    return elapsed, state


KILL_PLAN = {
    "specs": [
        # lose a worker twice: once early, once after state has built up
        {"site": "procpool.flush", "kind": "kill_worker", "at": 2},
        {"site": "procpool.flush", "kind": "kill_worker", "at": 7},
    ]
}


def test_recovery_overhead_is_bounded(batches):
    reference = ShardedStabilityBank(N_SHARDS, OMEGA, TAU)
    for batch in batches:
        reference.ingest_events(batch)
    expected = sorted(reference.stable_points().items())

    clean_times, faulted_times = [], []
    for _ in range(ROUNDS):
        clean, clean_state = _run_once(batches)
        faulted, faulted_state = _run_once(batches, KILL_PLAN)
        assert clean_state == expected, "clean supervised run diverged"
        assert faulted_state == expected, "post-recovery state diverged"
        clean_times.append(clean)
        faulted_times.append(faulted)

    ratio = min(faulted_times) / min(clean_times)
    print(
        f"\nfault recovery: clean {min(clean_times) * 1000:.1f} ms, "
        f"2 worker kills {min(faulted_times) * 1000:.1f} ms, "
        f"overhead ratio {ratio:.2f}x"
    )
    _metrics.record(
        "faults.recovery_overhead_ratio",
        ratio,
        unit="x",
        higher_is_better=False,
        gate=True,
    )
    _metrics.record(
        "faults.clean_supervised_ingest_s",
        min(clean_times),
        unit="s",
        higher_is_better=False,
        gate=False,
    )
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"losing a worker twice cost {ratio:.2f}x the clean run "
        f"(bar: {MAX_OVERHEAD_RATIO}x) — recovery is replaying too much"
    )
