"""Ablation: Appendix C's incremental MA vs naive recomputation.

The paper argues MU is only practical because the MA score can be
maintained in O(|post|) per update instead of recomputing O(ω|T|) rfd
cosines.  This bench measures the actual speedup on a long sequence and
checks the two paths agree bit-for-bit (within float tolerance).
"""

import pytest

from repro.core.stability import StabilityTracker, ma_score_direct
from repro.simulate import figure1a_scenario

OMEGA = 20


@pytest.fixture(scope="module")
def sequence():
    return figure1a_scenario(seed=7, num_posts=400).dataset.resources[0].sequence


def incremental_sweep(sequence):
    tracker = StabilityTracker(OMEGA)
    scores = []
    for post in sequence:
        tracker.add_post(post.tags)
        if tracker.ma_score is not None:
            scores.append(tracker.ma_score)
    return scores


def direct_sweep(sequence):
    return [
        ma_score_direct(sequence, k, OMEGA) for k in range(OMEGA, len(sequence) + 1)
    ]


def test_incremental_ma(benchmark, sequence):
    scores = benchmark.pedantic(lambda: incremental_sweep(sequence), rounds=3, iterations=1)
    assert len(scores) == len(sequence) - OMEGA + 1


def test_direct_ma(benchmark, sequence):
    scores = benchmark.pedantic(lambda: direct_sweep(sequence), rounds=1, iterations=1)
    assert len(scores) == len(sequence) - OMEGA + 1


def test_paths_agree(benchmark, sequence):
    incremental = incremental_sweep(sequence)

    def check():
        direct = direct_sweep(sequence)
        for a, b in zip(incremental, direct):
            assert abs(a - b) < 1e-9
        return direct

    benchmark.pedantic(check, rounds=1, iterations=1)
    print(f"\nincremental and direct MA agree at all {len(incremental)} points")
