"""Tables II & IV: the running example, recomputed and timed.

Paper values: q1(3)=0.953, q2(2)=0.897, optimal x=(1,1) at quality 0.990.
"""

import pytest

from repro.experiments import running_example


def test_running_example(benchmark):
    result = benchmark(running_example)
    print("\n" + result.render())
    assert result.q1_initial == pytest.approx(0.953, abs=5e-4)
    assert result.q2_initial == pytest.approx(0.897, abs=5e-4)
    assert result.optimal_x == (1, 1)
    assert result.optimal_quality == pytest.approx(0.990, abs=2e-3)
