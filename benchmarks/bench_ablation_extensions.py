"""Ablation: the Section VI future-work extensions at work.

* weighted-cost DP vs unit-cost DP under a 2-tier cost model — the
  optimal plan shifts tasks toward cheap resources;
* preference-aware MU vs plain MU under refusals — the preference-aware
  variant wastes fewer offers for the same delivered budget.
"""

import numpy as np
import pytest

from repro.allocation import (
    MostUnstableFirst,
    PreferenceAwareMostUnstable,
    gains_from_profiles,
    solve_dp,
    solve_weighted_dp,
)

BUDGET = 300


def test_weighted_cost_dp(benchmark, bench_harness):
    gains = gains_from_profiles(
        bench_harness.truth.profiles, bench_harness.split.initial_counts, BUDGET
    )
    costs = np.array(
        [2 if len(model.aspects) > 1 else 1 for model in bench_harness.corpus.models]
    )

    result = benchmark.pedantic(
        lambda: solve_weighted_dp(gains, costs, BUDGET), rounds=1, iterations=1
    )
    unit = solve_dp(gains, BUDGET)
    spent = int((result.x * costs).sum())
    cheap_share = result.x[costs == 1].sum() / max(result.x.sum(), 1)
    print(
        f"\nweighted DP: spent {spent}/{BUDGET} units, "
        f"{cheap_share:.0%} of tasks on 1-unit resources; "
        f"unit-cost DP value {unit.value:.2f} vs weighted {result.value:.2f}"
    )
    assert spent <= BUDGET
    # With costs, the affordable task count shrinks, so the objective
    # cannot exceed the unit-cost optimum.
    assert result.value <= unit.value + 1e-9


def test_preference_awareness_reduces_refusals(benchmark, bench_harness):
    weights = bench_harness.corpus.dataset.posts_per_resource().astype(float)
    acceptance = np.clip(0.15 + 0.85 * weights / weights.max(), 0.05, 1.0)
    prior = np.full(bench_harness.split.n, float(acceptance.mean()))

    def run(strategy_factory, seed):
        return bench_harness.runner.run(
            strategy_factory(),
            budget=BUDGET,
            acceptance=acceptance,
            rng=np.random.default_rng(seed),
        )

    plain_refusals = []
    aware_refusals = []
    def sweep():
        for seed in range(5):
            plain_refusals.append(run(lambda: MostUnstableFirst(omega=5), seed).refusals)
            aware_refusals.append(
                run(
                    lambda: PreferenceAwareMostUnstable(
                        omega=5, prior_acceptance=prior
                    ),
                    seed,
                ).refusals
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    plain = float(np.mean(plain_refusals))
    aware = float(np.mean(aware_refusals))
    print(f"\nmean refusals over 5 seeds: MU {plain:.0f} vs MU-pref {aware:.0f}")
    assert aware < plain
