"""Fig 6(a): tagging quality vs budget, all six strategies.

Paper shape: DP ≥ FP-MU ≳ FP ≫ RR > FC, with MU barely improving; FC's
curve is nearly flat.  The timed body is the paper's recommended
strategy (FP) spending the full budget.
"""

from repro.allocation import FewestPostsFirst
from repro.experiments import render_figure_6a


def test_fig6a_quality_vs_budget(benchmark, bench_harness, bench_comparison):
    budget = bench_harness.scale.max_budget
    benchmark.pedantic(
        lambda: bench_harness.runner.run(FewestPostsFirst(), budget),
        rounds=3,
        iterations=1,
    )
    print("\n== Fig 6(a): quality vs budget ==")
    print(render_figure_6a(bench_comparison))

    comparison = bench_comparison
    initial = comparison["DP"].quality[0]
    dp_gain = comparison["DP"].quality[-1] - initial
    # FP / FP-MU are near-optimal (the paper's headline result).
    for name in ("FP", "FP-MU"):
        gain = comparison[name].final_quality() - initial
        assert gain >= 0.75 * dp_gain, name
    # FC improves least among all strategies but MU-style stragglers.
    assert comparison["FC"].final_quality() < comparison["FP"].final_quality()
    assert comparison["RR"].final_quality() < comparison["FP"].final_quality()
    assert comparison["MU"].final_quality() < comparison["FP"].final_quality()
