"""Fig 7(a): similarity-ranking accuracy (Kendall's τ) vs budget.

Paper shape: the τ curves mirror the quality curves of Fig 6(a) — the
strategies that buy the most tagging quality also buy the most ranking
accuracy against the hierarchy ground truth.
"""

from repro.experiments import figure_7a


def test_fig7a_accuracy_vs_budget(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: figure_7a(harness=bench_harness, subset_size=60),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig 7(a): Kendall tau accuracy vs budget ==")
    print(result.render())

    assert result.accuracy["FP"][-1] > result.accuracy["FP"][0]
    assert result.dp_accuracy[-1] > result.dp_accuracy[0]
    # FP's accuracy gain beats FC's (the case-study story in aggregate).
    fp_gain = result.accuracy["FP"][-1] - result.accuracy["FP"][0]
    fc_gain = result.accuracy["FC"][-1] - result.accuracy["FC"][0]
    assert fp_gain > fc_gain
