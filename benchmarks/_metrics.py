"""Bench-metric registry: the bridge between benchmarks and the CI gate.

Benchmarks call :func:`record` with the numbers they already compute;
when the ``BENCH_JSON`` environment variable names a path, the session
hook in ``conftest.py`` dumps every recorded metric there at exit.  CI's
``bench-smoke`` job runs the hot-path benches with ``BENCH_SMOKE=1``,
writes ``BENCH_PR.json`` and feeds it to
``scripts/check_bench_regression.py`` against the committed
``BENCH_BASELINE.json``.

Gated metrics should be **machine-independent ratios** (vectorized vs
scalar, batched vs per-post): absolute events/sec differ wildly between
a laptop and a CI runner, but "the bank is Nx the scalar loop" is a
property of the code.  Absolute rates are recorded too — ``gate=False``
keeps them informational.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

_METRICS: dict[str, dict] = {}


def smoke_mode() -> bool:
    """Whether the quick CI smoke profile is active (``BENCH_SMOKE=1``)."""
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def record(
    name: str,
    value: float,
    *,
    unit: str = "",
    higher_is_better: bool = True,
    gate: bool = True,
) -> None:
    """Register one metric for the session's ``BENCH_JSON`` dump.

    Args:
        name: Dotted metric name, e.g. ``"engine.bank_vs_scalar_ratio"``.
        value: The measurement.
        unit: Display unit (informational).
        higher_is_better: Direction of goodness for the regression gate.
        gate: Whether ``check_bench_regression.py`` enforces the
            threshold on this metric (leave False for machine-dependent
            absolutes).

    Re-recording the same name overwrites the value (benches re-run under
    different profiles), but changing the metric's *meaning* — its unit,
    direction, or gating — warns: two benchmarks silently fighting over
    one name would make the regression gate compare apples to oranges.
    """
    entry = {
        "value": float(value),
        "unit": unit,
        "higher_is_better": bool(higher_is_better),
        "gate": bool(gate),
    }
    previous = _METRICS.get(name)
    if previous is not None:
        conflicts = [
            f"{key}: {previous[key]!r} -> {entry[key]!r}"
            for key in ("unit", "higher_is_better", "gate")
            if previous[key] != entry[key]
        ]
        if conflicts:
            warnings.warn(
                f"bench metric {name!r} re-recorded with a different meaning "
                f"({', '.join(conflicts)}); keeping the new definition",
                RuntimeWarning,
                stacklevel=2,
            )
    _METRICS[name] = entry


def dump_if_requested() -> Path | None:
    """Write recorded metrics to ``$BENCH_JSON`` (no-op when unset/empty)."""
    target = os.environ.get("BENCH_JSON")
    if not target or not _METRICS:
        return None
    path = Path(target)
    payload = {
        "smoke": smoke_mode(),
        "metrics": {name: dict(m) for name, m in sorted(_METRICS.items())},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
