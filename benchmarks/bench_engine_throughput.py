"""Engine throughput: vectorized StabilityBank vs scalar tracker loops.

The acceptance bar for the `repro.engine` subsystem: on a 1,000-resource
interleaved event stream, the bank's batched processing must sustain at
least 5x the events/sec of the equivalent per-resource
:class:`~repro.core.stability.StabilityTracker` loop, while reproducing
the scalar MA scores and stable points exactly (1e-9).

Two rates are reported:

* **bank processing** — ingesting pre-encoded CSR batches, the engine's
  native wire format (what a warmed-up ingestion pipeline or an upstream
  shard router hands the bank).  This is the asserted >= 5x number.
* **end to end** — starting from a Python list of
  :class:`~repro.engine.events.TagEvent` objects, i.e. including the
  per-event encode/intern cost, which is the bank's remaining Python
  boundary.

Timings take the best of three runs to damp scheduler noise; the scalar
and engine passes are interleaved so both see the same machine state.
"""

import time

import pytest

import _metrics
from repro.core.stability import StabilityTracker
from repro.engine import IngestEngine, StabilityBank
from repro.engine.events import encode_events
from repro.simulate import interleaved_event_stream
from repro.simulate.popularity import PopularityConfig

SMOKE = _metrics.smoke_mode()

N_RESOURCES = 300 if SMOKE else 1000
OMEGA = 5
TAU = 0.99
BATCH_SIZE = 8192 if SMOKE else 32768
ROUNDS = 2 if SMOKE else 3

# Smoke mode trims the stream (~4x fewer events) and relaxes the hard
# bars — shared CI runners are noisy; the regression gate compares the
# recorded ratios against BENCH_BASELINE.json instead.
MIN_BANK_RATIO = 3.0 if SMOKE else 5.0
MIN_FEED_RATIO = 1.1 if SMOKE else 1.5

POPULARITY = (
    PopularityConfig(min_posts=40, max_posts=250)
    if SMOKE
    else PopularityConfig(min_posts=90, max_posts=600)
)
"""The corpus default head/tail proportions at a bench-friendly cap."""


@pytest.fixture(scope="module")
def event_stream():
    """A ~175k-event interleaved stream over 1k resources (built once)."""
    return list(
        interleaved_event_stream(n_resources=N_RESOURCES, seed=11, popularity=POPULARITY)
    )


def run_scalar(events):
    trackers: dict[str, StabilityTracker] = {}
    for event in events:
        tracker = trackers.get(event.resource_id)
        if tracker is None:
            tracker = trackers[event.resource_id] = StabilityTracker(OMEGA, TAU)
        tracker.add_post(event.tags)
    return trackers


def make_bank():
    return StabilityBank(
        OMEGA, TAU, initial_rows=N_RESOURCES + 24, initial_tags=8192
    )


def test_bank_beats_scalar_by_5x(event_stream):
    events = event_stream
    n = len(events)
    batches = [events[i : i + BATCH_SIZE] for i in range(0, n, BATCH_SIZE)]

    scalar_best = engine_best = encode_best = float("inf")
    trackers = bank = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        trackers = run_scalar(events)
        scalar_best = min(scalar_best, time.perf_counter() - started)

        bank = make_bank()
        started = time.perf_counter()
        encoded = [
            encode_events(batch, tags=bank.tags, resources=bank.resources)
            for batch in batches
        ]
        encode_best = min(encode_best, time.perf_counter() - started)
        started = time.perf_counter()
        for batch in encoded:
            bank.ingest(batch)
        engine_best = min(engine_best, time.perf_counter() - started)

    scalar_rate = n / scalar_best
    bank_rate = n / engine_best
    end_to_end_rate = n / (engine_best + encode_best)
    ratio = scalar_rate and bank_rate / scalar_rate
    _metrics.record("engine.bank_vs_scalar_ratio", ratio, unit="x")
    _metrics.record(
        "engine.bank_events_per_s", bank_rate, unit="events/s", gate=False
    )
    _metrics.record(
        "engine.scalar_events_per_s", scalar_rate, unit="events/s", gate=False
    )
    print(
        f"\n{n:,} events over {N_RESOURCES} resources "
        f"(omega={OMEGA}, tau={TAU}, batch={BATCH_SIZE})\n"
        f"  scalar tracker loop : {scalar_rate:12,.0f} events/s\n"
        f"  bank processing     : {bank_rate:12,.0f} events/s  ({ratio:.1f}x)\n"
        f"  end to end w/ encode: {end_to_end_rate:12,.0f} events/s  "
        f"({end_to_end_rate / scalar_rate:.1f}x)"
    )

    # --- equivalence: identical MA scores and stable points --------------
    mismatches = 0
    for resource_id, tracker in trackers.items():
        scalar_ma = tracker.ma_score
        bank_ma = bank.ma_score(resource_id)
        if (scalar_ma is None) != (bank_ma is None):
            mismatches += 1
        elif scalar_ma is not None and abs(scalar_ma - bank_ma) > 1e-9:
            mismatches += 1
        if tracker.stable_point != bank.stable_point(resource_id):
            mismatches += 1
    assert mismatches == 0, f"{mismatches} scalar/bank divergences"
    assert len(bank.stable_points()) == len(
        [t for t in trackers.values() if t.is_stable]
    )

    # --- the acceptance bar ----------------------------------------------
    assert ratio >= MIN_BANK_RATIO, (
        f"vectorized bank only reached {ratio:.2f}x the scalar tracker "
        f"({bank_rate:,.0f} vs {scalar_rate:,.0f} events/s)"
    )


def test_end_to_end_feed_beats_scalar(event_stream):
    """The full TagEvent path (encode included) must still win clearly."""
    events = event_stream
    n = len(events)
    scalar_best = feed_best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        run_scalar(events)
        scalar_best = min(scalar_best, time.perf_counter() - started)

        engine = IngestEngine(bank=make_bank(), batch_size=BATCH_SIZE)
        started = time.perf_counter()
        engine.feed(events)
        feed_best = min(feed_best, time.perf_counter() - started)
    ratio = scalar_best / feed_best
    print(
        f"\nend-to-end engine feed: {n / feed_best:,.0f} events/s "
        f"vs scalar {n / scalar_best:,.0f} events/s ({ratio:.1f}x)"
    )
    _metrics.record("engine.feed_vs_scalar_ratio", ratio, unit="x")
    assert ratio >= MIN_FEED_RATIO


def test_sharded_ingest_scales_out(event_stream):
    """Sharding preserves results; per-shard slices are independent work."""
    from repro.engine import ShardedStabilityBank

    events = event_stream[:40000]
    single = StabilityBank(OMEGA, TAU)
    single.ingest_events(events)
    sharded = ShardedStabilityBank(4, OMEGA, TAU)
    started = time.perf_counter()
    for i in range(0, len(events), BATCH_SIZE):
        sharded.ingest_events(events[i : i + BATCH_SIZE])
    elapsed = time.perf_counter() - started
    print(f"\n4-shard ingest: {len(events) / elapsed:,.0f} events/s")
    assert sharded.stable_points() == single.stable_points()
