"""Fig 3: adjacent similarity vs MA score, and the stable point."""

from repro.experiments import figure_3


def test_fig3_ma_and_stable_point(benchmark):
    result = benchmark.pedantic(
        lambda: figure_3(num_posts=400, seed=7), rounds=3, iterations=1
    )
    print("\n== Fig 3: MA score and stable rfd (omega=20) ==")
    print(result.render(step=40))
    assert result.stable_point is not None
    # The paper's illustration stabilises around k = 100; ours lands on
    # the same timescale under the stringent tau (see EXPERIMENTS.md).
    assert 40 <= result.stable_point <= 250
