"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every figure and table of the paper at
``BENCH_SCALE`` — a laptop-friendly reduction of the paper's 5,000
resources / 10,000 budget.  The corpus, ground truth and the Fig 6
comparison are built once per session and shared.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables/series alongside the timings.)
"""

from __future__ import annotations

import pytest

import _metrics
from repro.experiments import ExperimentHarness, ExperimentScale, figure_6abcd


def pytest_sessionfinish(session, exitstatus):
    """Dump recorded bench metrics to ``$BENCH_JSON`` for the CI gate."""
    path = _metrics.dump_if_requested()
    if path is not None:
        print(f"\nbench metrics written to {path}")

BENCH_SCALE = ExperimentScale(
    n_resources=150,
    budgets=(0, 150, 300, 450, 600, 750, 900, 1050, 1200, 1350, 1500),
    dp_budgets=(0, 500, 1000, 1500),
    omega=5,
    omega_sweep=(2, 4, 6, 8, 10, 12, 14, 16),
    omega_sweep_budget=400,
    resource_counts=(30, 60, 90, 120, 150),
    seed=7,
)
"""The benchmark scale (~1/33 of the paper's corpus, same proportions)."""


@pytest.fixture(scope="session")
def bench_harness() -> ExperimentHarness:
    """Corpus + ground truth + runner at the benchmark scale."""
    return ExperimentHarness.from_scale(BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_comparison(bench_harness):
    """The Fig 6(a)–(d) strategy comparison, shared by four benches."""
    return figure_6abcd(harness=bench_harness)


@pytest.fixture(scope="session")
def bench_case_scenario():
    from repro.simulate import case_study_scenario

    return case_study_scenario(seed=1)
