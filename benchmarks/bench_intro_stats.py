"""Section I statistics: stable points, over/under-tagging, waste, salvage.

Paper values: stable points 50–200 (avg 112); ~7% over-tagged; ~25%
under-tagged; 48% of all posts wasted; 1% of the waste would salvage
every under-tagged resource.
"""

from repro.experiments import intro_statistics


def test_intro_statistics(benchmark, bench_harness):
    result = benchmark.pedantic(
        lambda: intro_statistics(corpus=bench_harness.corpus), rounds=1, iterations=1
    )
    print("\n" + result.render())

    assert 80 <= result.stable_points.mean <= 150  # paper: 112
    assert 0.10 <= result.cutoff_report.under_tagged_fraction <= 0.50  # paper: 25%
    assert 0.25 <= result.year_report.wasted_fraction <= 0.70  # paper: 48%
    assert result.salvage_ratio < 0.10  # paper: ~1%
