"""Scenario-pack build throughput and quality-pipeline overhead.

Two numbers for the pack subsystem:

* ``packs.gen_events_per_sec`` — raw corpus generation rate through
  :func:`repro.packs.build_pack` (posts per second), informational:
  absolute rates are machine-dependent.
* ``packs.filter_overhead_ratio`` — wall-clock of the quality pipeline
  (fingerprinting + three filters) over the wall-clock of generation
  itself, best-of-N.  The pipeline must stay a small fraction of
  generation cost; the ratio is a machine-independent property of the
  code and is regression-gated against ``BENCH_BASELINE.json``
  (lower is better).
"""

import time

import _metrics
from repro.packs import PACKS, PackSpec, build_pack
from repro.packs.quality import run_filters

SMOKE = _metrics.smoke_mode()

BENCH_PACK = "capped-vocab"
BENCH_PARAMS = {"n": 40 if SMOKE else 120, "cap": 6}
ROUNDS = 3 if SMOKE else 5


def _build_corpus():
    entry = PACKS.get(BENCH_PACK)
    return entry.build_corpus(7, **BENCH_PARAMS), entry


class TestPackBenchmarks:
    def test_generation_throughput(self):
        start = time.perf_counter()
        build = build_pack(PackSpec(name=BENCH_PACK, seed=7, params=BENCH_PARAMS))
        elapsed = time.perf_counter() - start
        posts = build.corpus.dataset.total_posts
        rate = posts / elapsed
        print(f"\n{BENCH_PACK}: {posts} posts in {elapsed * 1e3:.1f} ms "
              f"({rate:,.0f} posts/s)")
        _metrics.record(
            "packs.gen_events_per_sec", rate, unit="posts/s", gate=False
        )
        assert posts > 0

    def test_filter_overhead_ratio(self):
        # Time generation and the quality pipeline back-to-back on the
        # same corpus; best-of-N on both sides to cut scheduler noise.
        entry = PACKS.get(BENCH_PACK)
        gen_best = filter_best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            corpus, _entry = _build_corpus()
            gen_best = min(gen_best, time.perf_counter() - start)
            start = time.perf_counter()
            run_filters(corpus, entry.filters, enforce=entry.enforce,
                        pack=BENCH_PACK)
            filter_best = min(filter_best, time.perf_counter() - start)
        ratio = filter_best / gen_best
        print(f"\nquality pipeline: {filter_best * 1e3:.1f} ms over "
              f"{gen_best * 1e3:.1f} ms generation (ratio {ratio:.3f})")
        _metrics.record(
            "packs.filter_overhead_ratio",
            ratio,
            unit="x",
            higher_is_better=False,
            gate=True,
        )
        # generous hard ceiling: filters must stay well under generation
        assert ratio < 1.0
