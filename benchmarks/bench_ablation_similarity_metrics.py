"""Ablation: the similarity metric behind the quality definition.

The paper fixes cosine (Eq. 16).  This bench swaps the metric used for
the Fig 7 ranking accuracy and reports how each behaves — cosine is the
fastest of the set and its accuracy is representative, supporting the
paper's choice.
"""

import numpy as np
import pytest

from repro.core.frequency import TagFrequencyTable
from repro.core.similarity import SIMILARITY_METRICS
from repro.analysis import kendall_tau
from repro.simulate.ontology import aspect_similarity


@pytest.fixture(scope="module")
def ranking_inputs(bench_harness):
    rng = np.random.default_rng(3)
    n = len(bench_harness.corpus.dataset)
    indices = sorted(int(i) for i in rng.choice(n, size=50, replace=False))
    corpus = bench_harness.corpus.subset(indices)
    rfds = [
        TagFrequencyTable.from_posts(r.sequence).rfd() for r in corpus.dataset.resources
    ]
    truth = []
    for i in range(len(corpus.models)):
        for j in range(i + 1, len(corpus.models)):
            truth.append(
                aspect_similarity(corpus.models[i].aspects, corpus.models[j].aspects)
            )
    return rfds, np.array(truth)


@pytest.mark.parametrize("metric_name", sorted(SIMILARITY_METRICS))
def test_metric_ranking_accuracy(benchmark, ranking_inputs, metric_name):
    rfds, truth = ranking_inputs
    metric = SIMILARITY_METRICS[metric_name]

    def run():
        scores = []
        for i in range(len(rfds)):
            for j in range(i + 1, len(rfds)):
                scores.append(metric(rfds[i], rfds[j]))
        return kendall_tau(np.array(scores), truth)

    tau = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{metric_name}: tau accuracy vs ground truth = {tau:.4f}")
    assert tau > 0.2  # every sane metric recovers much of the hierarchy
