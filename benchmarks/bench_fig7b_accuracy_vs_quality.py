"""Fig 7(b): ranking accuracy vs tagging quality across run states.

Paper result: the two are correlated at over 98% (Eq. 15) — the
tagging-quality metric predicts downstream IR usefulness.
"""

from repro.experiments import figure_7a, figure_7b


def test_fig7b_accuracy_vs_quality(benchmark, bench_harness):
    fig7a = figure_7a(harness=bench_harness, subset_size=60)
    result = benchmark.pedantic(lambda: figure_7b(fig7a), rounds=1, iterations=1)
    print("\n== Fig 7(b): accuracy vs quality ==")
    print(result.render())
    print(f"\ncorrelation = {result.correlation:.4f} (paper: > 0.98)")
    assert result.correlation > 0.8
