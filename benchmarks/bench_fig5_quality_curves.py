"""Fig 5: diminishing returns — quality improvement by starting count."""

from repro.experiments import figure_5


def test_fig5_diminishing_returns(benchmark):
    result = benchmark.pedantic(
        lambda: figure_5(num_posts=400, seed=7), rounds=3, iterations=1
    )
    print("\n== Fig 5: quality vs number of posts ==")
    print(result.render(step=50))
    # The figure's argument for FP: the same 10 tasks buy far more
    # quality on an under-tagged resource than on a well-tagged one.
    assert result.low_gain > 5 * max(result.high_gain, 1e-6)
