"""Service-level load replay: the campaign scheduler under wall-clock arrivals.

``bench_load_replay`` measures the *engine* under an interleaved event
stream; this bench measures the *service* layer above it — the
:class:`repro.server.Scheduler` fed by a Poisson-ish arrival process of
campaign submissions from multiple users:

* ``server.submit_to_first_epoch_ms`` — admission-to-first-epoch
  latency, the user-visible "my campaign started" SLO, measured with
  real wall-clock arrival gaps while earlier campaigns are still
  running (informational: absolute latency is machine-dependent);
* ``server.epoch_p95_ms`` — the per-epoch latency SLO under concurrent
  load, from the server's own ``server.epoch`` telemetry histogram
  (informational);
* ``server.jobs_interleave_overhead_ratio`` — wall-clock of N campaigns
  interleaved one-epoch-per-slice through the scheduler over the same
  specs run back-to-back via ``IncentiveCampaign.run``.  The scheduling
  machinery (queues, journaling hooks, job bookkeeping) should cost a
  few percent, not tens — a machine-independent property of the code,
  regression-gated.

Everything runs on an in-memory :class:`~repro.server.JobStore`, so the
numbers measure scheduling, not disk.
"""

import asyncio
import time

import _metrics
from repro import obs
from repro.api import CampaignSpec, JobSpec, ServerSpec
import repro.api as api
from repro.server import JobStore, Scheduler
from repro.service import IncentiveCampaign

SMOKE = _metrics.smoke_mode()

_BUDGET_A = 120 if SMOKE else 250
_BUDGET_B = 90 if SMOKE else 180


def _job_specs() -> list[JobSpec]:
    corpus_a = {"type": "corpus", "kind": "paper", "resources": 20, "seed": 13}
    corpus_b = {"type": "corpus", "kind": "paper", "resources": 15, "seed": 7}
    payloads = [
        {"corpus": corpus_a, "strategy": "FP", "budget": _BUDGET_A, "workers": 8,
         "seed": 5, "stop_tau": 0.99, "batch_size": 20, "max_epochs": 60},
        {"corpus": corpus_a, "strategy": "FP", "budget": _BUDGET_A, "workers": 8,
         "seed": 5, "stop_tau": 0.99, "batch_size": 20, "max_epochs": 60,
         "stability_backend": "engine"},
        {"corpus": corpus_b, "strategy": "MU", "params": {"omega": 5}, "budget": _BUDGET_B,
         "workers": 6, "seed": 11, "stop_tau": 0.995, "batch_size": 15, "max_epochs": 50},
        {"corpus": corpus_b, "strategy": "MU", "params": {"omega": 5}, "budget": _BUDGET_B,
         "workers": 6, "seed": 11, "stop_tau": 0.995, "batch_size": 15, "max_epochs": 50,
         "stability_backend": "engine"},
    ]
    users = ("alice", "bob")
    return [
        JobSpec(campaign=CampaignSpec.from_dict({"type": "campaign", **payload}),
                user=users[i % len(users)])
        for i, payload in enumerate(payloads)
    ]


def _run_serial(jobs: list[JobSpec]) -> float:
    """Back-to-back `IncentiveCampaign.run` wall-clock for the same specs."""
    started = time.perf_counter()
    for job in jobs:
        spec = job.campaign
        campaign = IncentiveCampaign.from_spec(spec, api.materialize(spec.corpus))
        campaign.run(max_epochs=spec.max_epochs)
    return time.perf_counter() - started


async def _run_interleaved(jobs: list[JobSpec], *, arrival_gap_s: float) -> dict:
    """Scheduler wall-clock + first-epoch latencies under timed arrivals."""
    scheduler = Scheduler(ServerSpec(slots=4, max_queued=32), store=JobStore(None))
    submitted_at: dict[str, float] = {}
    first_epoch_ms: dict[str, float] = {}
    shutdown = asyncio.Event()

    async def producer() -> None:
        for index, job in enumerate(jobs):
            if index and arrival_gap_s:
                await asyncio.sleep(arrival_gap_s)
            job_id = scheduler.submit(job)
            submitted_at[job_id] = time.perf_counter()

    async def watcher() -> None:
        pending: set[str] = set()
        while True:
            pending |= set(submitted_at) - set(first_epoch_ms)
            for job_id in sorted(pending):
                if scheduler.store.get(job_id).epochs >= 1:
                    first_epoch_ms[job_id] = (
                        time.perf_counter() - submitted_at[job_id]
                    ) * 1000.0
                    pending.discard(job_id)
            if (
                len(submitted_at) == len(jobs)
                and all(scheduler.store.get(j).terminal for j in submitted_at)
            ):
                shutdown.set()
                return
            await asyncio.sleep(0)

    started = time.perf_counter()
    await asyncio.gather(
        scheduler.serve(poll_interval=0.001, shutdown=shutdown),
        producer(),
        watcher(),
    )
    elapsed = time.perf_counter() - started
    assert all(
        scheduler.store.get(job_id).state.value == "done" for job_id in submitted_at
    ), "every submitted campaign must complete"
    return {"elapsed": elapsed, "first_epoch_ms": first_epoch_ms}


def test_server_interleave_overhead():
    """All jobs submitted upfront: scheduler wall-clock vs serial wall-clock."""
    jobs = _job_specs()
    serial_s = _run_serial(jobs)
    outcome = asyncio.run(_run_interleaved(jobs, arrival_gap_s=0.0))
    overhead_ratio = outcome["elapsed"] / serial_s
    _metrics.record(
        "server.jobs_interleave_overhead_ratio",
        overhead_ratio,
        unit="x",
        higher_is_better=False,
    )
    print(
        f"\nserver interleave: serial={serial_s * 1000:.0f}ms "
        f"interleaved={outcome['elapsed'] * 1000:.0f}ms "
        f"overhead={overhead_ratio:.3f}x"
    )
    assert overhead_ratio < 3.0, "scheduler interleaving should not triple runtime"


def test_server_arrival_latency_slo():
    """Wall-clock arrival gaps: admission-to-first-epoch and epoch p95 SLOs."""
    jobs = _job_specs()
    telemetry = obs.Telemetry()
    with obs.activated(telemetry):
        # later campaigns arrive while earlier ones still hold slots
        outcome = asyncio.run(_run_interleaved(jobs, arrival_gap_s=0.05))
    snapshot = telemetry.snapshot()
    telemetry.close()

    worst_first_epoch = max(outcome["first_epoch_ms"].values())
    epoch_p95 = 0.0
    histogram = snapshot.get("histograms", {}).get("server.epoch")
    if histogram:
        epoch_p95 = float(histogram.get("p95", 0.0))

    _metrics.record(
        "server.submit_to_first_epoch_ms",
        worst_first_epoch,
        unit="ms",
        higher_is_better=False,
        gate=False,
    )
    _metrics.record(
        "server.epoch_p95_ms",
        epoch_p95,
        unit="ms",
        higher_is_better=False,
        gate=False,
    )
    print(
        f"\nserver arrivals: first-epoch worst={worst_first_epoch:.1f}ms "
        f"epoch-p95={epoch_p95:.2f}ms over {len(jobs)} jobs"
    )
