"""Fig 1(a)/(b): rfd convergence of one resource; corpus posts power law."""

from repro.experiments import figure_1a, figure_1b


def test_fig1a_tag_trajectories(benchmark):
    result = benchmark.pedantic(
        lambda: figure_1a(num_posts=500, step=50), rounds=3, iterations=1
    )
    print("\n== Fig 1(a): relative frequencies vs posts ==")
    print(result.render())
    # Convergence: the late half of each trajectory varies less than the
    # early half (the paper's 'frequencies become very stable' claim).
    half = len(result.checkpoints) // 2
    for t in range(len(result.tags)):
        assert result.trajectories[t][half:].std() <= result.trajectories[t][:half].std() + 0.05


def test_fig1b_posts_distribution(benchmark):
    result = benchmark.pedantic(lambda: figure_1b(n=4000, seed=7), rounds=1, iterations=1)
    print("\n== Fig 1(b): posts-per-resource histogram ==")
    print(result.render())
    # A straight descending log-log line, as in the paper.
    assert result.slope < -1.0
    assert result.bucket_counts[0] == result.bucket_counts.max()
