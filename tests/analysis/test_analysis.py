"""Tests for the analysis package: stable points, waste, ranking, stats."""

import numpy as np
import pytest

from repro.core import DataModelError, Post
from repro.analysis import (
    RankedResource,
    all_pairs_scores,
    dataset_stable_points,
    measured_unstable_point,
    overlap_at_k,
    pearson_correlation,
    salvage_requirement,
    stable_point_of,
    summarize,
    top_k_similar,
    waste_report,
    wasted_tasks,
)


class TestStablePoints:
    def test_stable_point_of_constant_sequence(self):
        posts = [Post.of("a", timestamp=float(i)) for i in range(30)]
        assert stable_point_of(posts, omega=4, tau=0.99) == 4

    def test_stable_point_of_unstable_sequence(self):
        posts = [Post.of(f"u{i}", timestamp=float(i)) for i in range(30)]
        assert stable_point_of(posts, omega=4, tau=0.999) == -1

    def test_dataset_summary(self, tiny_corpus):
        summary = dataset_stable_points(tiny_corpus.dataset, omega=5, tau=0.99)
        assert len(summary.stable_points) == len(tiny_corpus.dataset)
        defined = summary.stable_points[summary.stable_points >= 0]
        assert summary.num_stable == len(defined)
        if len(defined):
            assert summary.minimum == defined.min()
            assert summary.mean == pytest.approx(defined.mean())

    def test_all_unstable_summary(self):
        from repro.core import PostSequence, Resource, ResourceSet, TaggingDataset

        posts = [Post.of(f"u{i}", timestamp=float(i)) for i in range(10)]
        dataset = TaggingDataset(ResourceSet([Resource("r", PostSequence(posts))]))
        summary = dataset_stable_points(dataset, omega=4, tau=0.9999)
        assert summary.num_stable == 0
        assert np.isnan(summary.mean)

    def test_measured_unstable_point(self):
        # Jumpy for the first posts, then constant.
        posts = [Post.of(f"u{i}", timestamp=float(i)) for i in range(6)]
        posts += [Post.of("u0", timestamp=float(10 + i)) for i in range(30)]
        point = measured_unstable_point(posts, similarity_threshold=0.95)
        assert 2 <= point <= 12


class TestWaste:
    def test_waste_report_basic(self):
        counts = np.array([5, 20, 3])
        stable_points = np.array([10, 12, -1])
        report = waste_report(counts, stable_points, under_threshold=4)
        assert report.over_tagged == 1  # only the 20 > 12 resource
        assert report.under_tagged == 1  # the 3-post resource
        assert report.wasted_posts == 8  # 20 - 12; sp=-1 contributes 0
        assert report.total_posts == 28
        assert report.wasted_fraction == pytest.approx(8 / 28)

    def test_waste_report_validates_shapes(self):
        with pytest.raises(DataModelError):
            waste_report(np.array([1, 2]), np.array([1]))

    def test_wasted_tasks_attribution(self):
        initial = np.array([5, 15, 2])
        final = np.array([12, 20, 4])
        stable_points = np.array([10, 10, -1])
        # r0: delivered 7, wasted those beyond sp=10 -> 2.
        # r1: already past sp, all 5 wasted.  r2: no sp -> 0.
        assert wasted_tasks(initial, final, stable_points) == 7

    def test_wasted_tasks_rejects_shrinking_counts(self):
        with pytest.raises(DataModelError):
            wasted_tasks(np.array([5]), np.array([4]), np.array([10]))

    def test_salvage_requirement(self):
        counts = np.array([3, 11, 10])
        # threshold 10: deficits to reach 11 posts: 8 + 0 + 1.
        assert salvage_requirement(counts, under_threshold=10) == 9


class TestRanking:
    def test_top_k_orders_by_score(self):
        subject = {"a": 1.0}
        candidates = {
            "same": {"a": 1.0},
            "half": {"a": 1.0, "b": 1.0},
            "other": {"b": 1.0},
        }
        result = top_k_similar(subject, candidates, k=2)
        assert [r.resource_id for r in result] == ["same", "half"]
        assert result[0].score == pytest.approx(1.0)

    def test_top_k_tie_break_by_id(self):
        subject = {"a": 1.0}
        candidates = {"zeta": {"a": 1.0}, "alpha": {"a": 1.0}}
        result = top_k_similar(subject, candidates, k=2)
        assert [r.resource_id for r in result] == ["alpha", "zeta"]

    def test_top_k_validates_k(self):
        with pytest.raises(DataModelError):
            top_k_similar({"a": 1.0}, {}, k=0)

    def test_overlap_at_k(self):
        a = [RankedResource("x", 1.0), RankedResource("y", 0.9)]
        b = ["y", "z"]
        assert overlap_at_k(a, b) == 1

    def test_all_pairs_scores_order(self):
        rfds = [{"a": 1.0}, {"a": 1.0}, {"b": 1.0}]
        scores = all_pairs_scores(rfds)
        assert len(scores) == 3
        assert scores[0] == pytest.approx(1.0)  # (0,1)
        assert scores[1] == 0.0  # (0,2)


class TestStats:
    def test_pearson_perfect_correlation(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_pearson_anticorrelation(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_is_nan(self):
        assert np.isnan(pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))

    def test_pearson_validates(self):
        with pytest.raises(DataModelError):
            pearson_correlation([1.0], [1.0])
        with pytest.raises(DataModelError):
            pearson_correlation([1.0, 2.0], [1.0])

    def test_pearson_matches_numpy(self, rng):
        x = rng.random(50)
        y = x * 0.5 + rng.random(50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert "mean=2.5" in summary.render()

    def test_summarize_empty_rejected(self):
        with pytest.raises(DataModelError):
            summarize([])
