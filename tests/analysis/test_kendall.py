"""Tests for Kendall's τ-b, cross-checked against scipy."""

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core import DataModelError  # noqa: E402
from repro.analysis import kendall_tau  # noqa: E402


class TestBasics:
    def test_identical_rankings(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert kendall_tau(x, x) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert kendall_tau(x, x[::-1]) == pytest.approx(-1.0)

    def test_constant_input_is_nan(self):
        assert np.isnan(kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))

    def test_validation(self):
        with pytest.raises(DataModelError):
            kendall_tau([1.0], [1.0])
        with pytest.raises(DataModelError):
            kendall_tau([1.0, 2.0], [1.0])

    def test_known_small_example(self):
        # scipy's doc example.
        x = [12, 2, 1, 12, 2]
        y = [1, 4, 7, 1, 0]
        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-12)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_continuous(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        x = rng.random(n)
        y = rng.random(n)
        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-10)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_with_heavy_ties(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(5, 150))
        x = rng.integers(0, 4, size=n).astype(float)
        y = rng.integers(0, 4, size=n).astype(float)
        expected = scipy_stats.kendalltau(x, y).statistic
        ours = kendall_tau(x, y)
        if np.isnan(expected):
            assert np.isnan(ours)
        else:
            assert ours == pytest.approx(expected, abs=1e-10)

    def test_partial_correlation(self):
        rng = np.random.default_rng(7)
        x = rng.random(200)
        y = x + rng.normal(0, 0.3, size=200)
        tau = kendall_tau(x, y)
        assert 0.4 < tau < 0.95
