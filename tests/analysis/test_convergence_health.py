"""Tests for convergence diagnostics and corpus health reports."""

import math

import numpy as np
import pytest

from repro.core import DataModelError, Post
from repro.analysis import (
    convergence_half_life,
    corpus_health,
    distance_to_final_curve,
    effective_support,
    tag_entropy,
)


class TestEntropy:
    def test_single_tag_entropy_zero(self):
        assert tag_entropy({"a": 1.0}) == 0.0

    def test_uniform_entropy(self):
        rfd = {f"t{i}": 0.25 for i in range(4)}
        assert tag_entropy(rfd) == pytest.approx(math.log(4))

    def test_empty_entropy_zero(self):
        assert tag_entropy({}) == 0.0

    def test_unnormalised_input_allowed(self):
        counts = {"a": 2.0, "b": 2.0}
        rfd = {"a": 0.5, "b": 0.5}
        assert tag_entropy(counts) == pytest.approx(tag_entropy(rfd))

    def test_effective_support_of_uniform(self):
        rfd = {f"t{i}": 1 / 6 for i in range(6)}
        assert effective_support(rfd) == pytest.approx(6.0)

    def test_effective_support_bounds(self):
        skewed = {"a": 0.9, "b": 0.05, "c": 0.05}
        assert 1.0 < effective_support(skewed) < 3.0


class TestDistanceCurve:
    def test_curve_ends_at_zero(self):
        posts = [Post.of("a", "b", timestamp=float(i)) for i in range(10)]
        curve = distance_to_final_curve(posts)
        assert curve[-1] == pytest.approx(0.0, abs=1e-9)

    def test_curve_decreases_for_constant_posts(self):
        posts = [Post.of("a", "b", timestamp=float(i)) for i in range(10)]
        curve = distance_to_final_curve(posts)
        assert (np.diff(curve) <= 1e-12).all()

    def test_empty_sequence_rejected(self):
        with pytest.raises(DataModelError):
            distance_to_final_curve([])

    def test_half_life_on_real_sequence(self, tiny_corpus):
        sequence = tiny_corpus.dataset.resources[0].sequence
        half_life = convergence_half_life(sequence)
        assert 1 <= half_life <= len(sequence)
        curve = distance_to_final_curve(sequence)
        threshold = curve[0] / 2.0
        assert (curve[half_life - 1 :] <= threshold + 1e-12).all()

    def test_half_life_of_instantly_converged(self):
        posts = [Post.of("a", timestamp=float(i)) for i in range(5)]
        # distance is 0 from the first post; half-life is 1.
        assert convergence_half_life(posts) == 1


class TestCorpusHealth:
    def test_health_fields_consistent(self, tiny_corpus):
        health = corpus_health(tiny_corpus.dataset)
        assert health.n == len(tiny_corpus.dataset)
        assert health.total_posts == tiny_corpus.dataset.total_posts
        assert health.posts_summary.count == health.n
        assert health.support.count == health.n
        assert 0 <= health.waste.under_tagged <= health.n

    def test_render_mentions_key_lines(self, tiny_corpus):
        text = corpus_health(tiny_corpus.dataset).render()
        assert "corpus health" in text
        assert "stable points" in text
        assert "wasted posts" in text

    def test_salvage_share_no_waste(self):
        from repro.core import PostSequence, Resource, ResourceSet, TaggingDataset

        posts = [Post.of(f"u{i}", timestamp=float(i)) for i in range(4)]
        dataset = TaggingDataset(ResourceSet([Resource("r", PostSequence(posts))]))
        health = corpus_health(dataset)
        assert health.waste.wasted_posts == 0
        assert "no wasted posts" in health.render()
