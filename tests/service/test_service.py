"""Tests for the incentive-tagging service prototype."""

import numpy as np
import pytest

from repro.core import AllocationError, BudgetError, Post
from repro.allocation import FewestPostsFirst, FreeChoice, StabilityAwareFewestPosts
from repro.service import (
    IncentiveCampaign,
    JobBoard,
    RewardLedger,
    SimulatedWorker,
    TaskState,
    WorkerPool,
)
from repro.simulate import TopicHierarchy, paper_scenario


class TestJobBoard:
    def test_lifecycle(self):
        board = JobBoard()
        task = board.publish(3)
        assert task.state is TaskState.OPEN
        task.claim("w1")
        assert task.state is TaskState.CLAIMED
        task.complete(Post.of("a"))
        assert task.state is TaskState.COMPLETED
        assert board.completed_tasks() == [task]

    def test_invalid_transitions(self):
        board = JobBoard()
        task = board.publish(0)
        with pytest.raises(AllocationError):
            task.complete(Post.of("a"))  # never claimed
        task.claim("w1")
        with pytest.raises(AllocationError):
            task.claim("w2")  # double claim
        task.complete(Post.of("a"))
        with pytest.raises(AllocationError):
            task.expire()  # completed tasks cannot expire

    def test_expire_open(self):
        board = JobBoard()
        board.publish(0)
        board.publish(1)
        claimed = board.publish(2)
        claimed.claim("w1")
        assert board.expire_open() == 2
        assert board.open_tasks() == []
        assert board.counts_by_state()[TaskState.EXPIRED] == 2

    def test_reward_validation(self):
        with pytest.raises(AllocationError):
            JobBoard().publish(0, reward=0)

    def test_unique_ids_and_lookup(self):
        board = JobBoard()
        a = board.publish(0)
        b = board.publish(1)
        assert a.task_id != b.task_id
        assert board.get(b.task_id) is b
        assert len(board) == 2


class TestRewardLedger:
    def test_budget_accounting(self):
        ledger = RewardLedger(10)
        ledger.pay(1, "alice", 3)
        ledger.pay(2, "bob", 2)
        assert ledger.spent == 5
        assert ledger.remaining == 5
        assert ledger.balance_of("alice") == 3
        assert ledger.reconcile()

    def test_overdraw_rejected(self):
        ledger = RewardLedger(2)
        ledger.pay(1, "alice", 2)
        with pytest.raises(BudgetError):
            ledger.pay(2, "bob", 1)

    def test_validation(self):
        with pytest.raises(BudgetError):
            RewardLedger(-1)
        with pytest.raises(BudgetError):
            RewardLedger(5).pay(1, "w", 0)

    def test_payout_log(self):
        ledger = RewardLedger(5)
        ledger.pay(7, "alice", 1)
        assert ledger.payouts[0].task_id == 7
        assert ledger.payouts[0].worker_id == "alice"


class TestWorkers:
    def test_topic_affinity_drives_acceptance(self, tiny_corpus, rng):
        model = tiny_corpus.models[0]
        domain = model.primary_category[0]
        fan = SimulatedWorker(
            "fan", favourite_domains=frozenset({domain}), off_topic_acceptance=0.0
        )
        hater = SimulatedWorker(
            "hater",
            favourite_domains=frozenset({"__nothing__"}),
            off_topic_acceptance=0.0,
            base_acceptance=1.0,
        )
        assert any(fan.accepts(model, rng) for _ in range(20))
        assert not any(hater.accepts(model, rng) for _ in range(20))

    def test_pool_fills_tasks(self, tiny_corpus, rng):
        pool = WorkerPool.uniform(5, TopicHierarchy.from_taxonomy(), rng)
        board = JobBoard()
        task = board.publish(0)
        post = pool.try_fill(task, tiny_corpus.models[0], post_index=0, timestamp=0.0)
        assert post is not None
        assert task.state is TaskState.COMPLETED
        assert len(post.tags) >= 1

    def test_pool_gives_up_when_everyone_declines(self, tiny_corpus, rng):
        workers = [
            SimulatedWorker(
                "grump",
                favourite_domains=frozenset({"__none__"}),
                off_topic_acceptance=0.0,
            )
        ]
        pool = WorkerPool(workers, rng)
        board = JobBoard()
        task = board.publish(0)
        assert pool.try_fill(task, tiny_corpus.models[0], 0, 0.0) is None
        assert task.state is TaskState.OPEN

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            WorkerPool([], rng)


@pytest.fixture(scope="module")
def campaign_corpus():
    return paper_scenario(n=20, seed=13)


class TestCampaign:
    def build(self, corpus, strategy, budget=120, stop_tau=0.999, seed=0):
        rng = np.random.default_rng(seed)
        split = corpus.dataset.split(corpus.cutoff)
        pool = WorkerPool.uniform(8, corpus.hierarchy, rng)
        return IncentiveCampaign(
            corpus.models,
            [split.initial_posts(i) for i in range(split.n)],
            strategy,
            pool,
            budget=budget,
            rng=rng,
            stop_tau=stop_tau,
            batch_size=20,
        )

    def test_budget_never_overspent(self, campaign_corpus):
        campaign = self.build(campaign_corpus, FewestPostsFirst(), budget=100)
        result = campaign.run(max_epochs=50)
        assert result.ledger.spent <= 100
        assert result.ledger.reconcile()
        assert result.total_completed == result.ledger.spent  # 1 unit per task

    def test_counts_grow_by_bought_posts(self, campaign_corpus):
        campaign = self.build(campaign_corpus, FewestPostsFirst(), budget=80)
        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        result = campaign.run(max_epochs=50)
        for i in range(split.n):
            assert result.final_counts[i] == split.initial_counts[i] + len(
                result.bought_posts[i]
            )

    def test_adaptive_stopping_retires_resources(self, campaign_corpus):
        campaign = self.build(
            campaign_corpus, FewestPostsFirst(), budget=600, stop_tau=0.99
        )
        result = campaign.run(max_epochs=100)
        assert len(result.stopped_resources) > 0
        # A retired resource receives no tasks afterwards: its final MA
        # is above the threshold.
        assert result.stopped_resources <= set(campaign.monitor.stable_indices())

    def test_no_adaptive_stopping_when_disabled(self, campaign_corpus):
        campaign = self.build(
            campaign_corpus, FewestPostsFirst(), budget=150, stop_tau=None
        )
        result = campaign.run(max_epochs=50)
        assert result.stopped_resources == set()

    def test_free_choice_strategy_works_in_campaign(self, campaign_corpus):
        campaign = self.build(campaign_corpus, FreeChoice(), budget=60)
        result = campaign.run(max_epochs=30)
        assert result.total_completed > 0

    def test_render(self, campaign_corpus):
        campaign = self.build(campaign_corpus, FewestPostsFirst(), budget=40)
        result = campaign.run(max_epochs=10)
        text = result.render()
        assert "campaign:" in text and "epoch" in text

    def test_misaligned_inputs_rejected(self, campaign_corpus, rng):
        pool = WorkerPool.uniform(3, campaign_corpus.hierarchy, rng)
        with pytest.raises(AllocationError):
            IncentiveCampaign(
                campaign_corpus.models,
                [[]],
                FewestPostsFirst(),
                pool,
                budget=10,
                rng=rng,
            )


class TestStabilityAwareFP:
    def test_retires_stable_resources_online(self, campaign_corpus):
        from repro.allocation import IncentiveRunner

        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        runner = IncentiveRunner.replay(split)
        strategy = StabilityAwareFewestPosts(omega=5, tau=0.99)
        budget = min(500, split.total_future_posts)
        trace = runner.run(strategy, budget)
        assert strategy.retired_count() > 0

    def test_no_posts_after_retirement(self, campaign_corpus):
        # Once retired, a resource index never reappears in the order.
        from repro.allocation import IncentiveRunner
        from repro.core.stability import StabilityTracker

        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        runner = IncentiveRunner.replay(split)
        strategy = StabilityAwareFewestPosts(omega=5, tau=0.99)
        trace = runner.run(strategy, min(400, split.total_future_posts))
        trackers = [StabilityTracker(5, 0.99) for _ in range(split.n)]
        for i in range(split.n):
            trackers[i].add_posts(split.initial_posts(i))
        positions = split.initial_counts.astype(int).copy()
        for index in trace.order:
            assert not trackers[index].is_stable, "delivered to a retired resource"
            post = split.resources[index].sequence.post(int(positions[index]) + 1)
            trackers[index].add_post(post.tags)
            positions[index] += 1

    def test_spends_less_than_plain_fp_for_same_stability(self, campaign_corpus):
        from repro.allocation import FewestPostsFirst, IncentiveRunner

        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        runner = IncentiveRunner.replay(split)
        budget = min(600, split.total_future_posts)
        plain = runner.run(FewestPostsFirst(), budget)
        aware = runner.run(StabilityAwareFewestPosts(omega=5, tau=0.99), budget)
        # The aware variant stops early once everything stabilised.
        assert aware.budget_spent <= plain.budget_spent


class TestEngineBackedCampaign:
    def build(self, corpus, strategy, budget=120, stop_tau=0.999, seed=0, backend="engine"):
        rng = np.random.default_rng(seed)
        split = corpus.dataset.split(corpus.cutoff)
        pool = WorkerPool.uniform(8, corpus.hierarchy, rng)
        return IncentiveCampaign(
            corpus.models,
            [split.initial_posts(i) for i in range(split.n)],
            strategy,
            pool,
            budget=budget,
            rng=rng,
            stop_tau=stop_tau,
            batch_size=20,
            stability_backend=backend,
        )

    def test_unknown_backend_rejected(self, campaign_corpus):
        with pytest.raises(AllocationError):
            self.build(campaign_corpus, FewestPostsFirst(), backend="turbo")

    def test_budget_and_counts_accounting(self, campaign_corpus):
        campaign = self.build(campaign_corpus, FewestPostsFirst(), budget=100)
        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        result = campaign.run(max_epochs=50)
        assert result.ledger.spent <= 100
        assert result.ledger.reconcile()
        for i in range(split.n):
            assert result.final_counts[i] == split.initial_counts[i] + len(
                result.bought_posts[i]
            )

    def test_stopped_resources_are_truly_stable(self, campaign_corpus):
        """Every engine-retired resource verifies against a scalar tracker
        replay of its (initial + bought) post sequence."""
        from repro.core import StabilityTracker

        campaign = self.build(campaign_corpus, FewestPostsFirst(), budget=250)
        split = campaign_corpus.dataset.split(campaign_corpus.cutoff)
        result = campaign.run(max_epochs=60)
        assert result.stopped_resources, "campaign should retire something"
        for index in result.stopped_resources:
            tracker = StabilityTracker(campaign.omega, campaign.stop_tau)
            tracker.add_posts(split.initial_posts(index))
            tracker.add_posts(result.bought_posts[index])
            assert tracker.is_stable

    def test_matches_tracker_backend_on_same_seed(self, campaign_corpus):
        """Identical rng + strategy: the two backends buy the same posts
        until stopping timing diverges; totals must stay reconciled."""
        engine = self.build(campaign_corpus, FewestPostsFirst(), budget=120, seed=5)
        tracker = self.build(
            campaign_corpus, FewestPostsFirst(), budget=120, seed=5, backend="tracker"
        )
        engine_result = engine.run(max_epochs=40)
        tracker_result = tracker.run(max_epochs=40)
        assert engine_result.ledger.reconcile()
        assert tracker_result.ledger.reconcile()
        # epoch-batched stopping can only delay retirement, never invent it
        assert engine_result.total_completed >= tracker_result.total_completed


class TestJobBoardStateIndex:
    """The per-state index sets must mirror every task transition."""

    def brute_force(self, tasks):
        from collections import Counter

        return Counter(t.state for t in tasks)

    def assert_index_consistent(self, board, tasks):
        want = self.brute_force(tasks)
        counts = board.counts_by_state()
        for state in TaskState:
            assert counts.get(state, 0) == want.get(state, 0)
        assert board.open_tasks() == [t for t in tasks if t.state is TaskState.OPEN]
        assert board.completed_tasks() == [
            t for t in tasks if t.state is TaskState.COMPLETED
        ]

    def test_index_tracks_every_transition(self):
        board = JobBoard()
        tasks = [board.publish(i) for i in range(6)]
        self.assert_index_consistent(board, tasks)
        tasks[0].claim("w1")
        tasks[0].complete(Post.of("a"))
        tasks[1].claim("w2")
        tasks[2].expire()
        self.assert_index_consistent(board, tasks)
        assert board.expire_open() == 3  # tasks 3, 4, 5
        self.assert_index_consistent(board, tasks)
        tasks[1].complete(Post.of("b"))
        self.assert_index_consistent(board, tasks)

    def test_failed_transitions_leave_index_unchanged(self):
        board = JobBoard()
        tasks = [board.publish(i) for i in range(2)]
        tasks[0].claim("w1")
        before = board.counts_by_state()
        with pytest.raises(AllocationError):
            tasks[0].claim("w2")  # double claim
        with pytest.raises(AllocationError):
            tasks[1].complete(Post.of("a"))  # complete while unclaimed
        assert board.counts_by_state() == before
        self.assert_index_consistent(board, tasks)

    def test_queries_preserve_publication_order(self):
        board = JobBoard()
        tasks = [board.publish(i) for i in range(5)]
        # claim/complete out of publication order
        for task in (tasks[3], tasks[0], tasks[4]):
            task.claim("w")
            task.complete(Post.of("x"))
        assert board.completed_tasks() == [tasks[0], tasks[3], tasks[4]]
        assert board.open_tasks() == [tasks[1], tasks[2]]


class TestCampaignStepwise:
    """The epoch-granular API: start/step/replay must equal run()."""

    def build(self, corpus, budget=120, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        split = corpus.dataset.split(corpus.cutoff)
        pool = WorkerPool.uniform(8, corpus.hierarchy, rng)
        return IncentiveCampaign(
            corpus.models,
            [split.initial_posts(i) for i in range(split.n)],
            FewestPostsFirst(),
            pool,
            budget=budget,
            rng=rng,
            stop_tau=0.999,
            batch_size=20,
            **kwargs,
        )

    def test_step_loop_matches_run(self, campaign_corpus):
        import json

        whole = self.build(campaign_corpus).run(max_epochs=30)
        stepped = self.build(campaign_corpus)
        stepped.start()
        while stepped.epochs_run < 30:
            if stepped.step_epoch() is None:
                break
        result = stepped.finish()
        assert json.dumps(result.trace_payload(), sort_keys=True) == json.dumps(
            whole.trace_payload(), sort_keys=True
        )

    def test_step_before_start_raises(self, campaign_corpus):
        with pytest.raises(AllocationError):
            self.build(campaign_corpus).step_epoch()

    def test_replay_journal_reproduces_the_run(self, campaign_corpus):
        import json

        live = self.build(campaign_corpus, budget=80)
        live.start()
        while live.step_epoch() is not None:
            pass
        replayed = self.build(campaign_corpus, budget=80)
        replayed.start()
        for events in live.journal:
            replayed.replay_epoch(events)
        assert json.dumps(replayed.finish().trace_payload(), sort_keys=True) == (
            json.dumps(live.finish().trace_payload(), sort_keys=True)
        )

    def test_reports_carry_withdrawn_and_task_counts(self, campaign_corpus):
        campaign = self.build(campaign_corpus, budget=100)
        campaign.start()
        reports = []
        while len(reports) < 5:
            report = campaign.step_epoch()
            if report is None:
                break
            reports.append(report)
        assert reports, "campaign should run at least one epoch"
        published_so_far = 0
        for report in reports:
            # unfilled tasks are withdrawn (expired) at the epoch boundary
            assert report.withdrawn == report.unfilled
            published_so_far += report.published
            # the histogram is a cumulative snapshot of the whole board
            assert sum(report.task_counts.values()) == published_so_far
        assert published_so_far == len(campaign.board)
        last = reports[-1]
        assert last.task_counts.get(TaskState.COMPLETED.value, 0) == sum(
            r.completed for r in reports
        )

    def test_max_offers_plumbed_to_worker_pool(self, campaign_corpus, monkeypatch):
        campaign = self.build(campaign_corpus, budget=40, max_offers=3)
        seen = []
        original = WorkerPool.try_fill

        def spy(self, *args, **kwargs):
            seen.append(kwargs.get("max_offers"))
            return original(self, *args, **kwargs)

        monkeypatch.setattr(WorkerPool, "try_fill", spy)
        campaign.start()
        campaign.step_epoch()
        assert seen and set(seen) == {3}

    def test_max_offers_validation(self, campaign_corpus):
        with pytest.raises(AllocationError):
            self.build(campaign_corpus, max_offers=0)

    def test_max_offers_from_spec(self):
        from repro.api import CampaignSpec
        from repro.core.errors import SpecError

        assert CampaignSpec().max_offers == 10
        assert CampaignSpec(max_offers=4).max_offers == 4
        with pytest.raises(SpecError):
            CampaignSpec(max_offers=0)
