"""Concurrency determinism: parallel sharded campaigns must not move a byte.

The sharded stability backend routes per-shard ingest kernels through a
:class:`~repro.engine.executor.ShardExecutor`.  Shards share no state and
results are reassembled in submission order, so the executor choice (and
its worker count) must be invisible in every trace.  These tests replay
the pinned campaign specs of ``tests/fixtures/campaign_traces.json`` with
the ``sharded`` backend — thread pools *and* the process shard engine —
across worker counts and shard counts and require byte-identical traces,
the same bar the monitor-unification refactor was held to.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "campaign_traces.json"


@pytest.fixture(autouse=True)
def _force_pool_dispatch(monkeypatch):
    """Campaign epochs buffer ~100 events — below the inline cutoff, so
    zero it here or these tests would never reach the worker pool."""
    monkeypatch.setattr("repro.engine.executor.PARALLEL_MIN_EVENTS", 0)
    monkeypatch.setattr("repro.engine.shard.PARALLEL_MIN_EVENTS", 0)


@pytest.fixture(scope="module")
def fixture_module():
    spec = importlib.util.spec_from_file_location(
        "generate_campaign_fixture",
        REPO_ROOT / "scripts" / "generate_campaign_fixture.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def engine_entries():
    pinned = json.loads(FIXTURE.read_text())["traces"]
    entries = [e for e in pinned if e["spec"]["stability_backend"] == "engine"]
    assert entries, "fixture lost its engine traces"
    return entries


def _sharded_spec(entry, *, backend, n_shards, workers=0):
    return dict(
        entry["spec"],
        stability_backend="sharded",
        execution={
            "type": "execution",
            "backend": backend,
            "shards": n_shards,
            "workers": workers,
            "min_parallel_events": None,
        },
    )


class TestParallelShardedCampaign:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_matches_engine_trace_at_any_worker_and_shard_count(
        self, fixture_module, engine_entries, n_shards, workers
    ):
        entry = engine_entries[0]
        spec = _sharded_spec(
            entry, backend="thread", n_shards=n_shards, workers=workers
        )
        got = fixture_module.campaign_trace(spec)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        ), f"parallel sharded trace diverged (shards={n_shards}, workers={workers})"

    def test_serial_executor_matches_engine_trace(
        self, fixture_module, engine_entries
    ):
        for entry in engine_entries:
            spec = _sharded_spec(entry, backend="serial", n_shards=4)
            got = fixture_module.campaign_trace(spec)
            assert json.dumps(got, sort_keys=True) == json.dumps(
                entry["trace"], sort_keys=True
            ), f"serial sharded trace diverged for {entry['spec']}"

    def test_thread_pool_matches_every_pinned_engine_spec(
        self, fixture_module, engine_entries
    ):
        # the full pinned set (FP and MU) through a 2-worker pool
        for entry in engine_entries:
            spec = _sharded_spec(entry, backend="thread", n_shards=4, workers=2)
            got = fixture_module.campaign_trace(spec)
            assert json.dumps(got, sort_keys=True) == json.dumps(
                entry["trace"], sort_keys=True
            ), f"threaded sharded trace diverged for {entry['spec']}"

    def test_legacy_flat_keys_still_replay_identically(
        self, fixture_module, engine_entries
    ):
        # a pre-ExecutionSpec payload (flat stability_* knobs) must load
        # through the deprecation shim and produce the same bytes
        entry = engine_entries[0]
        spec = dict(
            entry["spec"],
            stability_backend="sharded",
            stability_shards=4,
            stability_executor="thread",
            stability_workers=2,
        )
        with pytest.warns(DeprecationWarning, match="stability_shards"):
            got = fixture_module.campaign_trace(spec)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        ), "legacy-keyed sharded trace diverged"


class TestProcessShardedCampaign:
    """The process shard engine is trace-identical to the pinned serial
    fixtures at every worker × shard geometry (ISSUE 9 acceptance)."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_matches_engine_trace_at_any_worker_and_shard_count(
        self, fixture_module, engine_entries, n_shards, workers
    ):
        entry = engine_entries[0]
        spec = _sharded_spec(
            entry, backend="process", n_shards=n_shards, workers=workers
        )
        got = fixture_module.campaign_trace(spec)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        ), f"process sharded trace diverged (shards={n_shards}, workers={workers})"

    def test_process_pool_matches_every_pinned_engine_spec(
        self, fixture_module, engine_entries
    ):
        for entry in engine_entries:
            spec = _sharded_spec(entry, backend="process", n_shards=3, workers=2)
            got = fixture_module.campaign_trace(spec)
            assert json.dumps(got, sort_keys=True) == json.dumps(
                entry["trace"], sort_keys=True
            ), f"process sharded trace diverged for {entry['spec']}"


class TestFaultRecoveryCampaign:
    """Self-healing acceptance: a process-backend campaign whose shard
    workers are killed mid-ingest recovers to the byte-identical pinned
    trace (ISSUE 10)."""

    @pytest.fixture(autouse=True)
    def clean_injector(self, monkeypatch):
        from repro import faults
        from repro.faults.plan import _reset_for_tests

        monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
        _reset_for_tests()
        yield
        _reset_for_tests()

    @pytest.mark.parametrize("kill_at", [0, 2, 5])
    def test_worker_killed_mid_campaign_trace_is_byte_identical(
        self, fixture_module, engine_entries, kill_at
    ):
        import pytest as _pytest

        from repro import faults

        entry = engine_entries[0]
        spec = _sharded_spec(entry, backend="process", n_shards=3, workers=2)
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": kill_at},
        ]})
        with _pytest.warns(RuntimeWarning, match="respawn"):
            got = fixture_module.campaign_trace(spec)
        assert faults.active().fired_total() == 1, "kill never fired"
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        ), f"trace diverged after worker kill at flush {kill_at}"

    def test_worker_side_kill_trace_is_byte_identical(
        self, fixture_module, engine_entries
    ):
        import pytest as _pytest

        from repro import faults

        entry = engine_entries[0]
        spec = _sharded_spec(entry, backend="process", n_shards=3, workers=2)
        faults.activate({"specs": [
            {"site": "procpool.worker", "kind": "kill_worker", "at": 3},
        ]})
        with _pytest.warns(RuntimeWarning, match="respawn"):
            got = fixture_module.campaign_trace(spec)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        )

    def test_degraded_campaign_trace_is_byte_identical(
        self, fixture_module, engine_entries
    ):
        """Even the last rung of the ladder — respawn budget exhausted,
        degraded to an in-parent executor mid-campaign — keeps the trace."""
        import pytest as _pytest

        from repro import faults
        from repro.engine import procpool

        entry = engine_entries[0]
        spec = _sharded_spec(entry, backend="process", n_shards=3, workers=2)
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 0, "every": 1,
             "times": 4},
        ]})
        original_init = procpool.ProcessExecutor.__init__

        def tight_budget(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            self.max_respawns = 1

        with _pytest.MonkeyPatch.context() as mp:
            mp.setattr(procpool.ProcessExecutor, "__init__", tight_budget)
            with _pytest.warns(RuntimeWarning):
                got = fixture_module.campaign_trace(spec)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            entry["trace"], sort_keys=True
        ), "trace diverged after mid-campaign degrade"
