"""Worker drive loop and ledger accounting, with their telemetry counters.

The basic lifecycle lives in ``test_service.py``; this module pins the
behaviours the telemetry layer rides on: the offer loop's decline/accept
arithmetic, abandonment after ``max_offers``, the ledger's budget
invariants, and — under an activated :class:`repro.obs.Telemetry` — the
``workers.*`` / ``ledger.*`` counters those paths record.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core import BudgetError
from repro.service import JobBoard, RewardLedger, SimulatedWorker, TaskState, WorkerPool
from repro.simulate import TopicHierarchy


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


@pytest.fixture()
def telemetry():
    """An activated telemetry, restored and closed after the test."""
    with obs.Telemetry() as active:
        with obs.activated(active):
            yield active


def eager_pool(rng, size=3) -> WorkerPool:
    workers = [
        SimulatedWorker(f"w{i}", base_acceptance=1.0, off_topic_acceptance=1.0)
        for i in range(size)
    ]
    return WorkerPool(workers, rng)


def grumpy_pool(rng, size=3) -> WorkerPool:
    workers = [
        SimulatedWorker(
            f"g{i}",
            favourite_domains=frozenset({"__none__"}),
            off_topic_acceptance=0.0,
        )
        for i in range(size)
    ]
    return WorkerPool(workers, rng)


class TestWorkerDriveLoop:
    def test_completed_task_carries_the_post(self, tiny_corpus, rng):
        pool = eager_pool(rng)
        task = JobBoard().publish(0)
        post = pool.try_fill(task, tiny_corpus.models[0], post_index=0, timestamp=1.0)
        assert post is not None
        assert task.state is TaskState.COMPLETED
        assert task.result is post

    def test_abandoned_after_max_offers(self, tiny_corpus, rng):
        pool = grumpy_pool(rng)
        task = JobBoard().publish(0)
        post = pool.try_fill(
            task, tiny_corpus.models[0], 0, 0.0, max_offers=4
        )
        assert post is None
        assert task.state is TaskState.OPEN

    def test_uniform_pool_has_distinct_ids(self, rng):
        pool = WorkerPool.uniform(6, TopicHierarchy.from_taxonomy(), rng)
        ids = [worker.worker_id for worker in pool.workers]
        assert len(set(ids)) == 6

    def test_acceptance_counters(self, tiny_corpus, rng, telemetry):
        pool = eager_pool(rng)  # built under the active telemetry
        board = JobBoard()
        for index in range(5):
            task = board.publish(0)
            assert pool.try_fill(task, tiny_corpus.models[0], index, 0.0)
        counters = telemetry.snapshot()["counters"]
        assert counters["workers.accepted"] == 5
        # every worker accepts on the first offer: no declines recorded
        assert counters["workers.offers"] == 5
        assert "workers.declined" not in counters
        assert "workers.abandoned" not in counters

    def test_abandonment_counters(self, tiny_corpus, rng, telemetry):
        pool = grumpy_pool(rng)
        task = JobBoard().publish(0)
        assert pool.try_fill(task, tiny_corpus.models[0], 0, 0.0, max_offers=7) is None
        counters = telemetry.snapshot()["counters"]
        assert counters["workers.abandoned"] == 1
        assert counters["workers.declined"] == 7
        assert counters["workers.offers"] == 7
        assert "workers.accepted" not in counters

    def test_no_counters_without_telemetry(self, tiny_corpus, rng):
        assert obs.get() is obs.NULL  # the suite's ambient state
        pool = eager_pool(rng)
        task = JobBoard().publish(0)
        assert pool.try_fill(task, tiny_corpus.models[0], 0, 0.0) is not None


class TestLedgerAccounting:
    def test_budget_arithmetic_and_reconcile(self):
        ledger = RewardLedger(10)
        ledger.pay(1, "alice", 3)
        ledger.pay(2, "bob", 2)
        ledger.pay(3, "alice", 1)
        assert ledger.spent == 6
        assert ledger.remaining == 4
        assert ledger.balance_of("alice") == 4
        assert ledger.balance_of("bob") == 2
        assert ledger.balance_of("carol") == 0
        assert [p.task_id for p in ledger.payouts] == [1, 2, 3]
        assert ledger.reconcile()

    def test_exact_budget_exhaustion(self):
        ledger = RewardLedger(2)
        ledger.pay(1, "w", 1)
        assert ledger.can_afford(1)
        ledger.pay(2, "w", 1)
        assert not ledger.can_afford(1)
        with pytest.raises(BudgetError):
            ledger.pay(3, "w", 1)
        assert ledger.reconcile()

    def test_failed_payout_leaves_no_trace(self):
        ledger = RewardLedger(5)
        ledger.pay(1, "w", 4)
        with pytest.raises(BudgetError):
            ledger.pay(2, "w", 2)
        assert ledger.spent == 4
        assert len(ledger.payouts) == 1
        assert ledger.reconcile()

    def test_reconcile_after_interleaved_failures(self):
        """Failed payouts between successes never skew the books."""
        ledger = RewardLedger(6)
        ledger.pay(1, "alice", 2)
        with pytest.raises(BudgetError):
            ledger.pay(2, "bob", 5)
        ledger.pay(3, "bob", 4)
        with pytest.raises(BudgetError):
            ledger.pay(4, "alice", 1)
        assert ledger.spent == 6
        assert ledger.remaining == 0
        assert ledger.balance_of("alice") == 2
        assert ledger.balance_of("bob") == 4
        assert [p.task_id for p in ledger.payouts] == [1, 3]
        assert ledger.reconcile()

    def test_reconcile_detects_corrupted_state(self):
        ledger = RewardLedger(10)
        ledger.pay(1, "w", 3)
        assert ledger.reconcile()
        ledger._spent += 1  # simulate state corruption
        assert not ledger.reconcile()

    def test_payout_counters(self, telemetry):
        ledger = RewardLedger(20)  # built under the active telemetry
        ledger.pay(1, "alice", 3)
        ledger.pay(2, "bob", 5)
        counters = telemetry.snapshot()["counters"]
        assert counters["ledger.payouts"] == 2
        assert counters["ledger.units_paid"] == 8

    def test_rejected_payout_not_counted(self, telemetry):
        ledger = RewardLedger(2)
        with pytest.raises(BudgetError):
            ledger.pay(1, "w", 5)
        assert "ledger.payouts" not in telemetry.snapshot()["counters"]
