"""Pinned campaign traces: the monitor refactor must not move a byte.

``tests/fixtures/campaign_traces.json`` was generated from the campaign
*before* stability state moved behind ``StabilityMonitor`` (see
``scripts/generate_campaign_fixture.py``).  These tests replay the same
specs and require byte-identical traces — epoch reports, final counts,
the stopped set and a digest of every bought post — for the ``tracker``
and ``engine`` backends, and require the new ``sharded`` backend to
reproduce the ``engine`` trace exactly (sharding is a layout choice, not
a semantic one).
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "campaign_traces.json"


def _load_fixture_module():
    spec = importlib.util.spec_from_file_location(
        "generate_campaign_fixture",
        REPO_ROOT / "scripts" / "generate_campaign_fixture.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def fixture_module():
    return _load_fixture_module()


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())["traces"]


class TestPinnedTraces:
    def test_fixture_covers_both_seed_backends(self, pinned):
        backends = {entry["spec"]["stability_backend"] for entry in pinned}
        assert backends == {"tracker", "engine"}

    def test_traces_are_byte_identical_to_pre_refactor(self, fixture_module, pinned):
        for entry in pinned:
            got = fixture_module.campaign_trace(entry["spec"])
            assert json.dumps(got, sort_keys=True) == json.dumps(
                entry["trace"], sort_keys=True
            ), f"trace diverged for {entry['spec']}"

    def test_sharded_backend_matches_engine_trace(self, fixture_module, pinned):
        for entry in pinned:
            if entry["spec"]["stability_backend"] != "engine":
                continue
            sharded_spec = dict(entry["spec"], stability_backend="sharded")
            got = fixture_module.campaign_trace(sharded_spec)
            assert json.dumps(got, sort_keys=True) == json.dumps(
                entry["trace"], sort_keys=True
            ), f"sharded trace diverged from engine for {entry['spec']}"

    def test_traces_identical_with_telemetry_enabled(self, fixture_module, pinned):
        """Telemetry observes, never steers: byte-identical traces on/off."""
        import repro.obs as obs

        telemetry = obs.Telemetry()
        try:
            with obs.activated(telemetry):
                for entry in pinned:
                    got = fixture_module.campaign_trace(entry["spec"])
                    assert json.dumps(got, sort_keys=True) == json.dumps(
                        entry["trace"], sort_keys=True
                    ), f"telemetry changed the trace for {entry['spec']}"
            # and the run did actually record through the ambient telemetry
            assert telemetry.snapshot()["counters"].get("campaign.epochs", 0) > 0
        finally:
            telemetry.close()
