"""End-to-end integration: generate → split → allocate → evaluate → report."""

import numpy as np
import pytest

from repro.core import TaggingDataset
from repro.allocation import (
    FewestPostsFirst,
    FreeChoice,
    HybridFPMU,
    IncentiveRunner,
    MostUnstableFirst,
    RoundRobin,
    gains_from_profiles,
    solve_dp,
    solve_greedy,
)
from repro.experiments.evaluation import GroundTruth, TraceEvaluator
from repro.simulate import paper_scenario


@pytest.fixture(scope="module")
def pipeline():
    corpus = paper_scenario(n=30, seed=21)
    split = corpus.dataset.split(corpus.cutoff)
    truth = GroundTruth.build(corpus.dataset)
    evaluator = TraceEvaluator(split, truth)
    runner = IncentiveRunner.replay(split)
    return corpus, split, truth, evaluator, runner


class TestFullPipeline:
    def test_every_strategy_improves_or_preserves_quality(self, pipeline):
        corpus, split, truth, evaluator, runner = pipeline
        before = evaluator.quality_of_counts(split.initial_counts)
        for strategy in (
            FreeChoice(),
            RoundRobin(),
            FewestPostsFirst(),
            MostUnstableFirst(omega=5),
            HybridFPMU(omega=5),
        ):
            trace = runner.run(strategy, budget=150)
            after = evaluator.quality_of_x(trace.x)
            assert after >= before - 0.02, strategy.name

    def test_dp_upper_bounds_all_strategies_exactly(self, pipeline):
        corpus, split, truth, evaluator, runner = pipeline
        budget = 100
        gains = gains_from_profiles(truth.profiles, split.initial_counts, budget)
        optimal = solve_dp(gains, budget)
        optimal_quality = evaluator.quality_of_x(optimal.x)
        for strategy in (FreeChoice(), RoundRobin(), FewestPostsFirst()):
            trace = runner.run(strategy, budget)
            assert evaluator.quality_of_x(trace.x) <= optimal_quality + 1e-9

    def test_dp_quality_equals_evaluator_quality(self, pipeline):
        # DP's internal objective and the evaluator must agree exactly.
        corpus, split, truth, evaluator, runner = pipeline
        budget = 80
        gains = gains_from_profiles(truth.profiles, split.initial_counts, budget)
        optimal = solve_dp(gains, budget)
        assert optimal.mean_quality == pytest.approx(
            evaluator.quality_of_x(optimal.x), abs=1e-9
        )

    def test_greedy_close_to_dp_on_real_gain_tables(self, pipeline):
        corpus, split, truth, evaluator, runner = pipeline
        budget = 100
        gains = gains_from_profiles(truth.profiles, split.initial_counts, budget)
        greedy = solve_greedy(gains, budget)
        optimal = solve_dp(gains, budget)
        # Real gain tables are non-concave (quality can dip), so greedy
        # is not optimal — but it should stay in DP's neighbourhood.
        assert greedy.value >= 0.95 * optimal.value

    def test_round_trip_through_jsonl_preserves_experiment(self, pipeline, tmp_path):
        corpus, split, truth, evaluator, runner = pipeline
        path = tmp_path / "corpus.jsonl"
        corpus.dataset.to_jsonl(path)
        reloaded = TaggingDataset.from_jsonl(path)
        split2 = reloaded.split(corpus.cutoff)
        assert (split2.initial_counts == split.initial_counts).all()
        truth2 = GroundTruth.build(reloaded)
        assert np.array_equal(truth2.stable_points, truth.stable_points)
        runner2 = IncentiveRunner.replay(split2)
        trace = runner.run(FewestPostsFirst(), budget=60)
        trace2 = runner2.run(FewestPostsFirst(), budget=60)
        assert trace.order == trace2.order

    def test_generative_mode_runs_unbounded(self, pipeline, rng):
        corpus, split, truth, evaluator, runner = pipeline
        from repro.allocation import popularity_chooser
        from repro.simulate import TaggerBehavior, generate_post

        behavior = TaggerBehavior()
        positions = split.initial_counts.astype(int).tolist()

        def factory(index: int):
            positions[index] += 1
            return generate_post(
                corpus.models[index], positions[index] - 1, 999.0, rng, behavior
            )

        weights = corpus.dataset.posts_per_resource().astype(float)
        generative = IncentiveRunner.generative(
            split.initial_counts,
            [split.initial_posts(i) for i in range(split.n)],
            factory,
            popularity_chooser(weights, rng),
        )
        budget = int(split.total_future_posts + 500)  # beyond replay capacity
        trace = generative.run(FreeChoice(), budget)
        assert trace.budget_spent == budget

    def test_cost_and_preference_extensions_compose(self, pipeline, rng):
        corpus, split, truth, evaluator, runner = pipeline
        costs = np.ones(split.n, dtype=np.int64)
        costs[: split.n // 2] = 2
        acceptance = np.full(split.n, 0.9)
        trace = runner.run(
            HybridFPMU(omega=5), budget=80, costs=costs, acceptance=acceptance, rng=rng
        )
        assert trace.budget_spent <= 80
        assert (trace.x >= 0).all()
