"""Tests for tagging events, interning and CSR batch encoding."""

import numpy as np
import pytest

from repro.core import DataModelError, Post
from repro.engine import EventBatch, Interner, TagEvent, encode_events
from repro.engine.events import events_from_posts


class TestInterner:
    def test_ids_are_dense_and_stable(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert len(interner) == 2
        assert interner.items() == ["a", "b"]
        assert interner.value(1) == "b"

    def test_seeded_rebuild(self):
        interner = Interner(["x", "y", "z"])
        assert interner.intern("y") == 1
        assert interner.intern("w") == 3

    def test_duplicate_seed_rejected(self):
        with pytest.raises(DataModelError):
            Interner(["a", "a"])

    def test_intern_all_mixes_hits_and_misses(self):
        interner = Interner(["a"])
        ids = interner.intern_all(["b", "a", "b", "c"])
        assert ids.tolist() == [1, 0, 1, 2]
        assert interner.items() == ["a", "b", "c"]

    def test_lookup_and_contains(self):
        interner = Interner(["a"])
        assert "a" in interner and "b" not in interner
        assert interner.lookup("b") is None


class TestTagEvent:
    def test_from_post_sorts_tags(self):
        post = Post.of("zebra", "apple", timestamp=3.0, tagger="w1")
        event = TagEvent.from_post("r1", post)
        assert event.tags == ("apple", "zebra")
        assert event.timestamp == 3.0
        assert event.tagger == "w1"

    def test_events_from_posts(self):
        posts = [Post.of("a", timestamp=1.0), Post.of("b", timestamp=2.0)]
        events = list(events_from_posts("r", posts))
        assert [e.tags for e in events] == [("a",), ("b",)]
        assert all(e.resource_id == "r" for e in events)


class TestEncodeEvents:
    def test_csr_layout(self):
        events = [
            TagEvent("r1", ("a", "b")),
            TagEvent("r2", ("b",)),
            TagEvent("r1", ("c", "a", "b")),
        ]
        tags, resources = Interner(), Interner()
        batch = encode_events(events, tags=tags, resources=resources)
        assert isinstance(batch, EventBatch)
        assert batch.n_events == 3
        assert len(batch) == 3
        assert batch.n_tag_assignments == 6
        assert batch.indptr.tolist() == [0, 2, 3, 6]
        assert batch.lengths().tolist() == [2, 1, 3]
        assert batch.resources.tolist() == [0, 1, 0]
        # per-event tag slices decode back to the original tag sets
        for i, event in enumerate(events):
            ids = batch.tag_ids[batch.indptr[i] : batch.indptr[i + 1]]
            assert {tags.value(int(t)) for t in ids} == set(event.tags)

    def test_empty_batch(self):
        batch = encode_events([], tags=Interner(), resources=Interner())
        assert batch.n_events == 0
        assert batch.indptr.tolist() == [0]

    def test_empty_post_rejected(self):
        with pytest.raises(DataModelError):
            encode_events([TagEvent("r", ())], tags=Interner(), resources=Interner())

    def test_duplicate_tags_collapsed(self):
        batch = encode_events(
            [TagEvent("r", ("a", "a", "b")), TagEvent("r", ("b", "b"))],
            tags=Interner(),
            resources=Interner(),
        )
        assert batch.lengths().tolist() == [2, 1]
        assert batch.n_tag_assignments == 3

    def test_timestamps_carried(self):
        batch = encode_events(
            [TagEvent("r", ("a",), timestamp=5.5)], tags=Interner(), resources=Interner()
        )
        assert np.allclose(batch.timestamps, [5.5])
