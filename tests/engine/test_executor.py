"""Tests for the shard-executor seam (serial and thread backends)."""

import threading

import pytest

from repro.core import DataModelError
from repro.engine import (
    EXECUTOR_BACKENDS,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.executor import default_workers


class TestFactory:
    def test_backends_constant(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread")

    def test_serial(self):
        executor = make_executor("serial")
        assert isinstance(executor, SerialExecutor)
        assert executor.kind == "serial"
        assert executor.workers == 1

    def test_thread_explicit_workers(self):
        with make_executor("thread", workers=3) as executor:
            assert isinstance(executor, ThreadExecutor)
            assert executor.kind == "thread"
            assert executor.workers == 3

    def test_thread_auto_workers(self):
        with make_executor("thread") as executor:
            assert executor.workers == default_workers()
            assert executor.workers >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(DataModelError):
            make_executor("fork")

    def test_negative_workers_rejected(self):
        with pytest.raises(DataModelError):
            make_executor("thread", workers=-1)
        with pytest.raises(DataModelError):
            ThreadExecutor(-2)


@pytest.mark.parametrize("executor_kind,workers", [
    ("serial", 0), ("thread", 1), ("thread", 4),
])
class TestRun:
    def test_results_in_submission_order(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            tasks = [(lambda i=i: i * i) for i in range(20)]
            assert executor.run(tasks) == [i * i for i in range(20)]

    def test_empty_and_singleton(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            assert executor.run([]) == []
            assert executor.run([lambda: "only"]) == ["only"]

    def test_exception_propagates(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            def boom():
                raise ValueError("shard kernel failed")

            with pytest.raises(ValueError, match="shard kernel failed"):
                executor.run([lambda: 1, boom, lambda: 3])


class TestThreadPooling:
    def test_pool_is_reused_across_runs(self):
        with ThreadExecutor(2) as executor:
            seen: set[int] = set()

            def task():
                seen.add(threading.get_ident())
                return True

            for _ in range(5):
                assert executor.run([task, task, task]) == [True] * 3
            # the pool's threads serviced every round (no per-run spawn)
            assert len(seen) <= 2
            assert executor._pool is not None

    def test_close_is_idempotent(self):
        executor = ThreadExecutor(2)
        executor.run([lambda: 1, lambda: 2])
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_runs_genuinely_concurrent(self):
        # two tasks that each wait for the other: only a pool with >= 2
        # live workers can finish (a serial executor would deadlock)
        with ThreadExecutor(2) as executor:
            barrier = threading.Barrier(2, timeout=5)
            results = executor.run([barrier.wait, barrier.wait])
            assert sorted(results) == [0, 1]
