"""Tests for the shard-executor seam (serial and thread backends)."""

import threading

import pytest

from repro.core import DataModelError
from repro.engine import (
    EXECUTOR_BACKENDS,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.executor import default_workers


class TestFactory:
    def test_backends_constant(self):
        assert EXECUTOR_BACKENDS == ("process", "serial", "thread")

    def test_serial(self):
        executor = make_executor("serial")
        assert isinstance(executor, SerialExecutor)
        assert executor.kind == "serial"
        assert executor.workers == 1

    def test_thread_explicit_workers(self):
        with make_executor("thread", workers=3) as executor:
            assert isinstance(executor, ThreadExecutor)
            assert executor.kind == "thread"
            assert executor.workers == 3

    def test_thread_auto_workers(self):
        with make_executor("thread") as executor:
            assert executor.workers == default_workers()
            assert executor.workers >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(DataModelError):
            make_executor("fork")

    def test_negative_workers_rejected(self):
        with pytest.raises(DataModelError):
            make_executor("thread", workers=-1)
        with pytest.raises(DataModelError):
            ThreadExecutor(-2)


@pytest.mark.parametrize("executor_kind,workers", [
    ("serial", 0), ("thread", 1), ("thread", 4),
])
class TestRun:
    def test_results_in_submission_order(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            tasks = [(lambda i=i: i * i) for i in range(20)]
            assert executor.run(tasks) == [i * i for i in range(20)]

    def test_empty_and_singleton(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            assert executor.run([]) == []
            assert executor.run([lambda: "only"]) == ["only"]

    def test_exception_propagates(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            def boom():
                raise ValueError("shard kernel failed")

            with pytest.raises(ValueError, match="shard kernel failed"):
                executor.run([lambda: 1, boom, lambda: 3])


class TestThreadPooling:
    def test_pool_is_reused_across_runs(self):
        with ThreadExecutor(2) as executor:
            seen: set[int] = set()

            def task():
                seen.add(threading.get_ident())
                return True

            for _ in range(5):
                assert executor.run([task, task, task]) == [True] * 3
            # the pool's threads serviced every round (no per-run spawn)
            assert len(seen) <= 2
            assert executor._pool is not None

    def test_close_is_idempotent(self):
        executor = ThreadExecutor(2)
        executor.run([lambda: 1, lambda: 2])
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_runs_genuinely_concurrent(self):
        # two tasks that each wait for the other: only a pool with >= 2
        # live workers can finish (a serial executor would deadlock)
        with ThreadExecutor(2) as executor:
            barrier = threading.Barrier(2, timeout=5)
            results = executor.run([barrier.wait, barrier.wait])
            assert sorted(results) == [0, 1]


class TestPoolStats:
    """The executor's run/task counters make pool usage observable."""

    @pytest.mark.parametrize("executor_kind,workers", [("serial", 0), ("thread", 2)])
    def test_counters_accumulate(self, executor_kind, workers):
        with make_executor(executor_kind, workers) as executor:
            assert executor.run_calls == 0
            assert executor.tasks_run == 0
            executor.run([lambda: 1, lambda: 2, lambda: 3])
            executor.run([lambda: 4])
            assert executor.run_calls == 2
            assert executor.tasks_run == 4

    def test_counters_are_per_instance(self):
        with make_executor("serial") as a, make_executor("serial") as b:
            a.run([lambda: 1])
            assert a.run_calls == 1
            assert b.run_calls == 0

    def test_small_batches_short_circuit_the_pool(self):
        """Batches under PARALLEL_MIN_EVENTS never touch the executor."""
        from repro.engine import ShardedStabilityBank
        from repro.engine.events import TagEvent
        from repro.engine.executor import PARALLEL_MIN_EVENTS

        events = [
            TagEvent(resource_id=f"r{i}", tags=("a", "b"), timestamp=float(i))
            for i in range(32)
        ]
        assert len(events) < PARALLEL_MIN_EVENTS
        with ThreadExecutor(2) as executor:
            bank = ShardedStabilityBank(4, 3, 0.9, executor=executor)
            bank.ingest_events(events)
            assert executor.run_calls == 0, "tiny batch reached the pool"
            assert executor.tasks_run == 0
            assert bank.inline_cutoff_hits == 1
            bank.ingest_events(events)
            assert bank.inline_cutoff_hits == 2

    def test_pool_engages_above_the_cutoff(self):
        from repro.engine import ShardedStabilityBank
        from repro.engine.events import TagEvent

        events = [
            TagEvent(resource_id=f"r{i % 40}", tags=("a", "b"), timestamp=float(i))
            for i in range(64)
        ]
        with ThreadExecutor(2) as executor:
            bank = ShardedStabilityBank(4, 3, 0.9, executor=executor)
            bank.parallel_min_events = 0  # force pooled dispatch
            bank.ingest_events(events)
            assert executor.run_calls == 1
            assert executor.tasks_run == 4  # one kernel per touched shard
            assert bank.inline_cutoff_hits == 0

    def test_inline_cutoff_not_counted_without_executor(self):
        from repro.engine import ShardedStabilityBank
        from repro.engine.events import TagEvent

        bank = ShardedStabilityBank(4, 3, 0.9)  # no executor: inline only
        bank.ingest_events(
            [TagEvent(resource_id="r1", tags=("a",), timestamp=0.0)]
        )
        assert bank.inline_cutoff_hits == 0
