"""Tests for the IngestEngine and the simulate-layer event streams."""

import pytest

from repro.core import DataModelError, StabilityTracker
from repro.engine import IngestEngine, ShardedStabilityBank, StabilityBank, TagEvent
from repro.simulate import (
    dataset_event_stream,
    interleaved_event_stream,
    tiny_scenario,
)
from tests.engine.test_shard import random_events


class TestIngestEngine:
    def test_feed_batches_everything(self):
        events = random_events(10, 333, seed=6)
        engine = IngestEngine(bank=StabilityBank(5, 0.9), batch_size=50)
        stats = engine.feed(iter(events))
        assert stats.events == 333
        assert stats.batches == 7
        assert stats.tag_assignments == sum(len(set(e.tags)) for e in events)
        assert engine.bank.total_posts == 333
        assert stats.events_per_second > 0
        assert "333" in stats.render()

    def test_on_stable_callback_fires_once_per_resource(self):
        events = [TagEvent("r", ("a",), timestamp=float(i)) for i in range(10)]
        hits = []
        engine = IngestEngine(
            bank=StabilityBank(3, 0.5),
            batch_size=2,
            on_stable=lambda rid, k: hits.append((rid, k)),
        )
        engine.feed(events)
        assert hits == [("r", 3)]

    def test_submit_returns_newly_stable(self):
        engine = IngestEngine(bank=StabilityBank(3, 0.5))
        newly = engine.submit([TagEvent("r", ("a",)) for _ in range(5)])
        assert newly == ["r"]
        assert engine.submit([]) == []

    def test_periodic_checkpoints(self, tmp_path):
        events = random_events(8, 200, seed=3)
        engine = IngestEngine(
            bank=StabilityBank(5, 0.9),
            batch_size=40,
            checkpoint_dir=tmp_path / "ck",
            checkpoint_every=2,
        )
        stats = engine.feed(events)
        assert stats.checkpoints == 2
        assert (tmp_path / "ck" / "manifest.json").exists()

    def test_create_sharded(self):
        engine = IngestEngine.create(n_shards=3, omega=4, tau=0.9)
        assert isinstance(engine.bank, ShardedStabilityBank)
        assert engine.bank.n_shards == 3
        engine = IngestEngine.create(n_shards=1)
        assert isinstance(engine.bank, StabilityBank)

    def test_validation(self, tmp_path):
        with pytest.raises(DataModelError):
            IngestEngine(batch_size=0)
        with pytest.raises(DataModelError):
            IngestEngine(checkpoint_every=2)
        with pytest.raises(DataModelError):
            IngestEngine().checkpoint()

    def test_batches_of(self):
        engine = IngestEngine(batch_size=3)
        chunks = list(
            engine.batches_of(
                [TagEvent("r", ("a",), timestamp=float(i)) for i in range(7)]
            )
        )
        assert [len(c) for c in chunks] == [3, 3, 1]


class TestDatasetEventStream:
    def test_replay_matches_per_resource_trackers(self):
        corpus = tiny_scenario(seed=5)
        events = list(dataset_event_stream(corpus.dataset))
        assert len(events) == corpus.dataset.total_posts
        # global timestamp order
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        bank = StabilityBank(5, 0.99)
        bank.ingest_events(events)
        for resource in corpus.dataset.resources:
            tracker = StabilityTracker(5, 0.99)
            tracker.add_posts(resource.sequence)
            rid = resource.resource_id
            assert bank.num_posts(rid) == tracker.num_posts
            assert bank.stable_point(rid) == tracker.stable_point
            a, b = tracker.ma_score, bank.ma_score(rid)
            assert (a is None) == (b is None)
            if a is not None:
                assert b == pytest.approx(a, abs=1e-9)


class TestInterleavedEventStream:
    def test_deterministic(self):
        first = list(interleaved_event_stream(n_resources=10, seed=9, max_events=200))
        second = list(interleaved_event_stream(n_resources=10, seed=9, max_events=200))
        assert first == second

    def test_interleaves_resources_in_time_order(self):
        events = list(interleaved_event_stream(n_resources=15, seed=2, max_events=400))
        assert len(events) == 400
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        assert len({e.resource_id for e in events}) > 1
        assert all(e.tags for e in events)

    def test_max_events_caps_stream(self):
        events = list(interleaved_event_stream(n_resources=5, seed=0, max_events=17))
        assert len(events) == 17
