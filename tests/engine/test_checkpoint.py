"""Checkpoint round-trip and deterministic-resume tests."""

import json

import pytest

from repro.core import DataModelError
from repro.engine import (
    ShardedStabilityBank,
    StabilityBank,
    TagEvent,
    load_checkpoint,
    save_checkpoint,
)
from tests.engine.test_shard import random_events


def states_equal(a, b, resource_ids, *, exact: bool = True):
    assert a.stable_points() == b.stable_points()
    for rid in resource_ids:
        assert a.num_posts(rid) == b.num_posts(rid)
        assert a.counts_of(rid) == b.counts_of(rid)
        ma_a, ma_b = a.ma_score(rid), b.ma_score(rid)
        assert (ma_a is None) == (ma_b is None)
        if ma_a is not None:
            if exact:
                assert ma_b == ma_a  # bit-identical
            else:
                assert ma_b == pytest.approx(ma_a, abs=1e-9)
        assert a.stable_rfd(rid) == b.stable_rfd(rid)


class TestSingleBank:
    def test_round_trip_identity(self, tmp_path):
        events = random_events(15, 500, seed=1)
        bank = StabilityBank(5, 0.9)
        bank.ingest_events(events)
        save_checkpoint(bank, tmp_path / "ckpt")
        loaded = load_checkpoint(tmp_path / "ckpt")
        assert isinstance(loaded, StabilityBank)
        assert loaded.omega == bank.omega
        assert loaded.tau == bank.tau
        states_equal(bank, loaded, bank.resources.items())

    def test_resume_is_deterministic(self, tmp_path):
        """checkpoint mid-stream + resume == never having left RAM."""
        events = random_events(12, 600, seed=4)
        half = len(events) // 2

        uninterrupted = StabilityBank(5, 0.95)
        uninterrupted.ingest_events(events[:half])

        partial = StabilityBank(5, 0.95)
        partial.ingest_events(events[:half])
        save_checkpoint(partial, tmp_path / "mid")
        resumed = load_checkpoint(tmp_path / "mid")

        # same batch schedule on both sides from here on
        uninterrupted.ingest_events(events[half:])
        resumed.ingest_events(events[half:])
        states_equal(uninterrupted, resumed, uninterrupted.resources.items())

        # and both agree with a straight one-batch ingestion to 1e-9
        straight = StabilityBank(5, 0.95)
        straight.ingest_events(events)
        states_equal(straight, resumed, straight.resources.items(), exact=False)

    def test_manifest_contents(self, tmp_path):
        bank = StabilityBank(7, None)
        bank.ingest_events([TagEvent("r", ("a",))])
        save_checkpoint(bank, tmp_path / "c")
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["kind"] == "single"
        assert manifest["omega"] == 7
        assert manifest["tau"] is None
        assert manifest["n_shards"] == 1

    def test_stable_snapshots_survive(self, tmp_path):
        events = [TagEvent("r", ("a",)) for _ in range(8)]
        bank = StabilityBank(3, 0.5)
        bank.ingest_events(events)
        assert bank.stable_rfd("r") == {"a": 1.0}
        save_checkpoint(bank, tmp_path / "c")
        loaded = load_checkpoint(tmp_path / "c")
        assert loaded.stable_points() == {"r": 3}
        assert loaded.stable_rfd("r") == {"a": 1.0}
        # stable.jsonl stores raw integer counts (lossless through JSON)
        lines = (tmp_path / "c" / "stable.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        assert record["resource"] == "r"
        assert record["counts"] == [3]
        assert record["total"] == 3


class TestShardedBank:
    def test_round_trip_and_resume(self, tmp_path):
        events = random_events(20, 700, seed=8)
        half = len(events) // 2
        uninterrupted = ShardedStabilityBank(3, 5, 0.9)
        uninterrupted.ingest_events(events[:half])

        partial = ShardedStabilityBank(3, 5, 0.9)
        partial.ingest_events(events[:half])
        save_checkpoint(partial, tmp_path / "s")
        resumed = load_checkpoint(tmp_path / "s")
        assert isinstance(resumed, ShardedStabilityBank)
        assert resumed.n_shards == 3

        uninterrupted.ingest_events(events[half:])
        resumed.ingest_events(events[half:])
        resource_ids = {e.resource_id for e in events}
        states_equal(uninterrupted, resumed, resource_ids)


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataModelError):
            load_checkpoint(tmp_path)

    def test_unsupported_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(DataModelError):
            load_checkpoint(tmp_path)


class TestTornWrites:
    """Truncated shard files raise :class:`CheckpointCorrupted` cleanly
    (a typed :class:`DataModelError`), never an opaque NumPy/zip error."""

    @pytest.fixture(autouse=True)
    def clean_injector(self, monkeypatch):
        from repro import faults
        from repro.faults.plan import _reset_for_tests

        monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
        _reset_for_tests()
        yield
        _reset_for_tests()

    def _checkpoint(self, tmp_path, layout):
        bank = ShardedStabilityBank(3, 5, 0.9)
        bank.ingest_events(random_events(15, 500, seed=1))
        return save_checkpoint(bank, tmp_path / "ckpt", layout=layout)

    @pytest.mark.parametrize("layout", ["npz", "mmap"])
    def test_injected_torn_write_detected_at_load(self, tmp_path, layout):
        from repro import faults
        from repro.engine import CheckpointCorrupted, load_shard_bank

        faults.activate({"specs": [
            {"site": "checkpoint.shard", "kind": "torn_write", "at": 1},
        ]})
        target = self._checkpoint(tmp_path, layout)
        faults.deactivate()
        assert faults.active() is None
        # the untouched shards still load; the torn one raises typed
        load_shard_bank(target, 0)
        with pytest.raises(CheckpointCorrupted):
            load_shard_bank(target, 1)

    @pytest.mark.parametrize("layout", ["npz", "mmap"])
    def test_full_load_of_torn_checkpoint_raises_typed(self, tmp_path, layout):
        from repro import faults
        from repro.engine import CheckpointCorrupted

        faults.activate({"specs": [
            {"site": "checkpoint.shard", "kind": "torn_write", "at": 0, "every": 1,
             "times": 0},
        ]})
        target = self._checkpoint(tmp_path, layout)
        faults.deactivate()
        with pytest.raises(CheckpointCorrupted):
            load_checkpoint(target)

    def test_corrupt_manifest_raises_typed(self, tmp_path):
        from repro.engine import CheckpointCorrupted

        target = self._checkpoint(tmp_path, "npz")
        manifest = target / "manifest.json"
        manifest.write_text(manifest.read_text()[:10])
        with pytest.raises(CheckpointCorrupted):
            load_checkpoint(target)
