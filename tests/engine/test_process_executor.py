"""The process backend: shared-memory shard workers (`repro.engine.procpool`).

Covers the registry seam, trace identity against serial at several
worker × shard combinations, the no-pickling hot-path contract,
checkpoint/restore through worker-owned state, and fault behaviour when
a worker dies mid-operation.
"""

import multiprocessing.reduction
import os
import signal

import numpy as np
import pytest

from repro.core import DataModelError
from repro.engine import (
    EXECUTORS,
    IngestEngine,
    ProcessExecutor,
    ShardedStabilityBank,
    ShardWorkerCrashed,
    StabilityBank,
    load_checkpoint,
    load_shard_bank,
    make_executor,
    register_executor,
    save_checkpoint,
)
from repro.engine.events import TagEvent


def _events(n, n_resources=24, tag_pool=8, seed=3):
    rng = np.random.default_rng(seed)
    events = []
    for i in range(n):
        resource = f"r{rng.integers(n_resources)}"
        n_tags = int(rng.integers(1, 4))
        tags = tuple(
            f"t{t}" for t in rng.choice(tag_pool, size=n_tags, replace=False)
        )
        events.append(TagEvent(resource_id=resource, tags=tags, timestamp=float(i)))
    return events


def _process_bank(n_shards, workers, omega=4, tau=0.9):
    executor = make_executor("process", workers)
    return ShardedStabilityBank(n_shards, omega, tau, executor=executor)


class TestRegistry:
    def test_process_is_registered(self):
        assert "process" in EXECUTORS.names()
        assert EXECUTORS.names() == sorted(EXECUTORS.names())

    def test_unknown_backend_lists_registry_sorted(self):
        with pytest.raises(DataModelError, match=r"'process', 'serial', 'thread'"):
            make_executor("fork")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DataModelError, match="already registered"):
            register_executor("process")(ProcessExecutor)

    def test_make_executor_builds_process_backend(self):
        with make_executor("process", workers=2) as executor:
            assert isinstance(executor, ProcessExecutor)
            assert executor.kind == "process"
            assert executor.owns_state
            assert not executor.bound

    def test_negative_workers_rejected(self):
        with pytest.raises(DataModelError):
            ProcessExecutor(-1)

    def test_run_interface_rejected(self):
        # shard-affine: closures over parent state cannot cross processes
        with ProcessExecutor(1) as executor:
            with pytest.raises(DataModelError, match="shard-affine"):
                executor.run([lambda: 1])


@pytest.mark.parametrize("n_shards", [1, 3, 8])
@pytest.mark.parametrize("workers", [1, 2, 4])
class TestTraceIdentity:
    """Process ingestion is byte-identical to serial at any geometry."""

    def test_matches_serial_reference(self, n_shards, workers):
        events = _events(900)
        chunks = [events[i : i + 300] for i in range(0, 900, 300)]

        serial = ShardedStabilityBank(n_shards, 4, 0.9)
        serial_reports = [serial.ingest_events(chunk) for chunk in chunks]

        bank = _process_bank(n_shards, workers)
        try:
            for chunk, reference in zip(chunks, serial_reports):
                report = bank.ingest_events(chunk)
                assert report.n_events == reference.n_events
                assert report.n_tag_assignments == reference.n_tag_assignments
                assert report.newly_stable == reference.newly_stable
                np.testing.assert_array_equal(
                    report.similarities, reference.similarities
                )
            assert bank.stable_points() == serial.stable_points()
            assert bank.total_posts == serial.total_posts
            for i in range(24):
                rid = f"r{i}"
                assert bank.counts_of(rid) == serial.counts_of(rid)
                assert bank.ma_score(rid) == serial.ma_score(rid)
        finally:
            bank.executor.close()


class TestNoPickling:
    def test_steady_state_ingest_never_pickles_ndarrays(self):
        """The hot path ships CSR slices through shared memory only.

        Poisoning the ForkingPickler's ndarray reducer makes any pickled
        array — command or reply — raise immediately; steady-state ingest
        must survive the whole run.
        """

        def _poison(array):  # pragma: no cover - called only on violation
            raise AssertionError("ndarray crossed the pipe via pickle")

        bank = _process_bank(3, 2)
        try:
            # register before bind: forked workers inherit the poison, so
            # both command pickling (parent) and reply pickling (worker)
            # are under surveillance for the whole steady-state run
            multiprocessing.reduction.ForkingPickler.register(np.ndarray, _poison)
            try:
                ingested = 0
                crossings: list[str] = []
                for start in range(0, 600, 200):
                    report = bank.ingest_events(_events(200, seed=start))
                    ingested += report.n_events
                    crossings.extend(report.newly_stable)
                assert ingested == 600
                assert crossings  # the stream genuinely stabilized resources
            finally:
                multiprocessing.reduction.ForkingPickler._extra_reducers.pop(
                    np.ndarray, None
                )
        finally:
            bank.executor.close()
        # the query path (export/materialize) is allowed to pickle — but
        # only the parent side; check it against a non-poisoned pool
        bank2 = _process_bank(3, 2)
        try:
            bank2.ingest_events(_events(200, seed=0))
            assert bank2.total_posts == 200
        finally:
            bank2.executor.close()


class TestLifecycle:
    def test_bind_is_idempotent_and_close_releases_workers(self):
        bank = _process_bank(4, 2)
        bank.ingest_events(_events(100))
        executor = bank.executor
        pids = executor.worker_pids()
        assert len(pids) == 2
        executor.bind(bank)  # idempotent: same pool
        assert executor.worker_pids() == pids
        executor.close()
        executor.close()  # idempotent
        assert not executor.bound
        for pid in pids:
            # processes are gone (or at worst zombies being reaped)
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue

    def test_workers_capped_at_shard_count(self):
        bank = _process_bank(2, 8)
        try:
            bank.ingest_events(_events(50))
            assert len(bank.executor.worker_pids()) == 2
        finally:
            bank.executor.close()

    def test_rebind_to_different_shard_count_rejected(self):
        bank = _process_bank(2, 2)
        try:
            bank.ingest_events(_events(50))
            other = ShardedStabilityBank(5, 4, 0.9)
            with pytest.raises(DataModelError, match="cannot rebind"):
                bank.executor.bind(other)
        finally:
            bank.executor.close()

    def test_warm_start_ships_preexisting_state(self):
        # serial ingest first, pool attached afterwards: the live shell
        # state must be seeded into the workers exactly once
        events = _events(400)
        reference = ShardedStabilityBank(3, 4, 0.9)
        reference.ingest_events(events[:200])
        reference.ingest_events(events[200:])

        bank = ShardedStabilityBank(3, 4, 0.9)
        bank.ingest_events(events[:200])  # inline: no executor yet
        bank.executor = make_executor("process", 2)
        try:
            bank.ingest_events(events[200:])
            assert bank.stable_points() == reference.stable_points()
            assert bank.total_posts == reference.total_posts
        finally:
            bank.executor.close()


class TestFaults:
    def test_killed_workers_are_respawned_transparently(self):
        """SIGKILLing every worker mid-run is survivable: the supervisor
        respawns them from the journaled deltas and the final state is
        identical to a serial run."""
        events_a, events_b = _events(200), _events(200, seed=9)
        reference = ShardedStabilityBank(3, 4, 0.9)
        reference.ingest_events(events_a)
        reference.ingest_events(events_b)

        bank = _process_bank(3, 2)
        executor = bank.executor
        try:
            bank.ingest_events(events_a)
            for pid in executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="respawn"):
                bank.ingest_events(events_b)
            assert executor.bound
            assert executor.respawns >= 1
            assert executor.degraded is None
            assert sorted(bank.stable_points().items()) == sorted(
                reference.stable_points().items()
            )
        finally:
            executor.close()

    def test_unsupervised_killed_worker_raises_instead_of_hanging(self):
        executor = ProcessExecutor(2, supervise=False)
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        try:
            bank.ingest_events(_events(200))
            for pid in executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(ShardWorkerCrashed, match="died mid-operation"):
                bank.ingest_events(_events(200, seed=9))
            assert not executor.bound  # pool torn down, not wedged
        finally:
            executor.close()

    def test_killed_worker_recovers_query_path_too(self):
        bank = _process_bank(2, 2)
        executor = bank.executor
        try:
            bank.ingest_events(_events(200))
            for pid in executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="respawn"):
                points = bank.stable_points()
            assert points  # recovered state still answers queries
        finally:
            executor.close()

    def test_worker_exception_carries_worker_traceback(self):
        bank = _process_bank(2, 1)
        executor = bank.executor
        try:
            bank.ingest_events(_events(100))
            with pytest.raises(DataModelError, match="worker traceback"):
                # an unwritable checkpoint target: the worker-side handler
                # raises and the error text crosses back intact, with the
                # worker still alive for further commands
                executor.checkpoint_shard(
                    bank, 0, "/proc/definitely/not/writable", "npz"
                )
            # the pool survived the error (no crash, no teardown)
            assert executor.bound
            bank.ingest_events(_events(50, seed=11))
        finally:
            executor.close()


class TestCheckpoints:
    def test_mmap_checkpoint_via_workers_round_trips(self, tmp_path):
        events = _events(700)
        reference = ShardedStabilityBank(3, 4, 0.9)
        reference.ingest_events(events)

        engine = IngestEngine.create(
            n_shards=3, omega=4, tau=0.9, executor="process", workers=2
        )
        engine.checkpoint_layout = "mmap"
        bank = engine.bank
        try:
            bank.ingest_events(events)
            target = save_checkpoint(bank, tmp_path / "ck", layout="mmap")
        finally:
            bank.executor.close()

        # per-shard mmap loads (the worker re-seed path)
        for shard in range(3):
            loaded = load_shard_bank(target, shard)
            assert isinstance(loaded, StabilityBank)
            assert loaded.total_posts == reference.shards[shard].total_posts

        restored = load_checkpoint(target)
        assert restored.stable_points() == reference.stable_points()
        assert restored.total_posts == reference.total_posts

    def test_resume_reseeds_workers_from_checkpoint(self, tmp_path):
        events = _events(800)
        reference = ShardedStabilityBank(3, 4, 0.9)
        reference.ingest_events(events[:400])
        target = save_checkpoint(reference, tmp_path / "ck", layout="mmap")
        reference.ingest_events(events[400:])

        resumed = load_checkpoint(target)
        assert resumed.resume_source == str(target)
        resumed.executor = make_executor("process", 2)
        try:
            resumed.ingest_events(events[400:])
            assert resumed.stable_points() == reference.stable_points()
            assert resumed.total_posts == reference.total_posts
        finally:
            resumed.executor.close()
