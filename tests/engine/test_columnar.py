"""Tests for the vectorized StabilityBank against the scalar tracker."""

import numpy as np
import pytest

from repro.core import StabilityError, StabilityTracker
from repro.engine import StabilityBank, TagEvent


def make_events(sequences: dict[str, list[tuple[str, ...]]]) -> list[TagEvent]:
    """Interleave the given per-resource post sequences round-robin."""
    events = []
    position = 0
    remaining = {rid: list(posts) for rid, posts in sequences.items()}
    while any(remaining.values()):
        for rid in sequences:
            if remaining[rid]:
                events.append(
                    TagEvent(rid, remaining[rid].pop(0), timestamp=float(position))
                )
                position += 1
    return events


def scalar_reference(
    events: list[TagEvent], omega: int, tau: float | None
) -> dict[str, StabilityTracker]:
    trackers: dict[str, StabilityTracker] = {}
    for event in events:
        tracker = trackers.setdefault(event.resource_id, StabilityTracker(omega, tau))
        tracker.add_post(event.tags)
    return trackers


def assert_equivalent(bank: StabilityBank, trackers: dict[str, StabilityTracker]):
    assert bank.n_resources == len(trackers)
    for rid, tracker in trackers.items():
        assert bank.num_posts(rid) == tracker.num_posts
        scalar_ma, bank_ma = tracker.ma_score, bank.ma_score(rid)
        assert (scalar_ma is None) == (bank_ma is None)
        if scalar_ma is not None:
            assert bank_ma == pytest.approx(scalar_ma, abs=1e-9)
        assert bank.stable_point(rid) == tracker.stable_point
        assert bank.is_stable(rid) == tracker.is_stable
        assert bank.counts_of(rid) == tracker.frequency_table().counts()
        scalar_rfd = tracker.rfd()
        bank_rfd = bank.rfd(rid)
        assert set(scalar_rfd) == set(bank_rfd)
        for tag, value in scalar_rfd.items():
            assert bank_rfd[tag] == pytest.approx(value, abs=1e-12)
        if tracker.is_stable:
            stable_scalar = tracker.stable_rfd
            stable_bank = bank.stable_rfd(rid)
            assert set(stable_scalar) == set(stable_bank)
            for tag, value in stable_scalar.items():
                assert stable_bank[tag] == pytest.approx(value, abs=1e-12)


class TestValidation:
    def test_omega_validated(self):
        with pytest.raises(StabilityError):
            StabilityBank(omega=1)

    def test_tau_validated(self):
        with pytest.raises(StabilityError):
            StabilityBank(tau=1.5)

    def test_unknown_resource(self):
        bank = StabilityBank()
        with pytest.raises(KeyError):
            bank.ma_score("nope")
        assert "nope" not in bank


class TestSingleResource:
    def test_matches_tracker_on_paper_example(self):
        posts = [
            ("google", "earth"),
            ("google", "geographic"),
            ("earth",),
            ("geographic", "earth"),
            ("google", "geographic"),
        ]
        events = [TagEvent("r1", p, timestamp=float(i)) for i, p in enumerate(posts)]
        bank = StabilityBank(omega=3, tau=0.9)
        report = bank.ingest_events(events)
        trackers = scalar_reference(events, 3, 0.9)
        assert_equivalent(bank, trackers)
        # per-event similarities match the scalar recurrence
        tracker = StabilityTracker(3)
        expected = [tracker.add_post(p) for p in posts]
        assert np.allclose(report.similarities, expected, atol=1e-12)

    def test_first_post_similarity_zero(self):
        bank = StabilityBank()
        report = bank.ingest_events([TagEvent("r", ("a",))])
        assert report.similarities.tolist() == [0.0]

    def test_empty_ingest(self):
        bank = StabilityBank()
        report = bank.ingest_events([])
        assert report.n_events == 0
        assert bank.n_resources == 0


class TestMultiResource:
    def test_interleaved_stream_matches_trackers(self):
        rng = np.random.default_rng(7)
        vocab = [f"t{i}" for i in range(12)]
        sequences = {}
        for r in range(9):
            posts = []
            for _ in range(int(rng.integers(1, 40))):
                size = int(rng.integers(1, 4))
                posts.append(tuple(rng.choice(vocab, size=size, replace=False)))
            sequences[f"res{r}"] = posts
        events = make_events(sequences)
        omega, tau = 4, 0.8
        trackers = scalar_reference(events, omega, tau)
        bank = StabilityBank(omega, tau)
        bank.ingest_events(events)
        assert_equivalent(bank, trackers)

    def test_batch_split_invariance(self):
        rng = np.random.default_rng(3)
        vocab = [f"t{i}" for i in range(6)]
        events = [
            TagEvent(
                f"r{int(rng.integers(0, 5))}",
                tuple(rng.choice(vocab, size=int(rng.integers(1, 4)), replace=False)),
            )
            for _ in range(400)
        ]
        reference = StabilityBank(5, 0.9)
        reference.ingest_events(events)
        for batch_size in (1, 3, 64, 400):
            bank = StabilityBank(5, 0.9)
            for i in range(0, len(events), batch_size):
                bank.ingest_events(events[i : i + batch_size])
            assert bank.stable_points() == reference.stable_points()
            for rid in reference.resources.items():
                assert bank.counts_of(rid) == reference.counts_of(rid)
                a, b = reference.ma_score(rid), bank.ma_score(rid)
                assert (a is None) == (b is None)
                if a is not None:
                    assert b == pytest.approx(a, abs=1e-9)

    def test_duplicate_resource_tag_within_batch(self):
        # same resource posts the same tag repeatedly inside one batch:
        # exercises the in-batch duplicate-rank path
        events = [TagEvent("r", ("a",)) for _ in range(10)]
        bank = StabilityBank(3, 0.99)
        bank.ingest_events(events)
        trackers = scalar_reference(events, 3, 0.99)
        assert_equivalent(bank, trackers)

    def test_capacity_growth(self):
        # force repeated row/column growth from tiny initial capacities
        events = [
            TagEvent(f"r{i}", (f"tag{i}", f"tag{i + 1}")) for i in range(300)
        ]
        bank = StabilityBank(initial_rows=1, initial_tags=1)
        bank.ingest_events(events)
        assert bank.n_resources == 300
        assert bank.n_tags == 301
        assert bank.total_posts == 300

    def test_ensure_preregisters(self):
        bank = StabilityBank(5, 0.9)
        bank.ensure(["a", "b"])
        assert bank.num_posts("a") == 0
        assert bank.ma_score("b") is None
        assert not bank.is_stable("a")
        bank.ingest_events([TagEvent("a", ("x",))])
        assert bank.num_posts("a") == 1


class TestStablePoints:
    def test_newly_stable_reported_once(self):
        events = [TagEvent("r", ("a",)) for _ in range(12)]
        bank = StabilityBank(3, 0.5)
        first = bank.ingest_events(events[:6])
        second = bank.ingest_events(events[6:])
        assert first.newly_stable == ["r"]
        assert second.newly_stable == []
        assert bank.stable_points() == {"r": 3}

    def test_stable_rfd_frozen_mid_batch(self):
        # the resource stabilises at k=3 but keeps receiving different
        # tags afterwards inside the same batch; the snapshot must be the
        # rfd at the crossing, not at batch end
        events = [
            TagEvent("r", ("a",)),
            TagEvent("r", ("a",)),
            TagEvent("r", ("a",)),
            TagEvent("r", ("b", "c")),
            TagEvent("r", ("d",)),
        ]
        omega, tau = 3, 0.9
        bank = StabilityBank(omega, tau)
        bank.ingest_events(events)
        trackers = scalar_reference(events, omega, tau)
        assert_equivalent(bank, trackers)
        assert bank.stable_rfd("r") == {"a": 1.0}

    def test_ma_scores_bulk_view(self):
        events = [TagEvent("r0", ("a",)) for _ in range(6)] + [
            TagEvent("r1", ("b",))
        ]
        bank = StabilityBank(3)
        bank.ingest_events(events)
        ids, scores = bank.ma_scores()
        assert ids == ["r0", "r1"]
        assert scores[0] == pytest.approx(1.0)
        assert np.isnan(scores[1])
