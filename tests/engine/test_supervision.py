"""Worker supervision: kill-anywhere recovery, stalls, degrade, shutdown.

The self-healing contract of the process shard engine: a worker lost at
*any* point of a run — killed, stalled, or wedged — is respawned and
re-seeded from its last checkpoint base plus the in-executor delta
journal, and the recovered state is indistinguishable from an
uninterrupted run.  When the respawn budget is exhausted the executor
degrades process → thread → serial instead of failing the run.  All
fault schedules come from :mod:`repro.faults`, so every scenario here is
deterministic and replayable.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import faults
from repro.engine import (
    ProcessExecutor,
    ShardedStabilityBank,
    save_checkpoint,
)
from repro.engine import procpool
from repro.engine.events import TagEvent
from repro.faults.plan import _reset_for_tests


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
    _reset_for_tests()
    yield
    _reset_for_tests()


def _events(n, n_resources=24, tag_pool=8, seed=3):
    rng = np.random.default_rng(seed)
    events = []
    for i in range(n):
        resource = f"r{rng.integers(n_resources)}"
        n_tags = int(rng.integers(1, 4))
        tags = tuple(
            f"t{t}" for t in rng.choice(tag_pool, size=n_tags, replace=False)
        )
        events.append(TagEvent(resource_id=resource, tags=tags, timestamp=float(i)))
    return events


BATCHES = [_events(150, seed=s) for s in (3, 9, 17)]


def _reference_state():
    bank = ShardedStabilityBank(3, 4, 0.9)
    for batch in BATCHES:
        bank.ingest_events(batch)
    return sorted(bank.stable_points().items()), sorted(bank.counts_of("r1").items())


def _run_supervised(executor):
    bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
    try:
        for batch in BATCHES:
            bank.ingest_events(batch)
        return (
            sorted(bank.stable_points().items()),
            sorted(bank.counts_of("r1").items()),
        )
    finally:
        executor.close()


class TestKillAnywhere:
    def test_recovery_is_identical_at_every_flush_index(self):
        """SIGKILL the serving worker at flush 0, 1, 2, … — each run must
        still end in exactly the serial-reference state."""
        expected = _reference_state()

        # count how many times the flush site is visited in a clean run
        faults.activate({"specs": []})
        assert _run_supervised(ProcessExecutor(2)) == expected
        n_flushes = faults.active().site_index("procpool.flush")
        assert n_flushes >= 3, "fixture too small to exercise kill-anywhere"

        for at in range(n_flushes):
            faults.activate({"specs": [
                {"site": "procpool.flush", "kind": "kill_worker", "at": at},
            ]})
            with pytest.warns(RuntimeWarning, match="respawn"):
                got = _run_supervised(ProcessExecutor(2))
            assert got == expected, f"state diverged after kill at flush {at}"
            assert faults.active().fired_total() == 1

    def test_worker_side_kill_recovers_too(self):
        """``procpool.worker`` kills fire inside the child (os._exit)."""
        expected = _reference_state()
        faults.activate({"specs": [
            {"site": "procpool.worker", "kind": "kill_worker", "at": 2},
        ]})
        with pytest.warns(RuntimeWarning, match="respawn"):
            got = _run_supervised(ProcessExecutor(2))
        assert got == expected

    def test_repeated_kills_within_budget_recover(self):
        expected = _reference_state()
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 1, "every": 2,
             "times": 2},
        ]})
        executor = ProcessExecutor(2)
        with pytest.warns(RuntimeWarning, match="respawn"):
            got = _run_supervised(executor)
        assert got == expected

    def test_recovery_after_checkpoint_reseeds_from_checkpoint(self, tmp_path):
        """``save_checkpoint`` resets the recovery base: a worker killed
        *after* a checkpoint is rebuilt from the checkpoint directory plus
        the post-checkpoint delta journal."""
        expected = _reference_state()
        executor = ProcessExecutor(2)
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        try:
            bank.ingest_events(BATCHES[0])
            save_checkpoint(bank, tmp_path / "ck", layout="mmap")
            bank.ingest_events(BATCHES[1])
            for pid in executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="respawn"):
                bank.ingest_events(BATCHES[2])
            got = (
                sorted(bank.stable_points().items()),
                sorted(bank.counts_of("r1").items()),
            )
        finally:
            executor.close()
        assert got == expected


class TestStalledWorkers:
    def test_stalled_worker_is_detected_and_respawned(self):
        """A worker that stops heartbeating (sleeps mid-command) is
        declared lost after ``heartbeat_timeout`` and respawned."""
        expected = _reference_state()
        faults.activate({"specs": [
            {"site": "procpool.worker", "kind": "stall_worker", "at": 2,
             "param": {"seconds": 30.0, "ignore_term": False}},
        ]})
        executor = ProcessExecutor(2)
        executor.heartbeat_timeout = 0.5
        started = time.monotonic()
        with pytest.warns(RuntimeWarning, match="respawn"):
            got = _run_supervised(executor)
        assert got == expected
        # detection came from the heartbeat deadline, not the 30s sleep
        assert time.monotonic() - started < 20.0


class TestDegradeLadder:
    def test_exhausted_respawn_budget_degrades_to_thread(self):
        expected = _reference_state()
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 0, "every": 1,
             "times": 0},
        ]})
        executor = ProcessExecutor(2)
        executor.max_respawns = 1
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        try:
            with pytest.warns(RuntimeWarning):
                for batch in BATCHES:
                    bank.ingest_events(batch)
            got = (
                sorted(bank.stable_points().items()),
                sorted(bank.counts_of("r1").items()),
            )
            assert executor.degraded == "thread"
            assert not executor.owns_state
        finally:
            executor.close()
        assert got == expected

    def test_degraded_executor_keeps_serving(self):
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 0, "every": 1,
             "times": 0},
        ]})
        executor = ProcessExecutor(2)
        executor.max_respawns = 0
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        try:
            with pytest.warns(RuntimeWarning):
                bank.ingest_events(BATCHES[0])
            assert executor.degraded == "thread"
            faults.deactivate()
            # post-degrade ingest and queries run in-parent, no pool
            bank.ingest_events(BATCHES[1])
            bank.ingest_events(BATCHES[2])
        finally:
            executor.close()
        reference = ShardedStabilityBank(3, 4, 0.9)
        for batch in BATCHES:
            reference.ingest_events(batch)
        assert sorted(bank.stable_points().items()) == sorted(
            reference.stable_points().items()
        )

    def test_unsupervised_executor_still_fails_fast(self):
        from repro.engine import ShardWorkerCrashed

        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 0},
        ]})
        executor = ProcessExecutor(2, supervise=False)
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        try:
            with pytest.raises(ShardWorkerCrashed):
                bank.ingest_events(BATCHES[0])
        finally:
            executor.close()


class TestShutdownEscalation:
    def test_close_escalates_join_terminate_kill_and_reaps(self, monkeypatch):
        """An uninterruptible worker (SIGSTOPped: processes no commands,
        ignores SIGTERM) must not wedge ``close()`` — the escalation
        ladder ends in SIGKILL and the corpse is reaped, not left a
        zombie."""
        monkeypatch.setattr(procpool, "_STOP_GRACE", 0.2)
        monkeypatch.setattr(procpool, "_TERM_GRACE", 0.2)
        executor = ProcessExecutor(2)
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        bank.ingest_events(BATCHES[0])
        pids = executor.worker_pids()
        os.kill(pids[0], signal.SIGSTOP)
        started = time.monotonic()
        executor.close()
        assert time.monotonic() - started < 10.0
        for pid in pids:
            # ProcessLookupError means dead *and* reaped; a zombie would
            # still accept signal 0
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert not executor.bound

    def test_close_is_idempotent_after_recovery(self):
        faults.activate({"specs": [
            {"site": "procpool.flush", "kind": "kill_worker", "at": 0},
        ]})
        executor = ProcessExecutor(2)
        bank = ShardedStabilityBank(3, 4, 0.9, executor=executor)
        with pytest.warns(RuntimeWarning, match="respawn"):
            bank.ingest_events(BATCHES[0])
        executor.close()
        executor.close()
        assert not executor.bound
