"""Tests for the hash router and the sharded bank."""

import numpy as np
import pytest

from repro.core import DataModelError
from repro.engine import (
    SerialExecutor,
    ShardedStabilityBank,
    StabilityBank,
    TagEvent,
    make_executor,
    shard_of,
)


def random_events(n_resources: int, n_events: int, seed: int) -> list[TagEvent]:
    rng = np.random.default_rng(seed)
    vocab = [f"t{i}" for i in range(10)]
    return [
        TagEvent(
            f"r{int(rng.integers(0, n_resources))}",
            tuple(rng.choice(vocab, size=int(rng.integers(1, 4)), replace=False)),
            timestamp=float(i),
        )
        for i in range(n_events)
    ]


class TestRouter:
    def test_deterministic_and_in_range(self):
        for n_shards in (1, 2, 7):
            for rid in ("a", "b", "resource-123"):
                shard = shard_of(rid, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of(rid, n_shards)

    def test_single_shard_short_circuit(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_resources(self):
        shards = {shard_of(f"r{i}", 8) for i in range(200)}
        assert shards == set(range(8))

    def test_invalid_shard_count(self):
        with pytest.raises(DataModelError):
            shard_of("r", 0)
        with pytest.raises(DataModelError):
            ShardedStabilityBank(0)


class TestShardedBank:
    def test_matches_single_bank(self):
        events = random_events(20, 600, seed=5)
        single = StabilityBank(5, 0.9)
        single.ingest_events(events)
        sharded = ShardedStabilityBank(4, 5, 0.9)
        for i in range(0, len(events), 128):
            sharded.ingest_events(events[i : i + 128])
        assert sharded.n_resources == single.n_resources
        assert sharded.total_posts == single.total_posts
        assert sharded.stable_points() == single.stable_points()
        for rid in single.resources.items():
            assert sharded.num_posts(rid) == single.num_posts(rid)
            assert sharded.counts_of(rid) == single.counts_of(rid)
            assert sharded.rfd(rid) == single.rfd(rid)
            a, b = single.ma_score(rid), sharded.ma_score(rid)
            assert (a is None) == (b is None)
            if a is not None:
                assert b == pytest.approx(a, abs=1e-9)
            assert sharded.stable_point(rid) == single.stable_point(rid)
            assert sharded.stable_rfd(rid) == single.stable_rfd(rid)

    def test_similarities_reassembled_in_batch_order(self):
        events = random_events(10, 200, seed=9)
        single = StabilityBank(5)
        sharded = ShardedStabilityBank(3, 5)
        report_single = single.ingest_events(events)
        report_sharded = sharded.ingest_events(events)
        assert np.allclose(
            report_single.similarities, report_sharded.similarities, atol=1e-12
        )

    def test_partition_preserves_order(self):
        events = random_events(12, 100, seed=2)
        sharded = ShardedStabilityBank(4)
        slices = sharded.partition(events)
        assert sum(len(s) for s in slices) == len(events)
        for shard_index, events_slice in enumerate(slices):
            assert all(
                shard_of(e.resource_id, 4) == shard_index for e in events_slice
            )
            # order within a shard slice is the original stream order
            positions = [events.index(e) for e in events_slice]
            assert positions == sorted(positions)

    def test_ingest_shard_is_independent(self):
        events = random_events(12, 100, seed=2)
        sharded = ShardedStabilityBank(4, 5, 0.9)
        slices = sharded.partition(events)
        # shards can be driven in any order (parallel-ready API)
        for shard_index in reversed(range(4)):
            sharded.ingest_shard(shard_index, slices[shard_index])
        single = StabilityBank(5, 0.9)
        single.ingest_events(events)
        assert sharded.stable_points() == single.stable_points()

    def test_contains_and_ensure(self):
        sharded = ShardedStabilityBank(3)
        sharded.ensure(["a", "b", "c"])
        assert "a" in sharded and "zzz" not in sharded
        assert 42 not in sharded
        assert sharded.num_posts("b") == 0


class TestVectorizedRouting:
    def test_shard_ids_match_scalar_router(self):
        sharded = ShardedStabilityBank(5)
        ids = [f"resource-{i}" for i in range(100)]
        batched = sharded.shard_ids(ids)
        assert batched.dtype == np.int64
        assert batched.tolist() == [shard_of(rid, 5) for rid in ids]
        # cache hits take the fast path and agree with the cold pass
        assert sharded.shard_ids(ids).tolist() == batched.tolist()

    def test_shard_id_is_memoized(self):
        sharded = ShardedStabilityBank(7)
        assert sharded.shard_id("xyz") == shard_of("xyz", 7)
        assert "xyz" in sharded._shard_cache
        # a poisoned cache entry proves later lookups never re-hash
        sharded._shard_cache["xyz"] = (sharded._shard_cache["xyz"] + 1) % 7
        assert sharded.shard_id("xyz") == sharded._shard_cache["xyz"]

    def test_single_shard_skips_hashing(self):
        sharded = ShardedStabilityBank(1)
        assert sharded.shard_ids(["a", "b"]).tolist() == [0, 0]

    def test_encode_partition_covers_batch_in_order(self):
        events = random_events(12, 120, seed=4)
        sharded = ShardedStabilityBank(4)
        encoded = sharded.encode_partition(events)
        seen = []
        for shard_index, slot in enumerate(encoded):
            if slot is None:
                continue
            positions, batch = slot
            assert positions.tolist() == sorted(positions.tolist())
            assert batch.n_events == positions.size
            for position, row in zip(positions.tolist(), batch.resources):
                event = events[position]
                assert shard_of(event.resource_id, 4) == shard_index
                bank = sharded.shards[shard_index]
                assert bank.resources.value(int(row)) == event.resource_id
            seen.extend(positions.tolist())
        assert sorted(seen) == list(range(len(events)))


class TestInlineCutoff:
    def test_small_batches_skip_the_pool(self):
        calls: list[int] = []

        class SpyExecutor(SerialExecutor):
            def run(self, tasks):
                calls.append(len(tasks))
                return super().run(tasks)

        bank = ShardedStabilityBank(4, 5, executor=SpyExecutor())
        bank.ingest_events(random_events(8, 40, seed=1))
        assert calls == [], "a 40-event batch should ingest inline"
        bank.parallel_min_events = 0
        bank.ingest_events(random_events(8, 40, seed=2))
        assert len(calls) == 1, "zeroing the cutoff must engage the executor"


@pytest.mark.parametrize("executor_kind,workers", [
    ("serial", 0), ("thread", 1), ("thread", 2), ("thread", 8),
])
class TestParallelIngest:
    def test_identical_to_inline_serial(self, executor_kind, workers):
        events = random_events(20, 800, seed=11)
        reference = ShardedStabilityBank(4, 5, 0.9)
        with make_executor(executor_kind, workers) as pool:
            parallel = ShardedStabilityBank(4, 5, 0.9, executor=pool)
            parallel.parallel_min_events = 0  # force pool dispatch
            for start in range(0, len(events), 96):
                chunk = events[start : start + 96]
                expected = reference.ingest_events(chunk)
                got = parallel.ingest_events(chunk)
                # byte-identical, not approximately equal
                assert np.array_equal(expected.similarities, got.similarities)
                assert expected.newly_stable == got.newly_stable
                assert expected.n_tag_assignments == got.n_tag_assignments
        assert parallel.stable_points() == reference.stable_points()
        for rid in {e.resource_id for e in events}:
            assert parallel.counts_of(rid) == reference.counts_of(rid)
            assert parallel.ma_score(rid) == reference.ma_score(rid)
