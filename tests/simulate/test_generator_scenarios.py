"""Tests for the corpus generator, popularity models and scenario presets."""

import pytest

from repro.core import DataModelError
from repro.core.stability import PREPARATION_OMEGA, PREPARATION_TAU, practically_stable_rfd
from repro.simulate import (
    CorpusConfig,
    CorpusGenerator,
    PopularityConfig,
    case_study_scenario,
    draw_initial_share,
    draw_total_posts,
    figure1a_scenario,
    heavy_tail_counts,
    paper_scenario,
    tiny_scenario,
    universe_scenario,
)


class TestPopularity:
    def test_total_posts_bounds(self, rng):
        config = PopularityConfig(min_posts=50, max_posts=400)
        counts = draw_total_posts(500, rng, config)
        assert counts.min() >= 50
        assert counts.max() <= 400

    def test_initial_share_in_unit_interval(self, rng):
        shares = draw_initial_share(500, rng)
        assert (shares > 0).all() and (shares < 1).all()

    def test_heavy_tail_starts_at_one(self, rng):
        counts = heavy_tail_counts(2000, rng)
        assert counts.min() == 1
        # Most resources get very few posts (the Fig 1(b) shape).
        assert (counts == 1).mean() > 0.3

    def test_config_validation(self):
        with pytest.raises(DataModelError):
            PopularityConfig(min_posts=10, max_posts=5)
        with pytest.raises(DataModelError):
            PopularityConfig(pareto_alpha=0)


class TestCorpusGenerator:
    def test_config_validation(self):
        with pytest.raises(DataModelError):
            CorpusConfig(n_resources=0)
        with pytest.raises(DataModelError):
            CorpusConfig(cutoff_day=400.0)

    def test_generation_is_deterministic(self):
        a = CorpusGenerator(CorpusConfig(n_resources=6), seed=3).generate()
        b = CorpusGenerator(CorpusConfig(n_resources=6), seed=3).generate()
        for ra, rb in zip(a.dataset.resources, b.dataset.resources):
            assert ra.sequence == rb.sequence

    def test_different_seeds_differ(self):
        a = CorpusGenerator(CorpusConfig(n_resources=6), seed=3).generate()
        b = CorpusGenerator(CorpusConfig(n_resources=6), seed=4).generate()
        assert any(
            ra.sequence != rb.sequence
            for ra, rb in zip(a.dataset.resources, b.dataset.resources)
        )

    def test_models_align_with_resources(self, tiny_corpus):
        for resource, model in zip(tiny_corpus.dataset.resources, tiny_corpus.models):
            assert resource.resource_id == model.resource_id
            assert resource.category == model.primary_category

    def test_timestamps_ordered_and_cutoff_respected(self, tiny_corpus):
        cutoff = tiny_corpus.cutoff
        split = tiny_corpus.dataset.split(cutoff)
        for i, resource in enumerate(tiny_corpus.dataset.resources):
            times = [p.timestamp for p in resource.sequence]
            assert times == sorted(times)
            before = sum(1 for t in times if t <= cutoff)
            assert before == split.initial_counts[i]

    def test_subset(self, tiny_corpus):
        subset = tiny_corpus.subset([0, 2])
        assert len(subset.dataset) == 2
        assert subset.models[1].resource_id == tiny_corpus.models[2].resource_id


class TestScenarios:
    def test_tiny_scenario_shape(self, tiny_corpus):
        assert len(tiny_corpus.dataset) == 25

    def test_paper_scenario_filters_to_stability(self):
        corpus = paper_scenario(n=12, seed=2)
        assert len(corpus.dataset) == 12
        for resource in corpus.dataset.resources:
            practically_stable_rfd(
                resource.sequence, PREPARATION_OMEGA, PREPARATION_TAU
            )  # must not raise

    def test_paper_scenario_raises_when_overgeneration_too_small(self):
        with pytest.raises(DataModelError):
            paper_scenario(n=50, seed=2, overgeneration=0.2)

    def test_universe_scenario_heavy_tail(self):
        corpus = universe_scenario(seed=1, n=800)
        distribution = corpus.dataset.posts_distribution()
        assert distribution.get(1, 0) > 200

    def test_figure1a_single_resource(self):
        corpus = figure1a_scenario(seed=0, num_posts=120)
        assert len(corpus.dataset) == 1
        sequence = corpus.dataset.resources[0].sequence
        assert len(sequence) == 120
        top = sequence.distinct_tags()
        assert "google" in top and "maps" in top


class TestCaseStudyScenario:
    def test_four_subjects(self, case_scenario):
        stories = [s.story for s in case_scenario.subjects]
        assert stories == [
            "physics-vs-java",
            "video-editing-vs-sharing",
            "architecture-vs-news",
            "espn-control",
        ]

    def test_control_subject_has_no_bias(self, case_scenario):
        control = case_scenario.subjects[-1]
        assert control.bias_leaf is None
        resource = case_scenario.corpus.dataset.resources.by_id(control.resource_id)
        split_count = resource.sequence.count_before(31.0)
        assert split_count >= 200  # over-tagged in January by design

    def test_biased_subjects_are_sparse_in_january(self, case_scenario):
        for subject in case_scenario.subjects[:3]:
            resource = case_scenario.corpus.dataset.resources.by_id(subject.resource_id)
            assert resource.sequence.count_before(31.0) <= 12

    def test_early_posts_lean_to_bias_leaf(self, case_scenario):
        subject = case_scenario.subjects[0]
        model = case_scenario.corpus.models[
            case_scenario.corpus.dataset.resources.index_of(subject.resource_id)
        ]
        assert model.early_distribution is not None
        assert model.early_distribution["java"] > model.early_distribution["physics"]
        assert model.distribution["physics"] > model.distribution["java"]

    def test_pool_labels_cover_pools(self, case_scenario):
        physics_pool = [
            rid
            for rid, leaf in case_scenario.pool_labels.items()
            if leaf == ("science", "physics")
        ]
        assert len(physics_pool) == 10
