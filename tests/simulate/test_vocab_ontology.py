"""Tests for the tag vocabulary pools and the topic hierarchy."""

import pytest

from repro.core import DataModelError
from repro.simulate import (
    SEED_TAXONOMY,
    TopicHierarchy,
    aspect_similarity,
    domain_tag_pool,
    leaf_tag_pool,
    zipf_weights,
)
from repro.simulate.ontology import pairwise_ground_truth


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(10).sum() == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        weights = zipf_weights(8, exponent=1.2)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_higher_exponent_concentrates(self):
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.5)
        assert steep[0] > flat[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestTagPools:
    def test_curated_tags_come_first(self):
        pool = leaf_tag_pool("science", "physics", pool_size=30)
        assert pool[0] == "physics"
        assert "mechanics" in pool

    def test_padding_with_suffix_tags(self):
        pool = leaf_tag_pool("science", "physics", pool_size=15)
        assert len(pool) == 15
        assert any(tag.startswith("physics-") for tag in pool)

    def test_no_duplicates(self):
        pool = leaf_tag_pool("media", "video-editing", pool_size=20)
        assert len(pool) == len(set(pool))

    def test_unknown_leaf_raises(self):
        with pytest.raises(KeyError):
            leaf_tag_pool("science", "alchemy")

    def test_domain_pool(self):
        assert "science" in domain_tag_pool("science")


class TestHierarchy:
    def test_leaves_cover_taxonomy(self):
        hierarchy = TopicHierarchy.from_taxonomy()
        expected = sum(
            1
            for domain in SEED_TAXONOMY.values()
            for leaf in domain
            if not leaf.startswith("_")
        )
        assert len(hierarchy.leaves) == expected

    def test_domains_and_leaves_of(self):
        hierarchy = TopicHierarchy.from_taxonomy()
        assert "science" in hierarchy.domains
        physics_leaves = hierarchy.leaves_of("science")
        assert ("science", "physics") in physics_leaves

    def test_validate(self):
        hierarchy = TopicHierarchy.from_taxonomy()
        hierarchy.validate(("science", "physics"))
        with pytest.raises(DataModelError):
            hierarchy.validate(("science", "alchemy"))

    def test_empty_taxonomy_rejected(self):
        with pytest.raises(DataModelError):
            TopicHierarchy.from_taxonomy({"d": {"_domain": ["x"]}})


class TestWuPalmer:
    def test_identical_leaves(self):
        assert TopicHierarchy.wu_palmer(("a", "b"), ("a", "b")) == 1.0

    def test_siblings(self):
        assert TopicHierarchy.wu_palmer(("a", "b"), ("a", "c")) == pytest.approx(0.5)

    def test_different_domains(self):
        assert TopicHierarchy.wu_palmer(("a", "b"), ("x", "y")) == 0.0

    def test_symmetry(self):
        assert TopicHierarchy.wu_palmer(("a", "b"), ("a", "c")) == TopicHierarchy.wu_palmer(
            ("a", "c"), ("a", "b")
        )

    def test_empty_path_rejected(self):
        with pytest.raises(DataModelError):
            TopicHierarchy.wu_palmer((), ("a",))


class TestAspectSimilarity:
    def test_pure_aspects_reduce_to_wu_palmer(self):
        a = ((("science", "physics"), 1.0),)
        b = ((("science", "astronomy"), 1.0),)
        assert aspect_similarity(a, b) == pytest.approx(0.5)

    def test_mixture_weights(self):
        mixed = ((("science", "physics"), 0.7), (("programming", "java"), 0.3))
        pure = ((("science", "physics"), 1.0),)
        assert aspect_similarity(mixed, pure) == pytest.approx(0.7)

    def test_self_similarity_of_pure_aspect_is_one(self):
        pure = ((("science", "physics"), 1.0),)
        assert aspect_similarity(pure, pure) == 1.0

    def test_empty_aspects_rejected(self):
        with pytest.raises(DataModelError):
            aspect_similarity((), ((("a", "b"), 1.0),))

    def test_pairwise_ground_truth_covers_all_pairs(self):
        aspects = [((("science", "physics"), 1.0),)] * 3
        pairs = pairwise_ground_truth(aspects)
        assert len(pairs) == 3
        assert all(score == 1.0 for _, _, score in pairs)
