"""Cross-process determinism of corpus generation.

The generator's rng stream must not depend on ``PYTHONHASHSEED``:
``repro.simulate.taggers`` iterates tag *sets* while consuming random
draws (typo garbling, the imitation urn), so set order would otherwise
leak the interpreter's hash salt into the corpus.  These tests shell out
twice with different hash seeds and require identical corpora.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

DIGEST_SCRIPT = """
import hashlib, json
from repro.simulate import paper_scenario
from repro.simulate.generator import CorpusConfig, CorpusGenerator
from repro.simulate.taggers import TaggerBehavior

corpus = paper_scenario(n=12, seed=3)
payload = [
    [(round(p.timestamp, 9), sorted(p.tags)) for p in r.sequence]
    for r in corpus.dataset.resources
]
# the imitation urn is the other rng-visible dict iteration; exercise it
config = CorpusConfig(n_resources=4, tagger=TaggerBehavior(imitation_rate=0.4))
urn = CorpusGenerator(config, seed=9).generate()
payload.append(
    [[sorted(p.tags) for p in r.sequence] for r in urn.dataset.resources]
)
print(hashlib.sha256(json.dumps(payload).encode()).hexdigest())
"""


def corpus_digest(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestCrossProcessDeterminism:
    def test_corpus_identical_across_hash_seeds(self):
        digests = {corpus_digest(seed) for seed in ("0", "1", "31337")}
        assert len(digests) == 1, (
            "corpus generation depends on PYTHONHASHSEED; some set/dict "
            "iteration feeds an rng-visible order"
        )

    def test_in_process_regeneration_is_stable(self):
        from repro.simulate import paper_scenario

        def digest():
            corpus = paper_scenario(n=8, seed=5)
            payload = [
                [sorted(p.tags) for p in r.sequence]
                for r in corpus.dataset.resources
            ]
            return hashlib.sha256(json.dumps(payload).encode()).hexdigest()

        assert digest() == digest()
