"""Tests for resource models and the tagger noise model."""

import numpy as np
import pytest

from repro.core import DataModelError
from repro.simulate import (
    AspectConfig,
    TaggerBehavior,
    TagSampler,
    TopicHierarchy,
    build_resource_model,
    generate_post,
    mixture_distribution,
)
from repro.simulate.resource_models import synthetic_site_name


@pytest.fixture(scope="module")
def hierarchy() -> TopicHierarchy:
    return TopicHierarchy.from_taxonomy()


class TestTagSampler:
    def test_distinct_samples(self, rng):
        sampler = TagSampler({"a": 0.5, "b": 0.3, "c": 0.2})
        for _ in range(20):
            tags = sampler.sample_distinct(2, rng)
            assert len(tags) == 2
            assert len(set(tags)) == 2

    def test_count_capped_at_support(self, rng):
        sampler = TagSampler({"a": 0.6, "b": 0.4})
        assert sorted(sampler.sample_distinct(5, rng)) == ["a", "b"]

    def test_weighting_respected(self, rng):
        sampler = TagSampler({"heavy": 0.95, "light": 0.05})
        picks = [sampler.sample_distinct(1, rng)[0] for _ in range(300)]
        assert picks.count("heavy") > 240

    def test_rejects_empty_distribution(self):
        with pytest.raises(DataModelError):
            TagSampler({})
        with pytest.raises(DataModelError):
            TagSampler({"a": 0.0})


class TestAspectConfig:
    def test_masses_must_sum_to_one(self):
        with pytest.raises(DataModelError):
            AspectConfig(topic_mass=0.5, general_mass=0.1, specific_mass=0.1)

    def test_aspect_probs_must_sum_to_one(self):
        with pytest.raises(DataModelError):
            AspectConfig(aspect_count_probs=(0.5, 0.1))


class TestMixture:
    def test_mixture_is_normalised(self):
        config = AspectConfig()
        distribution = mixture_distribution(
            ((("science", "physics"), 1.0),), ["mysite"], config
        )
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_topical_tags_dominate(self):
        config = AspectConfig()
        distribution = mixture_distribution(
            ((("science", "physics"), 1.0),), ["mysite"], config
        )
        assert distribution["physics"] == max(distribution.values())

    def test_specific_tags_present(self):
        config = AspectConfig()
        distribution = mixture_distribution(
            ((("science", "physics"), 1.0),), ["mysite"], config
        )
        assert distribution["mysite"] > 0


class TestBuildResourceModel:
    def test_respects_forced_aspects(self, hierarchy, rng):
        model = build_resource_model(
            "r1",
            hierarchy,
            rng,
            forced_aspects=((("science", "physics"), 0.7), (("programming", "java"), 0.3)),
        )
        assert model.primary_category == ("science", "physics")
        assert model.distribution["physics"] > model.distribution["java"]

    def test_forced_aspects_validated(self, hierarchy, rng):
        with pytest.raises(DataModelError):
            build_resource_model(
                "r1", hierarchy, rng, forced_aspects=((("no", "leaf"), 1.0),)
            )

    def test_sampled_aspects_sum_to_one(self, hierarchy, rng):
        model = build_resource_model("r2", hierarchy, rng)
        assert sum(w for _, w in model.aspects) == pytest.approx(1.0)

    def test_title_generation(self, hierarchy, rng):
        model = build_resource_model("r3", hierarchy, rng)
        assert model.title.endswith(".com")
        assert synthetic_site_name(rng, "video-editing").endswith("video.com")

    def test_deterministic_under_seed(self, hierarchy):
        a = build_resource_model("r", hierarchy, np.random.default_rng(5))
        b = build_resource_model("r", hierarchy, np.random.default_rng(5))
        assert a.distribution == b.distribution
        assert a.aspects == b.aspects

    def test_early_sampler_switch(self, hierarchy, rng):
        model = build_resource_model("r4", hierarchy, rng)
        model.early_distribution = {"only-early": 1.0}
        model.early_count = 2
        early = model.sampler_for_post(0)
        late = model.sampler_for_post(5)
        assert early.tags == ("only-early",)
        assert "only-early" not in late.tags


class TestTaggerBehavior:
    def test_validation(self):
        with pytest.raises(DataModelError):
            TaggerBehavior(typo_rate=1.5)
        with pytest.raises(DataModelError):
            TaggerBehavior(extra_tag_trials=-1)

    def test_post_size_at_least_one(self, rng):
        behavior = TaggerBehavior()
        assert all(behavior.post_size(rng) >= 1 for _ in range(100))

    def test_generated_posts_nonempty(self, hierarchy, rng):
        model = build_resource_model("r5", hierarchy, rng)
        for index in range(50):
            post = generate_post(model, index, float(index), rng)
            assert len(post.tags) >= 1
            assert post.timestamp == float(index)

    def test_zero_noise_stays_on_distribution(self, hierarchy, rng):
        model = build_resource_model("r6", hierarchy, rng)
        behavior = TaggerBehavior(typo_rate=0.0, personal_rate=0.0, spam_rate=0.0)
        support = set(model.distribution)
        for index in range(60):
            post = generate_post(model, index, 0.0, rng, behavior)
            assert post.tags <= support

    def test_typos_produce_rare_new_tags(self, hierarchy, rng):
        model = build_resource_model("r7", hierarchy, rng)
        behavior = TaggerBehavior(typo_rate=1.0, personal_rate=0.0, spam_rate=0.0)
        support = set(model.distribution)
        post = generate_post(model, 0, 0.0, rng, behavior)
        assert any(tag not in support for tag in post.tags)

    def test_imitation_reuses_observed_tags(self, hierarchy, rng):
        model = build_resource_model("r8", hierarchy, rng)
        behavior = TaggerBehavior(
            typo_rate=0.0, personal_rate=0.0, spam_rate=0.0, imitation_rate=1.0
        )
        observed = {"already-here": 50}
        post = generate_post(model, 0, 0.0, rng, behavior, observed_counts=observed)
        assert "already-here" in post.tags
