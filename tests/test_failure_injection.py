"""Failure injection: broken collaborators must fail loudly and cleanly."""

import numpy as np
import pytest

from repro.core import (
    AllocationError,
    BudgetError,
    DataModelError,
    Post,
    PostSequence,
    Resource,
    ResourceSet,
    TaggingDataset,
)
from repro.allocation import (
    AllocationStrategy,
    FewestPostsFirst,
    GenerativeTaggerSource,
    IncentiveRunner,
    RoundRobin,
)


def build_split(n: int = 2, initial: int = 3, future: int = 5, cutoff: float = 50.0):
    resources = ResourceSet()
    for i in range(n):
        timestamps = [float(j + 1) for j in range(initial)]
        timestamps += [cutoff + 1 + j for j in range(future)]
        posts = [Post.of(f"t{i}", timestamp=t) for t in timestamps]
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    return TaggingDataset(resources).split(cutoff)


class TestBrokenStrategies:
    def test_strategy_raising_in_update_propagates(self):
        class Exploding(FewestPostsFirst):
            def update(self, index, post):
                raise RuntimeError("boom")

        runner = IncentiveRunner.replay(build_split())
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(Exploding(), budget=3)

    def test_strategy_spamming_dead_resource_terminates(self):
        # A strategy that ignores mark_exhausted must not hang the loop.
        class Stubborn(AllocationStrategy):
            name = "stubborn"

            def choose(self):
                return 0

        split = build_split(n=2, future=0)  # nothing to deliver
        runner = IncentiveRunner.replay(split)
        trace = runner.run(Stubborn(), budget=10)
        assert trace.tasks_delivered == 0

    def test_strategy_returning_negative_index_rejected(self):
        class Negative(AllocationStrategy):
            name = "negative"

            def choose(self):
                return -1

        runner = IncentiveRunner.replay(build_split())
        with pytest.raises(AllocationError):
            runner.run(Negative(), budget=1)

    def test_uninitialised_strategy_context_access(self):
        strategy = FewestPostsFirst()
        with pytest.raises(RuntimeError):
            _ = strategy.context


class TestBrokenSources:
    def test_generative_factory_exception_propagates(self):
        def broken(index: int) -> Post:
            raise ConnectionError("tagger service down")

        runner = IncentiveRunner.generative(
            np.array([0, 0]), [[], []], broken
        )
        with pytest.raises(ConnectionError):
            runner.run(RoundRobin(), budget=1)

    def test_generative_factory_returning_empty_post_fails_fast(self):
        # A post with no tags violates Definition 1 at construction.
        with pytest.raises(DataModelError):
            Post(frozenset())

    def test_free_choice_without_model_raises(self):
        source = GenerativeTaggerSource(lambda i: Post.of("x"))
        runner = IncentiveRunner(
            2, np.array([0, 0]), [[], []], lambda: source
        )
        from repro.allocation import FreeChoice

        with pytest.raises(NotImplementedError):
            runner.run(FreeChoice(), budget=1)


class TestServiceFailures:
    def test_campaign_with_always_declining_crowd_preserves_budget(self, rng):
        from repro.service import IncentiveCampaign, SimulatedWorker, WorkerPool
        from repro.simulate import tiny_scenario

        corpus = tiny_scenario(seed=3)
        split = corpus.dataset.split(corpus.cutoff)
        grumps = WorkerPool(
            [
                SimulatedWorker(
                    "grump",
                    favourite_domains=frozenset({"__none__"}),
                    off_topic_acceptance=0.0,
                )
            ],
            rng,
        )
        campaign = IncentiveCampaign(
            corpus.models,
            [split.initial_posts(i) for i in range(split.n)],
            FewestPostsFirst(),
            grumps,
            budget=50,
            rng=rng,
            batch_size=10,
        )
        result = campaign.run(max_epochs=5)
        assert result.ledger.spent == 0
        assert result.total_completed == 0
        assert all(report.unfilled == report.published for report in result.reports)

    def test_double_payment_of_budget_rejected(self):
        from repro.service import RewardLedger

        ledger = RewardLedger(1)
        ledger.pay(1, "w", 1)
        with pytest.raises(BudgetError):
            ledger.pay(2, "w", 1)
        assert ledger.reconcile()


class TestCorruptData:
    def test_jsonl_with_invalid_json_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"id": "a", "posts": []}\nNOT-JSON\n')
        with pytest.raises(DataModelError):
            TaggingDataset.from_jsonl(path)

    def test_jsonl_with_empty_tag_list_in_post(self, tmp_path):
        path = tmp_path / "empty_post.jsonl"
        path.write_text('{"id": "a", "posts": [{"t": 1.0, "tags": []}]}\n')
        with pytest.raises(DataModelError):
            TaggingDataset.from_jsonl(path)

    def test_jsonl_with_unsorted_timestamps(self, tmp_path):
        path = tmp_path / "unsorted.jsonl"
        path.write_text(
            '{"id": "a", "posts": [{"t": 5.0, "tags": ["x"]}, {"t": 1.0, "tags": ["y"]}]}\n'
        )
        with pytest.raises(DataModelError):
            TaggingDataset.from_jsonl(path)

    def test_duplicate_resource_ids_in_jsonl(self, tmp_path):
        path = tmp_path / "dupes.jsonl"
        record = '{"id": "a", "posts": [{"t": 1.0, "tags": ["x"]}]}\n'
        path.write_text(record + record)
        with pytest.raises(DataModelError):
            TaggingDataset.from_jsonl(path)
