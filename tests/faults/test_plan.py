"""The fault-injection substrate: plans, specs, the injector, activation."""

import json

import pytest

from repro import faults
from repro.faults import (
    ENV_FAULT_PLAN,
    FAULT_KINDS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_plan,
)
from repro.faults.plan import _reset_for_tests


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
    _reset_for_tests()
    yield
    _reset_for_tests()


class TestFaultSpec:
    def test_round_trip_omits_defaults(self):
        spec = FaultSpec(site="procpool.flush", kind="kill_worker")
        assert spec.to_dict() == {"site": "procpool.flush", "kind": "kill_worker"}
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_full(self):
        spec = FaultSpec(
            site="checkpoint.shard",
            kind="torn_write",
            at=2,
            every=3,
            times=0,
            param={"bytes": 128},
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec(site="x", kind="explode")

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultError, match="unknown fault spec keys: when"):
            FaultSpec.from_dict({"site": "x", "kind": "error", "when": 3})

    def test_negative_index_rejected(self):
        with pytest.raises(FaultError, match="'at'"):
            FaultSpec(site="x", kind="error", at=-1)

    def test_matches_one_shot(self):
        spec = FaultSpec(site="x", kind="error", at=3)
        assert [i for i in range(10) if spec.matches(i)] == [3]

    def test_matches_periodic(self):
        spec = FaultSpec(site="x", kind="error", at=2, every=4)
        assert [i for i in range(12) if spec.matches(i)] == [2, 6, 10]

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(site="x", kind=kind).kind == kind


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="procpool.worker", kind="kill_worker", at=1),
                FaultSpec(site="driver.step", kind="error", at=0, every=2, times=3),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bad_json_rejected(self):
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(FaultError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"specs": [], "chaos": True})

    def test_load_plan_inline(self):
        plan = load_plan('{"specs": [{"site": "a.b", "kind": "error"}]}')
        assert plan.specs[0].site == "a.b"

    def test_load_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"specs": [{"site": "jobstore.append", "kind": "truncate_journal"}]}
        ))
        plan = load_plan(str(path))
        assert plan.specs[0].kind == "truncate_journal"

    def test_load_plan_missing_file(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read fault plan"):
            load_plan(str(tmp_path / "absent.json"))


class TestInjector:
    def test_counts_sites_independently(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="a", kind="error", at=1),
        )))
        assert injector.check("b") is None
        assert injector.check("a") is None  # index 0
        fired = injector.check("a")  # index 1
        assert fired is not None and fired.kind == "error"
        assert injector.site_index("a") == 2
        assert injector.site_index("b") == 1
        assert injector.fired_total() == 1

    def test_times_bounds_periodic_firing(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="error", at=0, every=1, times=2),
        )))
        fires = [injector.check("s") is not None for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_times_zero_is_unbounded(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="error", at=0, every=2, times=0),
        )))
        fires = [injector.check("s") is not None for _ in range(6)]
        assert fires == [True, False, True, False, True, False]

    def test_identical_plans_fire_identically(self):
        payload = {"specs": [
            {"site": "s", "kind": "error", "at": 1, "every": 3, "times": 2},
        ]}
        a = FaultInjector(FaultPlan.from_dict(payload))
        b = FaultInjector(FaultPlan.from_dict(payload))
        trace_a = [a.check("s") is not None for _ in range(10)]
        trace_b = [b.check("s") is not None for _ in range(10)]
        assert trace_a == trace_b


class TestActivation:
    def test_check_is_noop_without_plan(self):
        assert faults.check("anything") is None
        assert faults.active() is None

    def test_activate_and_deactivate(self):
        faults.activate({"specs": [{"site": "s", "kind": "error"}]})
        assert faults.check("s") is not None
        faults.deactivate()
        assert faults.check("s") is None

    def test_activate_from_json_string(self):
        faults.activate('{"specs": [{"site": "s", "kind": "error"}]}')
        assert faults.check("s") is not None

    def test_env_plan_loaded_lazily(self, monkeypatch):
        monkeypatch.setenv(
            ENV_FAULT_PLAN, '{"specs": [{"site": "envsite", "kind": "error"}]}'
        )
        _reset_for_tests()
        assert faults.check("envsite") is not None

    def test_env_plan_from_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"specs": [{"site": "filesite", "kind": "error"}]}')
        monkeypatch.setenv(ENV_FAULT_PLAN, str(path))
        _reset_for_tests()
        assert faults.check("filesite") is not None

    def test_deactivate_blocks_env_resurrection(self, monkeypatch):
        monkeypatch.setenv(
            ENV_FAULT_PLAN, '{"specs": [{"site": "s", "kind": "error"}]}'
        )
        _reset_for_tests()
        faults.deactivate()
        assert faults.check("s") is None
