"""Pack corpora through the full stack: CorpusSpec -> run() -> server job."""

import asyncio
import json

import pytest

from repro.api import CampaignSpec, CorpusSpec, JobSpec, run, spec_from_json
from repro.api import materialize
from repro.api.specs import AllocateSpec, ServerSpec
from repro.core.errors import SpecError
from repro.server import JobStore, Scheduler


def pack_corpus_spec(**overrides):
    defaults = dict(kind="pack", pack="capped-vocab",
                    pack_params={"n": 12, "cap": 4}, seed=1)
    defaults.update(overrides)
    return CorpusSpec(**defaults)


class TestCorpusSpecValidation:
    def test_unknown_pack_lists_registered(self):
        with pytest.raises(SpecError, match="registered packs") as exc:
            CorpusSpec(kind="pack", pack="nope")
        assert "capped-vocab" in str(exc.value)

    def test_pack_kind_requires_name(self):
        with pytest.raises(SpecError, match="requires a pack name"):
            CorpusSpec(kind="pack")

    def test_undeclared_pack_param_rejected(self):
        with pytest.raises(SpecError, match="does not declare"):
            CorpusSpec(kind="pack", pack="tiny", pack_params={"n": 5})

    def test_non_pack_kind_rejects_pack_fields(self):
        with pytest.raises(SpecError, match="use kind='pack'"):
            CorpusSpec(kind="tiny", pack="tiny")
        with pytest.raises(SpecError, match="use kind='pack'"):
            CorpusSpec(kind="tiny", pack_params={"n": 5})

    def test_round_trips_through_json(self):
        spec = pack_corpus_spec()
        again = CorpusSpec.from_json(spec.to_json())
        assert again == spec


class TestMaterialize:
    def test_pack_corpus_carries_models_and_quality(self):
        corpus = materialize(pack_corpus_spec())
        assert corpus.n == 12
        assert corpus.models is not None
        assert corpus.hierarchy is not None
        assert corpus.quality is not None
        assert corpus.quality["pack"] == "capped-vocab"
        assert corpus.quality["fingerprint"]

    def test_cutoff_defaults_to_generated(self):
        corpus = materialize(pack_corpus_spec())
        assert corpus.require_cutoff() == 31.0

    def test_cutoff_override_wins(self):
        corpus = materialize(pack_corpus_spec(cutoff=45.0))
        assert corpus.require_cutoff() == 45.0

    def test_legacy_kinds_have_no_quality(self):
        corpus = materialize(CorpusSpec(kind="tiny", seed=0))
        assert corpus.quality is None


class TestRun:
    def test_allocate_from_json_blob(self):
        blob = json.dumps({
            "type": "allocate",
            "corpus": {"type": "corpus", "kind": "pack", "pack": "small",
                       "pack_params": {"n": 12}, "seed": 3},
            "strategy": "FP",
            "budget": 30,
        })
        result = run(spec_from_json(blob))
        assert result.kind == "allocate"
        assert result.metrics["delivered"] == 30
        assert result.details["corpus_quality"]["pack"] == "small"

    def test_campaign_from_json_blob(self):
        blob = json.dumps({
            "type": "campaign",
            "corpus": {"type": "corpus", "kind": "pack", "pack": "budget-seeded",
                       "pack_params": {"n": 12, "seeds": 4}, "seed": 1},
            "strategy": "FP",
            "budget": 30,
            "workers": 3,
            "max_epochs": 4,
        })
        result = run(spec_from_json(blob))
        assert result.kind == "campaign"
        assert result.metrics["epochs"] >= 1
        assert result.details["corpus_quality"]["pack"] == "budget-seeded"

    def test_campaign_runs_are_deterministic(self):
        spec = CampaignSpec(
            corpus=pack_corpus_spec(),
            strategy="FP", budget=30, workers=3, max_epochs=4,
        )
        a = run(spec)
        b = run(CampaignSpec.from_json(spec.to_json()))
        assert a.details["final_counts"] == b.details["final_counts"]
        assert (a.details["corpus_quality"]["fingerprint"]
                == b.details["corpus_quality"]["fingerprint"])

    def test_allocate_unknown_pack_fails_with_listing(self):
        blob = json.dumps({
            "type": "allocate",
            "corpus": {"type": "corpus", "kind": "pack", "pack": "missing-pack"},
            "strategy": "FP",
            "budget": 10,
        })
        with pytest.raises(SpecError, match="registered packs"):
            spec_from_json(blob)


class TestServerJobs:
    def test_pack_campaign_submits_and_completes(self):
        scheduler = Scheduler(ServerSpec(slots=2), store=JobStore(None))
        campaign = CampaignSpec(
            corpus=pack_corpus_spec(),
            strategy="FP", budget=30, workers=3, max_epochs=4,
        )
        # the JSON blob survives the job envelope round trip
        job = JobSpec.from_json(JobSpec(campaign=campaign, user="alice").to_json())
        job_id = scheduler.submit(job.campaign, user=job.user)
        asyncio.run(scheduler.run_until_idle())
        record = scheduler.status(job_id)
        assert record.state == "done"
        assert record.user == "alice"

    def test_multiple_pack_jobs_complete(self):
        scheduler = Scheduler(ServerSpec(slots=4), store=JobStore(None))
        packs = {
            "adverse-selection": {"n": 10, "incentive": 0.5},
            "incentive-framing": {"n": 10, "framing": "lottery"},
        }
        ids = []
        for name, params in sorted(packs.items()):
            spec = CampaignSpec(
                corpus=CorpusSpec(kind="pack", pack=name, pack_params=params, seed=2),
                strategy="FP", budget=20, workers=3, max_epochs=3,
            )
            ids.append(scheduler.submit(spec, user="bob"))
        asyncio.run(scheduler.run_until_idle())
        assert all(scheduler.status(i).state == "done" for i in ids)


class TestAllocateSpecDefaultsStillWork:
    def test_plain_corpus_spec_unchanged(self):
        # the new fields default away: legacy dict payloads still load
        payload = {"type": "corpus", "kind": "tiny", "resources": 5, "seed": 0}
        spec = CorpusSpec.from_dict(payload)
        assert spec.pack is None
        assert spec.pack_params == {}

    def test_allocate_spec_with_pack_round_trips(self):
        spec = AllocateSpec(corpus=pack_corpus_spec(), strategy="FP", budget=10)
        assert AllocateSpec.from_json(spec.to_json()) == spec
