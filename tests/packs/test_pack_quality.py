"""The corpus quality pipeline: filters, reports, order invariance."""

from itertools import permutations

import pytest

from repro.core.dataset import TaggingDataset
from repro.core.errors import DataModelError, SpecError
from repro.core.posts import Post, PostSequence
from repro.core.resources import Resource, ResourceSet
from repro.packs.quality import (
    FILTERS,
    MIN_STABILIZABLE_POSTS,
    QualityReport,
    corpus_fingerprint,
    resource_fingerprint,
    run_filters,
)
from repro.simulate.generator import CorpusConfig, GeneratedCorpus


def make_resource(resource_id, posts):
    """A resource from ``[(timestamp, [tags...]), ...]``."""
    return Resource(
        resource_id=resource_id,
        sequence=PostSequence(
            [Post(tags=frozenset(tags), timestamp=t) for t, tags in posts]
        ),
    )


def make_corpus(resources):
    return GeneratedCorpus(
        dataset=TaggingDataset(ResourceSet(resources), name="crafted"),
        models=[None] * len(resources),
        hierarchy=None,
        config=CorpusConfig(n_resources=max(len(resources), 1)),
    )


def healthy_posts(n=12, tag_cycle=("alpha", "beta", "gamma")):
    """``n`` posts cycling through a small vocabulary — flags nothing."""
    return [
        (float(i), [tag_cycle[i % len(tag_cycle)], "common"]) for i in range(n)
    ]


class TestFingerprints:
    def test_identical_content_identical_fingerprint(self):
        a = make_resource("a", [(1.0, ["x", "y"]), (2.0, ["z"])])
        b = make_resource("b", [(1.0, ["y", "x"]), (2.0, ["z"])])  # tag order differs
        assert resource_fingerprint(a) == resource_fingerprint(b)

    def test_content_change_changes_fingerprint(self):
        a = make_resource("a", [(1.0, ["x"])])
        b = make_resource("b", [(1.0, ["x", "y"])])
        assert resource_fingerprint(a) != resource_fingerprint(b)

    def test_corpus_fingerprint_covers_ids(self):
        posts = [(1.0, ["x"]), (2.0, ["y"])]
        c1 = make_corpus([make_resource("a", posts)])
        c2 = make_corpus([make_resource("b", posts)])
        assert corpus_fingerprint(c1) != corpus_fingerprint(c2)


class TestDuplicateFilter:
    def test_flags_later_duplicates_keeps_first(self):
        posts = healthy_posts()
        corpus = make_corpus([
            make_resource("first", posts),
            make_resource("clone", posts),
            make_resource("other", healthy_posts(tag_cycle=("delta", "eps", "zeta"))),
            make_resource("clone2", posts),
        ])
        kept, report = run_filters(corpus, ["duplicates"], enforce=True)
        ids = [r.resource_id for r in kept.dataset.resources]
        assert ids == ["first", "other"]
        assert report.outcomes[0].flagged == 2
        assert "duplicate of 'first'" in report.outcomes[0].reasons["clone"]

    def test_no_duplicates_flags_nothing(self):
        corpus = make_corpus([
            make_resource("a", healthy_posts()),
            make_resource("b", healthy_posts(tag_cycle=("p", "q", "r"))),
        ])
        _, report = run_filters(corpus, ["duplicates"], enforce=True)
        assert report.dropped == 0


class TestDegenerateFilter:
    def test_empty_sequence_flagged(self):
        corpus = make_corpus([
            make_resource("empty", []),
            make_resource("ok", healthy_posts()),
        ])
        kept, report = run_filters(corpus, ["degenerate"], enforce=True)
        assert [r.resource_id for r in kept.dataset.resources] == ["ok"]
        assert report.outcomes[0].reasons["empty"] == "empty post sequence"

    def test_short_sequence_never_stabilizable(self):
        short = healthy_posts(n=MIN_STABILIZABLE_POSTS - 1)
        corpus = make_corpus([
            make_resource("short", short),
            make_resource("ok", healthy_posts()),
        ])
        kept, report = run_filters(corpus, ["degenerate"], enforce=True)
        assert [r.resource_id for r in kept.dataset.resources] == ["ok"]
        assert "never stabilizable" in report.outcomes[0].reasons["short"]

    def test_single_tag_vocabulary_flagged(self):
        mono = [(float(i), ["only"]) for i in range(12)]
        corpus = make_corpus([
            make_resource("mono", mono),
            make_resource("ok", healthy_posts()),
        ])
        kept, report = run_filters(corpus, ["degenerate"], enforce=True)
        assert [r.resource_id for r in kept.dataset.resources] == ["ok"]
        assert "single-tag" in report.outcomes[0].reasons["mono"]

    def test_all_healthy_corpus_untouched(self):
        corpus = make_corpus([make_resource("a", healthy_posts()),
                              make_resource("b", healthy_posts())])
        kept, report = run_filters(corpus, ["degenerate"], enforce=True)
        assert report.dropped == 0
        assert kept is corpus  # nothing flagged -> no subset taken


class TestVocabSkewFilter:
    def test_dominant_tag_flagged(self):
        # 99 of 100 assignments are "huge": way past the 0.95 bound
        skewed = [(float(i), ["huge"]) for i in range(99)] + [(99.0, ["rare"])]
        corpus = make_corpus([
            make_resource("skew", skewed),
            make_resource("ok", healthy_posts()),
        ])
        kept, report = run_filters(corpus, ["vocab-skew"], enforce=True)
        assert [r.resource_id for r in kept.dataset.resources] == ["ok"]
        assert "vocabulary skew" in report.outcomes[0].reasons["skew"]

    def test_balanced_resource_not_flagged(self):
        corpus = make_corpus([make_resource("ok", healthy_posts())])
        _, report = run_filters(corpus, ["vocab-skew"], enforce=True)
        assert report.outcomes[0].flagged == 0

    def test_single_tag_left_to_degenerate_filter(self):
        mono = [(float(i), ["only"]) for i in range(12)]
        corpus = make_corpus([make_resource("mono", mono)])
        _, report = run_filters(corpus, ["vocab-skew"], enforce=True)
        assert report.outcomes[0].flagged == 0


class TestPipeline:
    def crafted(self):
        posts = healthy_posts()
        return make_corpus([
            make_resource("keep-a", posts),
            make_resource("dup", posts),                        # duplicates
            make_resource("empty", []),                          # degenerate
            make_resource("skew",
                          [(float(i), ["huge"]) for i in range(99)]
                          + [(99.0, ["rare"])]),                 # vocab-skew
            make_resource("keep-b", healthy_posts(tag_cycle=("p", "q", "r"))),
        ])

    def test_filter_order_invariance(self):
        results = set()
        for order in permutations(["duplicates", "degenerate", "vocab-skew"]):
            kept, report = run_filters(self.crafted(), list(order), enforce=True)
            ids = tuple(r.resource_id for r in kept.dataset.resources)
            results.add((ids, report.fingerprint))
        assert len(results) == 1
        (ids, _), = results
        assert ids == ("keep-a", "keep-b")

    def test_report_only_mode_keeps_everything(self):
        corpus = self.crafted()
        kept, report = run_filters(
            corpus, ["duplicates", "degenerate", "vocab-skew"],
            enforce=False, pack="legacy",
        )
        assert kept is corpus
        assert report.dropped == 0
        assert report.enforced is False
        assert sum(o.flagged for o in report.outcomes) == 3
        assert report.fingerprint == corpus_fingerprint(corpus)

    def test_all_flagged_raises(self):
        mono = [(float(i), ["only"]) for i in range(12)]
        corpus = make_corpus([make_resource("mono", mono)])
        with pytest.raises(DataModelError, match="flagged all"):
            run_filters(corpus, ["degenerate"], enforce=True, pack="doomed")

    def test_empty_corpus_reports_cleanly(self):
        corpus = make_corpus([])
        kept, report = run_filters(corpus, FILTERS, enforce=True)
        assert report.generated == 0
        assert report.kept == 0
        assert report.total_assignments == 0

    def test_unknown_filter_name_rejected(self):
        corpus = make_corpus([make_resource("a", healthy_posts())])
        with pytest.raises(SpecError, match="unknown quality filter"):
            run_filters(corpus, ["bogus"])

    def test_report_round_trips_and_renders(self):
        _, report = run_filters(
            self.crafted(), ["duplicates", "degenerate", "vocab-skew"],
            enforce=True, pack="crafted",
        )
        payload = report.to_dict()
        assert payload["pack"] == "crafted"
        assert payload["generated"] == 5
        assert payload["kept"] == 2
        assert isinstance(report, QualityReport)
        text = report.render()
        assert "generated 5, kept 2, dropped 3" in text
        assert "duplicates: 1 flagged" in text
