"""Every registered pack builds, matches its pinned fingerprint, and is
deterministic across processes and ``PYTHONHASHSEED`` values."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.packs import PACKS, PackSpec, build_pack

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src")
FIXTURE = REPO / "tests" / "fixtures" / "pack_fingerprints.json"

PINNED = json.loads(FIXTURE.read_text())


class TestFixtureCoverage:
    def test_every_registered_pack_has_a_pinned_fingerprint(self):
        # a new pack cannot ship without running
        # scripts/generate_pack_fingerprints.py
        assert sorted(PINNED) == PACKS.names()


@pytest.mark.parametrize("name", sorted(PINNED))
class TestPinnedBuilds:
    def test_build_matches_pinned_fingerprint(self, name):
        pin = PINNED[name]
        build = build_pack(
            PackSpec(name=name, seed=pin["seed"], params=pin["params"])
        )
        assert build.report.fingerprint == pin["fingerprint"], (
            f"pack {name!r} no longer reproduces its pinned corpus; if the "
            "change is intentional, rerun scripts/generate_pack_fingerprints.py"
        )
        assert build.report.kept == pin["resources"]
        assert build.corpus.dataset.total_posts == pin["posts"]

    def test_enforcement_matches_registration(self, name):
        pin = PINNED[name]
        build = build_pack(
            PackSpec(name=name, seed=pin["seed"], params=pin["params"])
        )
        assert build.report.enforced is PACKS.get(name).enforce
        if not PACKS.get(name).enforce:
            assert build.report.dropped == 0


DIGEST_SCRIPT = """
import json, sys
from repro.packs import PACKS, PackSpec, build_pack

pinned = json.loads(open(sys.argv[1]).read())
prints = {
    name: build_pack(
        PackSpec(name=name, seed=pin["seed"], params=pin["params"])
    ).report.fingerprint
    for name, pin in sorted(pinned.items())
}
print(json.dumps(prints, sort_keys=True))
"""


def subprocess_fingerprints(hash_seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT, str(FIXTURE)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


class TestCrossProcessDeterminism:
    def test_every_pack_identical_across_hash_seeds(self):
        # two interpreters with different hash salts must reproduce the
        # committed fingerprints exactly, for every registered pack
        for hash_seed in ("0", "1"):
            prints = subprocess_fingerprints(hash_seed)
            for name, pin in PINNED.items():
                assert prints[name] == pin["fingerprint"], (
                    f"pack {name!r} differs under PYTHONHASHSEED={hash_seed}; "
                    "some set/dict iteration feeds an rng-visible order"
                )


class TestBuildTelemetry:
    def test_build_records_counters(self):
        telemetry = obs.Telemetry()
        with obs.activated(telemetry):
            build_pack(PackSpec(name="tiny", seed=0))
        counters = telemetry.snapshot()["counters"]
        assert counters["packs.built"] == 1
        assert counters["packs.generated_resources"] == 25
        assert counters["packs.checked_resources"] == 25
