"""The pack registry: registration, lookup errors, parameter schemas, PackSpec."""

import json

import pytest

from repro.api.registry import Param
from repro.core.errors import SpecError
from repro.packs import PACKS, PackRegistry, PackSpec, register_pack
from repro.packs.registry import DEFAULT_FILTERS, RegisteredPack

EXPECTED_PACKS = {
    "tiny", "small", "paper-default", "universe", "figure1a",
    "capped-vocab", "adverse-selection", "incentive-framing", "budget-seeded",
}


class TestGlobalRegistry:
    def test_all_expected_packs_registered(self):
        assert EXPECTED_PACKS <= set(PACKS.names())

    def test_at_least_eight_packs(self):
        assert len(PACKS) >= 8

    def test_names_sorted(self):
        assert PACKS.names() == sorted(PACKS.names())

    def test_entries_sorted_by_family_then_name(self):
        keys = [(e.family, e.name) for e in PACKS.entries()]
        assert keys == sorted(keys)

    def test_families_cover_new_workloads(self):
        families = set(PACKS.families())
        assert {"vocabulary-cap", "adverse-selection",
                "incentive-framing", "budget-seeding"} <= families

    def test_unknown_name_lists_registered_packs(self):
        with pytest.raises(SpecError, match="unknown scenario pack 'nope'") as exc:
            PACKS.get("nope")
        # the sorted full listing is part of the message
        for name in sorted(EXPECTED_PACKS):
            assert name in str(exc.value)

    def test_contains_and_iter(self):
        assert "tiny" in PACKS
        assert "nope" not in PACKS
        assert list(PACKS) == PACKS.names()

    def test_legacy_packs_report_only(self):
        for name in ("tiny", "small", "paper-default", "universe", "figure1a"):
            assert PACKS.get(name).enforce is False, name

    def test_new_packs_enforce(self):
        for name in ("capped-vocab", "adverse-selection",
                     "incentive-framing", "budget-seeded"):
            assert PACKS.get(name).enforce is True, name

    def test_every_pack_documents_itself(self):
        for entry in PACKS.entries():
            assert entry.doc, f"pack {entry.name} has no doc line"
            assert entry.source, f"pack {entry.name} has no source"


class TestRegistration:
    def test_decorator_registers_with_doc_and_schema(self):
        registry = PackRegistry()

        @register_pack(
            "demo", family="test",
            params={"n": Param(int, 5, "size")},
            registry=registry,
        )
        def demo(seed, *, n):
            """A demo pack.

            Longer text ignored.
            """
            return n

        entry = registry.get("demo")
        assert entry.doc == "A demo pack."
        assert entry.filters == DEFAULT_FILTERS
        assert entry.defaults() == {"n": 5}
        assert entry.build_corpus(0) == 5
        assert entry.build_corpus(0, n=9) == 9

    def test_duplicate_name_rejected(self):
        registry = PackRegistry()
        entry = RegisteredPack(name="dup", family="f", builder=lambda seed: None)
        registry.register(entry)
        with pytest.raises(SpecError, match="already registered"):
            registry.register(entry)

    def test_blank_name_rejected(self):
        with pytest.raises(SpecError, match="non-empty string"):
            PackRegistry().register(
                RegisteredPack(name="", family="f", builder=lambda seed: None)
            )


class TestParamValidation:
    def setup_method(self):
        self.entry = RegisteredPack(
            name="p", family="f", builder=lambda seed, **kw: kw,
            params={"n": Param(int, 10, "size"), "rate": Param(float, 0.5, "rate")},
        )

    def test_defaults_filled(self):
        assert self.entry.validate_params({}) == {"n": 10, "rate": 0.5}

    def test_undeclared_param_listed(self):
        with pytest.raises(SpecError, match="does not declare"):
            self.entry.validate_params({"bogus": 1})

    def test_int_accepted_for_float(self):
        assert self.entry.validate_params({"rate": 1})["rate"] == 1

    def test_bool_rejected_for_int(self):
        with pytest.raises(SpecError):
            self.entry.validate_params({"n": True})

    def test_wrong_type_rejected(self):
        with pytest.raises(SpecError):
            self.entry.validate_params({"n": "ten"})


class TestPackSpec:
    def test_round_trips_through_json(self):
        spec = PackSpec(name="capped-vocab", seed=4, params={"cap": 3})
        again = PackSpec.from_json(spec.to_json())
        assert again == spec
        assert json.loads(spec.to_json())["type"] == "pack"

    def test_unknown_name_raises_at_construction(self):
        with pytest.raises(SpecError, match="registered packs"):
            PackSpec(name="nope")

    def test_undeclared_param_raises_at_construction(self):
        with pytest.raises(SpecError, match="does not declare"):
            PackSpec(name="tiny", params={"n": 5})

    def test_bad_seed_rejected(self):
        with pytest.raises(SpecError, match="seed"):
            PackSpec(name="tiny", seed="zero")

    def test_unknown_key_rejected_by_from_dict(self):
        with pytest.raises(SpecError, match="does not define"):
            PackSpec.from_dict({"type": "pack", "name": "tiny", "bogus": 1})

    def test_resolved_params_fills_defaults(self):
        spec = PackSpec(name="capped-vocab", params={"cap": 3})
        assert spec.resolved_params() == {"n": 120, "cap": 3}
        # the spec itself stores only the overrides
        assert spec.params == {"cap": 3}
