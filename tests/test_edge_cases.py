"""Edge cases across module boundaries."""

import numpy as np
import pytest

from repro.core import (
    Post,
    PostSequence,
    QualityProfile,
    Resource,
    ResourceSet,
    StabilityTracker,
    TaggingDataset,
)
from repro.allocation import (
    FewestPostsFirst,
    HybridFPMU,
    IncentiveRunner,
    MostUnstableFirst,
)
from repro.experiments import DEFAULT_SCALE, PAPER_SCALE, TEST_SCALE


def build_split(spec: list[tuple[int, int]], cutoff: float = 50.0):
    """spec: (initial posts, future posts) per resource."""
    resources = ResourceSet()
    for i, (initial, future) in enumerate(spec):
        timestamps = [float(j + 1) for j in range(initial)]
        timestamps += [cutoff + 1 + j for j in range(future)]
        posts = [Post.of(f"t{i}", f"s{j % 2}", timestamp=t) for j, t in enumerate(timestamps)]
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    return TaggingDataset(resources).split(cutoff)


class TestHybridUnderExhaustion:
    def test_warmup_interrupted_by_exhaustion_switches_to_mu(self):
        # Resource 0 needs warm-up but has NO future posts: the FP phase
        # cannot finish, and FP-MU must fall through to MU instead of
        # spinning.
        split = build_split([(1, 0), (8, 20), (9, 20)])
        runner = IncentiveRunner.replay(split)
        strategy = HybridFPMU(omega=5)
        trace = runner.run(strategy, budget=10)
        assert trace.budget_spent == 10
        assert trace.x[0] == 0
        assert trace.x[1] + trace.x[2] == 10

    def test_all_resources_exhausted_mid_run(self):
        split = build_split([(6, 2), (6, 1)])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(HybridFPMU(omega=5), budget=50)
        assert trace.budget_spent == 3  # everything that exists

    def test_zero_budget_warmup(self):
        split = build_split([(0, 5), (0, 5)])
        runner = IncentiveRunner.replay(split)
        strategy = HybridFPMU(omega=5)
        trace = runner.run(strategy, budget=0)
        assert trace.tasks_delivered == 0
        assert strategy.warmup_budget == 0  # min(B=0, deficits)


class TestDegenerateSplits:
    def test_cutoff_after_everything(self):
        split = build_split([(4, 0), (3, 0)])
        assert split.total_future_posts == 0
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FewestPostsFirst(), budget=5)
        assert trace.tasks_delivered == 0

    def test_cutoff_before_everything(self):
        resources = ResourceSet(
            [Resource("r", PostSequence([Post.of("a", timestamp=5.0)]))]
        )
        split = TaggingDataset(resources).split(1.0)
        assert split.initial_counts.tolist() == [0]
        assert split.total_future_posts == 1

    def test_posts_exactly_at_cutoff_are_initial(self):
        resources = ResourceSet(
            [Resource("r", PostSequence([Post.of("a", timestamp=31.0)]))]
        )
        split = TaggingDataset(resources).split(31.0)
        assert split.initial_counts.tolist() == [1]


class TestMUPendingSemantics:
    def test_pending_resource_repeated_until_delivery(self):
        # choose() twice without update must return the same index (the
        # strategy keeps the offer open).
        split = build_split([(8, 5), (8, 5)])
        strategy = MostUnstableFirst(omega=5)
        from repro.allocation.base import AllocationContext
        from repro.allocation.oracle import ReplayTaggerSource

        context = AllocationContext(
            n=split.n,
            initial_counts=split.initial_counts.copy(),
            initial_posts=[split.initial_posts(i) for i in range(split.n)],
            source=ReplayTaggerSource(split),
            budget=5,
        )
        strategy.initialize(context)
        first = strategy.choose()
        second = strategy.choose()
        assert first == second


class TestQualityProfileEdges:
    def test_stable_rfd_with_unposted_tags(self, paper_r1_posts):
        # φ̂ mentions a tag the sequence never contains: the dot simply
        # never picks it up, the reference norm still counts it.
        reference = {"google": 0.5, "never-posted": 0.5}
        profile = QualityProfile(paper_r1_posts, reference)
        assert 0.0 < profile.quality(3) < 1.0

    def test_single_post_sequence(self):
        posts = [Post.of("only")]
        profile = QualityProfile(posts, {"only": 1.0})
        assert profile.quality(0) == 0.0
        assert profile.quality(1) == pytest.approx(1.0)


class TestTrackerEdges:
    def test_tracker_without_tau_never_flags_stable(self):
        tracker = StabilityTracker(omega=3)  # tau=None
        for _ in range(20):
            tracker.add_post({"a"})
        assert not tracker.is_stable
        assert tracker.stable_point is None

    def test_tracker_omega_two_window(self):
        # omega=2: the MA is just the latest adjacent similarity.
        tracker = StabilityTracker(omega=2)
        tracker.add_post({"a"})
        tracker.add_post({"a"})
        similarity = tracker.add_post({"b"})
        assert tracker.ma_score == pytest.approx(similarity)


class TestScaleConfigs:
    @pytest.mark.parametrize("scale", [TEST_SCALE, DEFAULT_SCALE, PAPER_SCALE])
    def test_grids_are_coherent(self, scale):
        assert scale.max_budget == max(scale.budgets)
        assert max(scale.dp_budgets) <= scale.max_budget
        assert all(b1 <= b2 for b1, b2 in zip(scale.budgets, scale.budgets[1:]))
        assert all(n <= scale.n_resources for n in scale.resource_counts)
        assert scale.omega >= 2

    def test_paper_scale_matches_paper_numbers(self):
        assert PAPER_SCALE.n_resources == 5000
        assert PAPER_SCALE.max_budget == 10000
        assert PAPER_SCALE.omega == 5


class TestDeterministicRebuilds:
    def test_ground_truth_rebuild_is_identical(self, tiny_corpus):
        from repro.experiments.evaluation import GroundTruth

        first = GroundTruth.build(tiny_corpus.dataset, omega=5, tau=0.99)
        second = GroundTruth.build(tiny_corpus.dataset, omega=5, tau=0.99)
        assert np.array_equal(first.stable_points, second.stable_points)
        for a, b in zip(first.stable_rfds, second.stable_rfds):
            assert a == b

    def test_case_study_scenario_deterministic(self):
        from repro.simulate import case_study_scenario

        a = case_study_scenario(seed=4)
        b = case_study_scenario(seed=4)
        for ra, rb in zip(a.corpus.dataset.resources, b.corpus.dataset.resources):
            assert ra.sequence == rb.sequence
