"""Pooled-resource lifecycle: ``api.run`` must never leak executor pools.

Every runnable spec that builds a sharded stability bank owns a shard
executor (threads or worker processes).  These tests interpose a spy on
:func:`~repro.engine.executor.make_executor` and assert that every pool
created during a run is closed again — on the success path *and* when
the run raises mid-flight.
"""

import pytest

import repro.api as api
from repro.api import AllocateSpec, CampaignSpec, CorpusSpec, ExecutionSpec, IngestSpec
from repro.core.errors import ReproError


@pytest.fixture()
def spawned_pools(monkeypatch):
    """Spy on every executor the run builds; record close() calls."""
    import repro.engine
    import repro.engine.executor as executor_mod
    import repro.engine.stream as stream_mod

    original = executor_mod.make_executor
    pools = []

    def spying(kind, workers=0):
        pool = original(kind, workers)
        pool.spy_closed = False
        original_close = pool.close

        def close():
            pool.spy_closed = True
            original_close()

        pool.close = close
        pools.append(pool)
        return pool

    # every import site resolves through one of these three bindings
    monkeypatch.setattr(executor_mod, "make_executor", spying)
    monkeypatch.setattr(stream_mod, "make_executor", spying)
    monkeypatch.setattr(repro.engine, "make_executor", spying)
    return pools


def _assert_all_closed(pools):
    assert pools, "the run never built a pool — the spy saw nothing"
    leaked = [p for p in pools if not p.spy_closed]
    assert not leaked, f"leaked executor pools: {leaked}"


SHARDED_EXEC = ExecutionSpec(backend="thread", shards=3, workers=2)


class TestAllocateLifecycle:
    def test_success_path_closes_monitor_pool(self, spawned_pools):
        spec = AllocateSpec(
            corpus=CorpusSpec(kind="paper", resources=10, seed=3),
            budget=40,
            stability="sharded",
            execution=SHARDED_EXEC,
        )
        api.run(spec)
        _assert_all_closed(spawned_pools)

    def test_exception_path_closes_monitor_pool(self, spawned_pools, monkeypatch):
        from repro.allocation import IncentiveRunner

        def boom(self, *args, **kwargs):
            raise ReproError("runner exploded mid-allocation")

        monkeypatch.setattr(IncentiveRunner, "run", boom)
        spec = AllocateSpec(
            corpus=CorpusSpec(kind="paper", resources=10, seed=3),
            budget=40,
            stability="sharded",
            execution=SHARDED_EXEC,
        )
        with pytest.raises(ReproError, match="mid-allocation"):
            api.run(spec)
        _assert_all_closed(spawned_pools)


class TestCampaignLifecycle:
    SPEC = CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=10, seed=3),
        budget=60,
        workers=4,
        batch_size=10,
        max_epochs=6,
        stability_backend="sharded",
        execution=SHARDED_EXEC,
    )

    def test_success_path_closes_monitor_pool(self, spawned_pools):
        api.run(self.SPEC)
        _assert_all_closed(spawned_pools)

    def test_run_exception_closes_monitor_pool(self, spawned_pools, monkeypatch):
        from repro.service import IncentiveCampaign

        def boom(self, *args, **kwargs):
            raise ReproError("campaign exploded mid-run")

        monkeypatch.setattr(IncentiveCampaign, "run", boom)
        with pytest.raises(ReproError, match="mid-run"):
            api.run(self.SPEC)
        _assert_all_closed(spawned_pools)

    def test_begin_exception_closes_monitor_pool(self, spawned_pools, monkeypatch):
        # a monitor that dies inside begin(): the campaign constructor
        # must release the already-built pool before re-raising
        from repro.allocation.monitor import ShardedBankStabilityMonitor

        def boom(self, *args, **kwargs):
            raise ReproError("monitor begin exploded")

        monkeypatch.setattr(ShardedBankStabilityMonitor, "begin", boom)
        with pytest.raises(ReproError, match="begin exploded"):
            api.run(self.SPEC)
        _assert_all_closed(spawned_pools)

    def test_campaign_is_a_context_manager(self, spawned_pools):
        from repro.service import IncentiveCampaign

        corpus = api.materialize(self.SPEC.corpus)
        with IncentiveCampaign.from_spec(self.SPEC, corpus) as campaign:
            campaign.run(max_epochs=2)
        _assert_all_closed(spawned_pools)


class TestIngestLifecycle:
    def test_success_path_closes_engine_pool(self, spawned_pools):
        spec = IngestSpec(
            resources=8,
            seed=5,
            max_events=400,
            execution=SHARDED_EXEC,
        )
        api.run(spec)
        _assert_all_closed(spawned_pools)

    def test_process_backend_success_closes_engine_pool(self, spawned_pools):
        spec = IngestSpec(
            resources=8,
            seed=5,
            max_events=400,
            execution=ExecutionSpec(backend="process", shards=2, workers=2),
        )
        api.run(spec)
        _assert_all_closed(spawned_pools)

    def test_exception_path_closes_engine_pool(self, spawned_pools, tmp_path):
        spec = IngestSpec(
            dataset=str(tmp_path / "does-not-exist.jsonl"),
            execution=SHARDED_EXEC,
        )
        with pytest.raises(Exception):
            api.run(spec)
        _assert_all_closed(spawned_pools)

    def test_resume_closes_the_fresh_pool(self, spawned_pools, tmp_path):
        from repro.engine import IngestEngine, save_checkpoint
        from repro.simulate import interleaved_event_stream

        engine = IngestEngine.create(n_shards=2, omega=4, tau=0.9)
        try:
            engine.feed(
                interleaved_event_stream(n_resources=8, seed=5, max_events=200)
            )
            target = save_checkpoint(engine.bank, tmp_path / "ck")
        finally:
            engine.bank.executor.close()

        spec = IngestSpec(
            resume=str(target),
            resources=8,
            seed=5,
            max_events=400,
            execution=SHARDED_EXEC,
        )
        api.run(spec)
        _assert_all_closed(spawned_pools)
