"""Spec round-tripping and validation (`repro.api.specs`)."""

import pytest

from repro.core.errors import SpecError
from repro.api import (
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    ExecutionSpec,
    IngestSpec,
    TelemetrySpec,
    spec_from_dict,
    spec_from_json,
)


ALL_SPECS = [
    CorpusSpec(),
    CorpusSpec(kind="universe", resources=2000, seed=11),
    CorpusSpec(kind="jsonl", path="corpus.jsonl", cutoff=31.0),
    AllocateSpec(),
    AllocateSpec(
        corpus=CorpusSpec(kind="small", resources=60, seed=3),
        strategy="MU",
        params={"omega": 7},
        budget=900,
        batch_size=64,
        mode="generative",
        stability="engine",
        seed=42,
    ),
    CampaignSpec(),
    CampaignSpec(
        corpus=CorpusSpec(resources=30, seed=5),
        strategy="FP",
        budget=300,
        workers=6,
        stop_tau=None,
        stability_backend="engine",
        batch_size=10,
        max_epochs=40,
    ),
    CampaignSpec(stability_backend="sharded"),
    CampaignSpec(
        stability_backend="sharded",
        execution=ExecutionSpec(backend="process", shards=3, workers=2),
    ),
    IngestSpec(),
    IngestSpec(
        dataset="in.jsonl",
        execution=ExecutionSpec(shards=4),
        checkpoint="/tmp/ck",
        max_events=10_000,
    ),
    IngestSpec(
        execution=ExecutionSpec(
            backend="process", shards=8, workers=4, min_parallel_events=0
        )
    ),
    ExecutionSpec(),
    ExecutionSpec(backend="thread", shards=2, workers=3, min_parallel_events=128),
    TelemetrySpec(),
    TelemetrySpec(enabled=False),
    TelemetrySpec(trace_path="trace.jsonl", snapshot_path="snapshot.json"),
    AllocateSpec(telemetry=TelemetrySpec(trace_path="t.jsonl")),
    CampaignSpec(telemetry=TelemetrySpec(enabled=False)),
    IngestSpec(telemetry=TelemetrySpec(snapshot_path="s.json")),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__ + "/" + str(id(s)))
    def test_dict_round_trip_is_lossless(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__ + "/" + str(id(s)))
    def test_json_round_trip_is_lossless(self, spec):
        assert type(spec).from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__ + "/" + str(id(s)))
    def test_tagged_dispatch_round_trip(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec
        assert spec_from_json(spec.to_json()) == spec

    def test_nested_corpus_rebuilds_as_spec(self):
        payload = AllocateSpec(corpus=CorpusSpec(kind="tiny")).to_dict()
        rebuilt = AllocateSpec.from_dict(payload)
        assert isinstance(rebuilt.corpus, CorpusSpec)
        assert rebuilt.corpus.kind == "tiny"

    def test_nested_telemetry_rebuilds_as_spec(self):
        payload = IngestSpec(telemetry=TelemetrySpec(trace_path="t.jsonl")).to_dict()
        rebuilt = IngestSpec.from_dict(payload)
        assert isinstance(rebuilt.telemetry, TelemetrySpec)
        assert rebuilt.telemetry.trace_path == "t.jsonl"

    def test_replace_revalidates(self):
        spec = AllocateSpec()
        assert spec.replace(budget=7).budget == 7
        with pytest.raises(SpecError):
            spec.replace(budget=-1)


class TestRejection:
    def test_unknown_key_rejected(self):
        payload = AllocateSpec().to_dict()
        payload["budgett"] = 5
        with pytest.raises(SpecError, match="budgett"):
            AllocateSpec.from_dict(payload)

    def test_unknown_nested_key_rejected(self):
        payload = AllocateSpec().to_dict()
        payload["corpus"]["flavour"] = "mint"
        with pytest.raises(SpecError, match="flavour"):
            AllocateSpec.from_dict(payload)

    def test_wrong_type_tag_rejected(self):
        payload = AllocateSpec().to_dict()
        payload["type"] = "campaign"
        with pytest.raises(SpecError, match="type tag"):
            AllocateSpec.from_dict(payload)

    def test_unknown_type_tag_rejected_by_dispatcher(self):
        with pytest.raises(SpecError, match="unknown spec type"):
            spec_from_dict({"type": "nonsense"})

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            spec_from_json("{not json")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "delicious"},
            {"resources": 0},
            {"resources": 2.5},
            {"seed": "seven"},
            {"kind": "jsonl"},                       # missing path
            {"path": "x.jsonl"},                     # path without jsonl kind
            {"cutoff": "later"},
        ],
    )
    def test_bad_corpus_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            CorpusSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": -1},
            {"budget": True},
            {"batch_size": 0},
            {"strategy": ""},
            {"params": [("omega", 5)]},
            {"mode": "telepathic"},
            {"stability": "abacus"},
            {"corpus": "paper"},
            {"execution": "serial"},
            {"execution": {"backend": "thread"}},
        ],
    )
    def test_bad_allocate_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            AllocateSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"omega": 1},
            {"stop_tau": 1.5},
            {"stability_backend": "quantum"},
            {"execution": 4},
            {"max_epochs": 0},
            {"reward_per_task": 0},
            {"corpus": CorpusSpec(kind="jsonl", path="x.jsonl")},  # model-less
        ],
    )
    def test_bad_campaign_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            CampaignSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"execution": "thread"},
            {"batch_size": 0},
            {"omega": 1},
            {"tau": -0.1},
            {"tau": 1.1},
            {"max_events": -5},
            {"dataset": 42},
        ],
    )
    def test_bad_ingest_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            IngestSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enabled": "yes"},
            {"enabled": 1},
            {"trace_path": 42},
            {"snapshot_path": False},
        ],
    )
    def test_bad_telemetry_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            TelemetrySpec(**kwargs)

    @pytest.mark.parametrize("spec_cls", [AllocateSpec, CampaignSpec, IngestSpec])
    def test_telemetry_must_be_a_spec(self, spec_cls):
        with pytest.raises(SpecError):
            spec_cls(telemetry={"enabled": True})

    def test_from_dict_requires_a_dict(self):
        with pytest.raises(SpecError):
            AllocateSpec.from_dict(["type", "allocate"])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "fork"},
            {"backend": ""},
            {"shards": 0},
            {"shards": 2.5},
            {"workers": -1},
            {"workers": True},
            {"min_parallel_events": -1},
            {"min_parallel_events": 1.5},
        ],
    )
    def test_bad_execution_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            ExecutionSpec(**kwargs)


class TestExecutionAliases:
    """The deprecated flat executor keys still load (with a warning)."""

    def test_campaign_old_keys_fold_into_execution(self):
        payload = CampaignSpec(stability_backend="sharded").to_dict()
        del payload["execution"]
        payload["stability_shards"] = 6
        payload["stability_executor"] = "thread"
        payload["stability_workers"] = 3
        with pytest.warns(DeprecationWarning, match="stability_shards"):
            spec = CampaignSpec.from_dict(payload)
        assert spec.execution == ExecutionSpec(backend="thread", shards=6, workers=3)
        # the old names remain readable as properties
        assert spec.stability_shards == 6
        assert spec.stability_executor == "thread"
        assert spec.stability_workers == 3

    def test_allocate_old_keys_fold_into_execution(self):
        payload = AllocateSpec(stability="sharded").to_dict()
        del payload["execution"]
        payload["stability_shards"] = 2
        with pytest.warns(DeprecationWarning):
            spec = AllocateSpec.from_dict(payload)
        assert spec.execution.shards == 2
        assert spec.execution.backend == "serial"  # untouched default

    def test_ingest_old_keys_fold_into_execution(self):
        payload = IngestSpec().to_dict()
        del payload["execution"]
        payload["shards"] = 4
        payload["executor"] = "thread"
        payload["workers"] = 2
        with pytest.warns(DeprecationWarning, match="executor"):
            spec = IngestSpec.from_dict(payload)
        assert spec.execution == ExecutionSpec(backend="thread", shards=4, workers=2)
        assert spec.shards == 4
        assert spec.executor == "thread"
        assert spec.workers == 2

    def test_ingest_execution_defaults_to_one_shard(self):
        # IngestSpec's nested default: a bare payload means one shard
        payload = IngestSpec().to_dict()
        del payload["execution"]
        assert IngestSpec.from_dict(payload).execution.shards == 1
        # and a partial execution block inherits that default too
        payload["execution"] = {"backend": "thread", "workers": 2}
        assert IngestSpec.from_dict(payload).execution.shards == 1

    def test_old_key_conflicting_with_execution_block_rejected(self):
        payload = CampaignSpec().to_dict()
        payload["execution"] = {"backend": "serial", "shards": 4, "workers": 0}
        payload["stability_shards"] = 8
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SpecError, match="conflicts"):
                CampaignSpec.from_dict(payload)

    def test_old_key_agreeing_with_execution_block_allowed(self):
        payload = CampaignSpec().to_dict()
        payload["execution"] = {"backend": "serial", "shards": 4, "workers": 0}
        payload["stability_shards"] = 4
        with pytest.warns(DeprecationWarning):
            spec = CampaignSpec.from_dict(payload)
        assert spec.execution.shards == 4

    @pytest.mark.parametrize(
        "key, value",
        [
            ("stability_shards", 0),
            ("stability_executor", "fork"),
            ("stability_workers", -1),
            ("stability_workers", 2.5),
        ],
    )
    def test_bad_alias_values_still_rejected(self, key, value):
        payload = CampaignSpec().to_dict()
        del payload["execution"]
        payload[key] = value
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SpecError):
                CampaignSpec.from_dict(payload)

    def test_campaign_workers_still_means_crowd_size(self):
        # CampaignSpec.workers is the simulated crowd, not the pool: it
        # must not fold into the execution block
        payload = CampaignSpec(workers=25).to_dict()
        spec = CampaignSpec.from_dict(payload)
        assert spec.workers == 25
        assert spec.execution.workers == 0
