"""The `repro.api.run` dispatcher and `RunResult` (end-to-end, small corpora)."""

import json

import pytest

from repro.core.errors import SpecError
from repro.api import (
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    ExecutionSpec,
    IngestSpec,
    RunResult,
    TelemetrySpec,
    materialize,
    run,
)


SMALL = CorpusSpec(kind="paper", resources=15, seed=11)


class TestMaterialize:
    def test_paper_corpus_has_models_and_cutoff(self):
        corpus = materialize(SMALL)
        assert corpus.n == 15
        assert corpus.models is not None and len(corpus.models) == 15
        assert corpus.cutoff is not None

    def test_jsonl_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "c.jsonl"
        materialize(CorpusSpec(kind="tiny", seed=2)).dataset.to_jsonl(path)
        corpus = materialize(CorpusSpec(kind="jsonl", path=str(path), cutoff=31.0))
        assert corpus.n == 25
        assert corpus.models is None
        with pytest.raises(SpecError):
            corpus.require_models()

    def test_missing_jsonl_rejected(self):
        with pytest.raises(SpecError, match="does not exist"):
            materialize(CorpusSpec(kind="jsonl", path="/nonexistent/x.jsonl"))

    def test_jsonl_without_cutoff_cannot_split(self, tmp_path):
        path = tmp_path / "c.jsonl"
        materialize(CorpusSpec(kind="tiny", seed=2)).dataset.to_jsonl(path)
        corpus = materialize(CorpusSpec(kind="jsonl", path=str(path)))
        with pytest.raises(SpecError, match="cutoff"):
            corpus.require_cutoff()


class TestRunAllocate:
    def test_replay_allocation(self):
        result = run(AllocateSpec(corpus=SMALL, strategy="FP", budget=60))
        assert result.kind == "allocate"
        assert result.metrics["delivered"] <= 60
        assert result.metrics["quality_after"] >= result.metrics["quality_before"]
        assert result.summary.startswith("FP: delivered")
        assert sum(result.details["x"]) == result.metrics["delivered"]
        assert result.spec["strategy"] == "FP"

    def test_batched_matches_scalar_through_api(self):
        scalar = run(AllocateSpec(corpus=SMALL, strategy="FP", budget=80, batch_size=1))
        batched = run(AllocateSpec(corpus=SMALL, strategy="FP", budget=80, batch_size=64))
        assert scalar.details["order"] == batched.details["order"]

    def test_generative_mode_with_stability_monitor(self):
        result = run(
            AllocateSpec(
                corpus=SMALL,
                strategy="MU",
                params={"omega": 5},
                budget=120,
                mode="generative",
                stability="engine",
                batch_size=32,
                seed=3,
            )
        )
        assert result.metrics["delivered"] == 120
        assert "observed_stable" in result.metrics
        assert "resources observed stable" in result.summary

    def test_stability_backends_agree_on_trace(self):
        spec = AllocateSpec(corpus=SMALL, strategy="FP", budget=60)
        tracker = run(spec.replace(stability="tracker"))
        engine = run(spec.replace(stability="engine", batch_size=16))
        assert tracker.details["order"] == engine.details["order"]
        assert tracker.metrics["observed_stable"] == engine.metrics["observed_stable"]

    def test_monitor_follows_strategy_omega_and_spec_tau(self):
        spec = AllocateSpec(
            corpus=SMALL, strategy="MU", params={"omega": 9},
            budget=60, stability="tracker",
        )
        strict = run(spec.replace(stability_tau=0.9999))
        lax = run(spec.replace(stability_tau=0.5))
        assert lax.metrics["observed_stable"] >= strict.metrics["observed_stable"]
        assert lax.metrics["observed_stable"] > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SpecError, match="unknown strategy"):
            run(AllocateSpec(corpus=SMALL, strategy="ZZ"))

    def test_undeclared_param_rejected(self):
        with pytest.raises(SpecError, match="does not declare"):
            run(AllocateSpec(corpus=SMALL, strategy="FP", params={"omega": 3}))


class TestRunCampaign:
    def test_campaign_runs_and_reports(self):
        result = run(
            CampaignSpec(
                corpus=CorpusSpec(kind="paper", resources=10, seed=7),
                strategy="FP",
                budget=50,
                workers=4,
            )
        )
        assert result.kind == "campaign"
        assert result.summary.startswith("campaign:")
        assert result.metrics["spent"] <= 50
        assert len(result.details["final_counts"]) == 10
        assert result.metrics["epochs"] == len(result.details["epochs"])

    def test_campaign_engine_backend(self):
        result = run(
            CampaignSpec(
                corpus=CorpusSpec(kind="paper", resources=8, seed=7),
                budget=40,
                workers=4,
                stability_backend="engine",
            )
        )
        assert result.metrics["completed"] >= 0

    def test_campaign_sharded_matches_engine(self):
        spec = CampaignSpec(
            corpus=CorpusSpec(kind="paper", resources=12, seed=7),
            budget=80,
            workers=4,
            stability_backend="engine",
        )
        engine = run(spec)
        sharded = run(spec.replace(stability_backend="sharded"))
        # sharding is a memory-layout choice: identical campaign traces
        assert sharded.details["epochs"] == engine.details["epochs"]
        assert sharded.details["final_counts"] == engine.details["final_counts"]
        assert sharded.details["stopped_resources"] == engine.details["stopped_resources"]


class TestRunIngest:
    def test_synthetic_ingest(self):
        result = run(
            IngestSpec(resources=12, max_events=400, execution=ExecutionSpec(shards=2))
        )
        assert result.kind == "ingest"
        assert result.metrics["events"] == 400
        assert result.metrics["resources"] == 12
        assert "ingested 400 events" in result.summary

    def test_process_backend_matches_serial(self):
        serial = run(IngestSpec(resources=12, max_events=400))
        process = run(
            IngestSpec(
                resources=12,
                max_events=400,
                execution=ExecutionSpec(backend="process", shards=3, workers=2),
            )
        )
        assert process.metrics["events"] == serial.metrics["events"]
        assert process.metrics["stable"] == serial.metrics["stable"]
        assert process.details["stable_points"] == serial.details["stable_points"]

    def test_legacy_flat_spec_json_still_runs(self):
        # a pre-ExecutionSpec payload (flat shards/executor/workers keys)
        # must load through the deprecation shim and produce the same run
        from repro.api import spec_from_dict

        payload = {
            "type": "ingest",
            "resources": 12,
            "max_events": 400,
            "shards": 2,
            "executor": "thread",
            "workers": 2,
        }
        with pytest.warns(DeprecationWarning):
            spec = spec_from_dict(payload)
        legacy = run(spec)
        modern = run(
            IngestSpec(
                resources=12,
                max_events=400,
                execution=ExecutionSpec(backend="thread", shards=2, workers=2),
            )
        )
        assert legacy.details["stable_points"] == modern.details["stable_points"]
        assert legacy.metrics["events"] == modern.metrics["events"]
        assert legacy.metrics["stable"] == modern.metrics["stable"]

    def test_ingest_checkpoint_and_resume(self, tmp_path):
        checkpoint = tmp_path / "ck"
        first = run(
            IngestSpec(resources=8, max_events=200, checkpoint=str(checkpoint))
        )
        assert first.details["checkpoint"] is not None
        resumed = run(
            IngestSpec(resources=8, max_events=300, resume=str(checkpoint))
        )
        assert resumed.metrics["resumed_after"] == 200
        assert resumed.metrics["events"] == 100
        assert resumed.metrics["posts"] == 300


class TestRunResult:
    def test_results_json_round_trip(self):
        result = run(AllocateSpec(corpus=SMALL, strategy="RR", budget=30))
        rebuilt = RunResult.from_json(result.to_json())
        assert rebuilt == result
        json.loads(result.to_json())  # genuinely serializable

    def test_result_embeds_reproducible_spec(self):
        from repro.api import spec_from_dict

        result = run(AllocateSpec(corpus=SMALL, strategy="RR", budget=30))
        again = run(spec_from_dict(result.spec))
        assert again.details["order"] == result.details["order"]

    def test_corpus_spec_is_not_runnable(self):
        with pytest.raises(SpecError, match="not runnable"):
            run(SMALL)

    def test_non_scalar_metric_rejected(self):
        with pytest.raises(SpecError, match="metric"):
            RunResult(kind="x", spec={}, metrics={"bad": [1]})

    def test_unknown_result_key_rejected(self):
        with pytest.raises(SpecError):
            RunResult.from_dict({"kind": "x", "spec": {}, "shenanigans": 1})

    def test_non_serializable_telemetry_rejected(self):
        with pytest.raises(SpecError, match="telemetry"):
            RunResult(kind="x", spec={}, telemetry={"bad": object()})


class TestRunTelemetry:
    def test_result_telemetry_empty_by_default(self):
        result = run(IngestSpec(resources=8, max_events=100))
        assert result.telemetry == {}

    def test_spec_telemetry_embeds_snapshot(self):
        result = run(
            IngestSpec(resources=8, max_events=200, telemetry=TelemetrySpec())
        )
        assert result.telemetry["counters"]["engine.events"] == 200
        assert "api.run" in result.telemetry["histograms"]
        json.loads(result.to_json())  # snapshot survives serialization
        rebuilt = RunResult.from_json(result.to_json())
        assert rebuilt.telemetry == result.telemetry

    def test_disabled_telemetry_spec_records_nothing(self):
        result = run(
            IngestSpec(
                resources=8, max_events=100, telemetry=TelemetrySpec(enabled=False)
            )
        )
        assert result.telemetry == {}

    def test_trace_and_snapshot_sinks(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        snapshot = tmp_path / "snapshot.json"
        result = run(
            IngestSpec(
                resources=8,
                max_events=200,
                telemetry=TelemetrySpec(
                    trace_path=str(trace), snapshot_path=str(snapshot)
                ),
            )
        )
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(event["name"] == "api.run" for event in lines)
        assert json.loads(snapshot.read_text()) == result.telemetry

    def test_telemetry_does_not_change_results(self):
        spec = AllocateSpec(corpus=SMALL, strategy="RR", budget=30)
        plain = run(spec)
        observed = run(spec.replace(telemetry=TelemetrySpec()))
        assert observed.details["order"] == plain.details["order"]
        assert observed.metrics == plain.metrics
        assert observed.telemetry["counters"]["alloc.choose_calls"] > 0

    def test_ambient_telemetry_is_embedded(self):
        import repro.obs as obs

        telemetry = obs.Telemetry()
        try:
            with obs.activated(telemetry):
                result = run(IngestSpec(resources=8, max_events=100))
            assert result.telemetry["counters"]["engine.events"] == 100
        finally:
            telemetry.close()

    def test_campaign_telemetry_counters(self):
        result = run(
            CampaignSpec(
                corpus=SMALL, budget=60, workers=5, telemetry=TelemetrySpec()
            )
        )
        counters = result.telemetry["counters"]
        assert counters["campaign.epochs"] == result.metrics["epochs"]
        assert counters["campaign.completed"] == result.metrics["completed"]
        assert counters["ledger.units_paid"] == result.metrics["spent"]
