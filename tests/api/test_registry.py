"""Strategy registry behaviour (`repro.api.registry`)."""

import pytest

from repro.core.errors import SpecError
from repro.allocation import (
    FewestPostsFirst,
    HybridFPMU,
    MostUnstableFirst,
    STRATEGY_REGISTRY,
)
from repro.api import Param, STRATEGIES, StrategyRegistry, register_strategy


class TestGlobalRegistry:
    def test_all_paper_strategies_registered(self):
        assert {"FC", "RR", "FP", "MU", "FP-MU"} <= set(STRATEGIES.names())

    def test_extension_strategies_registered(self):
        assert {"FP-cost", "FP-stop", "MU-pref"} <= set(STRATEGIES.names())

    def test_legacy_class_map_matches_registry(self):
        assert STRATEGY_REGISTRY == STRATEGIES.classes()

    def test_create_with_default_params(self):
        strategy = STRATEGIES.create("MU")
        assert isinstance(strategy, MostUnstableFirst)
        assert strategy.omega == 5

    def test_create_with_override(self):
        assert STRATEGIES.create("FP-MU", omega=9).omega == 9

    def test_create_parameter_free_strategy(self):
        assert isinstance(STRATEGIES.create("FP"), FewestPostsFirst)

    def test_unknown_strategy_lists_known_names(self):
        with pytest.raises(SpecError, match="FP-MU"):
            STRATEGIES.create("FPP")

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(SpecError, match="does not declare"):
            STRATEGIES.create("FP", omega=5)

    def test_wrong_parameter_type_rejected(self):
        with pytest.raises(SpecError, match="expects int"):
            STRATEGIES.create("MU", omega="five")
        with pytest.raises(SpecError, match="expects int"):
            STRATEGIES.create("MU", omega=True)

    def test_float_parameter_accepts_int(self):
        strategy = STRATEGIES.create("FP-stop", tau=1)
        assert strategy.tau == 1.0 and isinstance(strategy.tau, float)

    def test_filter_params_keeps_only_declared(self):
        assert STRATEGIES.filter_params("MU", omega=7, tau=0.5) == {"omega": 7}
        assert STRATEGIES.filter_params("FP", omega=7) == {}

    def test_contains_and_len(self):
        assert "FP" in STRATEGIES
        assert "nope" not in STRATEGIES
        assert len(STRATEGIES) >= 8

    def test_entry_exposes_schema(self):
        entry = STRATEGIES.get("MU")
        assert entry.cls is MostUnstableFirst
        assert entry.params["omega"].type is int
        assert entry.params["omega"].default == 5

    def test_hybrid_registered_with_omega(self):
        assert STRATEGIES.get("FP-MU").cls is HybridFPMU
        assert "omega" in STRATEGIES.get("FP-MU").params


class TestIsolatedRegistry:
    def test_duplicate_name_rejected(self):
        registry = StrategyRegistry()

        @register_strategy("X", registry=registry)
        class One:
            pass

        with pytest.raises(SpecError, match="already registered"):

            @register_strategy("X", registry=registry)
            class Two:
                pass

        assert registry.get("X").cls is One

    def test_blank_name_rejected(self):
        registry = StrategyRegistry()
        with pytest.raises(SpecError):
            registry.register("", object)

    def test_explicit_none_rejected_for_required_param(self):
        registry = StrategyRegistry()

        @register_strategy("Y", params={"weight": Param(float, 1.0)}, registry=registry)
        class Weighted:
            def __init__(self, weight):
                self.weight = weight

        with pytest.raises(SpecError, match="must not be None"):
            registry.create("Y", weight=None)
        assert registry.create("Y").weight == 1.0
