"""Tests for the Section VI future-work extensions."""

import numpy as np
import pytest

from repro.core import AllocationError, BudgetError, Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import (
    CostAwareFewestPosts,
    IncentiveRunner,
    PreferenceAwareMostUnstable,
    brute_force_optimal,
    solve_dp,
    solve_greedy,
    solve_weighted_dp,
)


def build_split(initial: list[int], future: int = 30, cutoff: float = 100.0):
    resources = ResourceSet()
    for i, count in enumerate(initial):
        timestamps = [float(j + 1) for j in range(count)]
        timestamps += [cutoff + 1 + j for j in range(future)]
        posts = [Post.of(f"t{i}", f"u{j % 3}", timestamp=t) for j, t in enumerate(timestamps)]
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    return TaggingDataset(resources).split(cutoff)


class TestWeightedDP:
    def test_reduces_to_unit_cost_dp(self):
        rng = np.random.default_rng(3)
        gains = [rng.random(4) for _ in range(3)]
        budget = 5
        weighted = solve_weighted_dp(gains, [1, 1, 1], budget)
        # Unit-cost weighted DP relaxes Σx = B to Σx <= B, so it can only
        # do better than the exact-spend optimum.
        exact = solve_dp(gains, budget)
        assert weighted.value >= exact.value - 1e-12

    def test_prefers_cheap_equivalent_gains(self):
        gains = [np.array([0.0, 1.0]), np.array([0.0, 1.0])]
        result = solve_weighted_dp(gains, [5, 1], budget=5)
        # Affording both is impossible; the cheap one plus leftover wins
        # over the expensive one alone only if value ties break cheap —
        # here taking r1 (cost 1) leaves budget for nothing else, while
        # r0 (cost 5) uses it all: both give 1.0, but cheap + cheap is
        # impossible (cap 1).  Value must be exactly 1.0 either way.
        assert result.value == pytest.approx(1.0)
        assert (result.x * np.array([5, 1])).sum() <= 5

    def test_respects_budget_inequality(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            n = int(rng.integers(1, 4))
            gains = [rng.random(int(rng.integers(1, 5))) for _ in range(n)]
            costs = rng.integers(1, 4, size=n)
            budget = int(rng.integers(0, 10))
            result = solve_weighted_dp(gains, costs, budget)
            assert (result.x * costs).sum() <= budget

    def test_matches_enumeration_on_small_instances(self):
        rng = np.random.default_rng(17)
        for _ in range(15):
            gains = [rng.random(3) for _ in range(3)]
            costs = rng.integers(1, 3, size=3)
            budget = int(rng.integers(0, 7))
            result = solve_weighted_dp(gains, costs, budget)
            best = -np.inf
            for x0 in range(3):
                for x1 in range(3):
                    for x2 in range(3):
                        spend = x0 * costs[0] + x1 * costs[1] + x2 * costs[2]
                        if spend <= budget:
                            value = gains[0][x0] + gains[1][x1] + gains[2][x2]
                            best = max(best, value)
            assert result.value == pytest.approx(best, abs=1e-12)

    def test_validation(self):
        with pytest.raises(BudgetError):
            solve_weighted_dp([np.array([0.1])], [1], -1)
        with pytest.raises(AllocationError):
            solve_weighted_dp([np.array([0.1])], [1, 2], 3)
        with pytest.raises(AllocationError):
            solve_weighted_dp([np.array([0.1])], [0], 3)


class TestCostAwareFP:
    def test_breaks_count_ties_toward_cheap(self):
        split = build_split([3, 3])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(
            CostAwareFewestPosts(), budget=2, costs=np.array([2, 1])
        )
        assert trace.order[0] == 1  # same count, cheaper task first

    def test_still_fewest_posts_first(self):
        split = build_split([9, 2])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(
            CostAwareFewestPosts(), budget=3, costs=np.array([1, 3])
        )
        assert trace.order[0] == 1  # fewest posts wins over cost


class TestPreferenceAwareMU:
    def test_acceptance_estimates_update_on_refusal(self, rng):
        split = build_split([10, 10])
        strategy = PreferenceAwareMostUnstable(omega=5)
        runner = IncentiveRunner.replay(split)
        trace = runner.run(
            strategy,
            budget=10,
            acceptance=np.array([0.05, 0.95]),
            rng=rng,
        )
        assert trace.budget_spent == 10
        # The frequently-refusing resource ends with the lower estimate.
        assert strategy.acceptance_estimate(0) < strategy.acceptance_estimate(1)

    def test_shifts_work_toward_accepting_resources(self, rng):
        split = build_split([10, 10], future=60)
        strategy = PreferenceAwareMostUnstable(omega=5)
        runner = IncentiveRunner.replay(split)
        trace = runner.run(
            strategy,
            budget=30,
            acceptance=np.array([0.02, 1.0]),
            rng=rng,
        )
        assert trace.x[1] > trace.x[0]

    def test_prior_validation(self):
        split = build_split([10, 10])
        strategy = PreferenceAwareMostUnstable(
            omega=5, prior_acceptance=np.array([0.5])
        )
        runner = IncentiveRunner.replay(split)
        with pytest.raises(AllocationError):
            runner.run(strategy, budget=1)

    def test_ignores_below_omega_like_mu(self):
        split = build_split([2, 10])
        strategy = PreferenceAwareMostUnstable(omega=5)
        runner = IncentiveRunner.replay(split)
        trace = runner.run(strategy, budget=5)
        assert trace.x[0] == 0


class TestGreedy:
    def test_optimal_on_concave_gains(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            # Concave increasing gain tables: greedy is provably optimal.
            gains = []
            for _ in range(3):
                deltas = np.sort(rng.random(4))[::-1]
                gains.append(np.concatenate([[0.0], np.cumsum(deltas)]))
            budget = int(rng.integers(0, 12))
            greedy = solve_greedy(gains, budget)
            exact = brute_force_optimal(gains, budget)
            assert greedy.value == pytest.approx(exact.value, abs=1e-12)

    def test_spends_exact_budget(self):
        gains = [np.array([0.5, 0.4, 0.3]), np.array([0.1, 0.2, 0.9])]
        result = solve_greedy(gains, 3)
        assert result.x.sum() == 3

    def test_never_beats_dp(self):
        rng = np.random.default_rng(23)
        for _ in range(15):
            gains = [rng.random(int(rng.integers(2, 6))) for _ in range(3)]
            capacity = sum(len(g) - 1 for g in gains)
            budget = int(rng.integers(0, capacity + 1))
            greedy = solve_greedy(gains, budget)
            exact = solve_dp(gains, budget)
            assert greedy.value <= exact.value + 1e-12

    def test_infeasible_budget(self):
        with pytest.raises(BudgetError):
            solve_greedy([np.array([0.1, 0.2])], 5)
