"""Unit tests for the StabilityMonitor interface and its three backends."""

import math
import os

import pytest

from repro.core import AllocationError, Post
from repro.allocation.monitor import (
    MONITOR_BACKENDS,
    BankStabilityMonitor,
    ShardedBankStabilityMonitor,
    TrackerStabilityMonitor,
    make_monitor,
)

# CI's threaded leg (REPRO_TEST_SHARD_WORKERS) force-overrides the sharded
# monitor's executor knobs; tests asserting the knobs themselves are
# meaningless there and sit out that run.
_knobs_forced = pytest.mark.skipif(
    bool(int(os.environ.get("REPRO_TEST_SHARD_WORKERS", "0") or "0")),
    reason="REPRO_TEST_SHARD_WORKERS overrides the sharded executor knobs",
)


def stable_run_posts(k: int) -> list[Post]:
    """``k`` identical posts — MA hits 1.0 as soon as it is defined."""
    return [Post.of("a", "b", timestamp=float(i)) for i in range(k)]


def drifting_posts(k: int) -> list[Post]:
    """Posts whose tag sets keep changing — unstable for small ``k``.

    With all-distinct tags the adjacent similarity is
    ``sqrt((j-1)/j)``, so short sequences stay comfortably below a 0.9
    threshold (keep ``k <= 5`` at ``omega = 3``).
    """
    return [Post.of(f"x{i}", f"y{i}", timestamp=float(i)) for i in range(k)]


class TestFactory:
    def test_none_disables_monitoring(self):
        assert make_monitor(None) is None

    def test_spec_backends_match_factory_backends(self):
        # specs can't import the factory tuple (allocation -> api import
        # cycle), so the two hand-maintained tuples are pinned here
        from repro.api.specs import STABILITY_BACKENDS

        assert STABILITY_BACKENDS == MONITOR_BACKENDS

    @pytest.mark.parametrize("backend,cls", [
        ("tracker", TrackerStabilityMonitor),
        ("engine", BankStabilityMonitor),
        ("sharded", ShardedBankStabilityMonitor),
    ])
    def test_backend_classes(self, backend, cls):
        assert backend in MONITOR_BACKENDS
        assert isinstance(make_monitor(backend, 5, 0.99), cls)

    def test_unknown_backend_rejected(self):
        with pytest.raises(AllocationError, match="unknown stability monitor backend"):
            make_monitor("turbo")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(AllocationError):
            make_monitor("engine", flush_events=0)
        with pytest.raises(AllocationError):
            make_monitor("sharded", n_shards=0)

    @_knobs_forced
    def test_invalid_executor_knobs_rejected(self):
        with pytest.raises(AllocationError):
            make_monitor("sharded", executor="fork")
        with pytest.raises(AllocationError):
            make_monitor("sharded", executor="thread", workers=-1)

    @_knobs_forced
    def test_executor_knobs_reach_sharded_monitor(self):
        monitor = make_monitor("sharded", executor="thread", workers=3)
        try:
            assert monitor._executor.kind == "thread"
            assert monitor._executor.workers == 3
        finally:
            monitor.close()
        serial = make_monitor("sharded")
        assert serial._executor.kind == "serial"
        serial.close()  # no-op for serial; close is part of the interface


@pytest.mark.parametrize("backend", MONITOR_BACKENDS)
class TestDrainSemantics:
    def test_initially_stable_arrive_in_first_drain(self, backend):
        monitor = make_monitor(backend, 3, 0.9)
        monitor.begin(3, [stable_run_posts(6), [], drifting_posts(4)])
        assert monitor.drain_newly_stable() == [0]
        assert monitor.drain_newly_stable() == []

    def test_exactly_once_across_lifetime(self, backend):
        monitor = make_monitor(backend, 3, 0.9, flush_events=2)
        monitor.begin(2, [[], []])
        seen: list[int] = []
        for post in stable_run_posts(8):
            monitor.observe_batch([(0, post), (1, post)])
            seen.extend(monitor.drain_newly_stable())
        assert sorted(seen) == [0, 1]
        assert len(seen) == len(set(seen))
        assert monitor.stable_indices() == [0, 1]
        assert monitor.drain_newly_stable() == []

    def test_union_of_drains_equals_stable_indices(self, backend):
        monitor = make_monitor(backend, 3, 0.9)
        monitor.begin(3, [stable_run_posts(5), [], []])
        drained = set(monitor.drain_newly_stable())
        for post in stable_run_posts(7):
            monitor.observe_batch([(2, post)])
        drained.update(monitor.drain_newly_stable())
        assert drained == set(monitor.stable_indices()) == {0, 2}

    def test_no_tau_never_drains(self, backend):
        monitor = make_monitor(backend, 3, None)
        monitor.begin(1, [stable_run_posts(10)])
        assert monitor.drain_newly_stable() == []
        assert monitor.stable_indices() == []


@pytest.mark.parametrize("backend", MONITOR_BACKENDS)
class TestQueries:
    def test_observed_counts_cover_initial_and_delivered(self, backend):
        monitor = make_monitor(backend, 5, 0.99, track_observed=True)
        monitor.begin(2, [[Post.of("a", "b"), Post.of("a")], []])
        monitor.observe_batch([(0, Post.of("a", "c")), (1, Post.of("z"))])
        assert monitor.observed_counts(0) == {"a": 3, "b": 1, "c": 1}
        assert monitor.observed_counts(1) == {"z": 1}
        # returned dicts are copies — mutating them must not leak back
        monitor.observed_counts(0)["a"] = 99
        assert monitor.observed_counts(0)["a"] == 3

    def test_ma_scores_nan_below_omega_then_defined(self, backend):
        monitor = make_monitor(backend, 4, 0.99)
        monitor.begin(2, [stable_run_posts(2), stable_run_posts(6)])
        scores = monitor.ma_scores()
        assert len(scores) == 2
        assert math.isnan(scores[0])
        assert scores[1] == pytest.approx(1.0)

    def test_stable_count_property(self, backend):
        monitor = make_monitor(backend, 3, 0.9)
        monitor.begin(2, [stable_run_posts(5), []])
        assert monitor.stable_count == 1


class TestEngineSpecifics:
    @pytest.mark.parametrize("backend", ["engine", "sharded"])
    def test_observe_before_begin_rejected(self, backend):
        monitor = make_monitor(backend, 5, 0.99)
        with pytest.raises(AllocationError, match="before begin"):
            monitor.observe_batch([(0, Post.of("a"))])

    @pytest.mark.parametrize("backend", ["engine", "sharded"])
    def test_observed_counts_without_tracking_flushes(self, backend):
        monitor = make_monitor(backend, 5, 0.99)  # track_observed=False
        monitor.begin(1, [[Post.of("a", "b")]])
        monitor.observe_batch([(0, Post.of("a"))])
        assert monitor.observed_counts(0) == {"a": 2, "b": 1}

    def test_batched_flags(self):
        assert TrackerStabilityMonitor.batched is False
        assert BankStabilityMonitor.batched is True
        assert ShardedBankStabilityMonitor.batched is True

    def test_sharded_spreads_resources_across_shards(self):
        monitor = make_monitor("sharded", 3, 0.9, n_shards=3)
        monitor.begin(12, [stable_run_posts(5) for _ in range(12)])
        populated = [shard for shard in monitor._bank.shards if shard.n_resources]
        assert len(populated) > 1
        assert monitor.stable_indices() == list(range(12))

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_sharded_monitor_invariant_to_executor(self, workers):
        """Threaded flushes answer byte-identically to serial ones."""
        initial = [drifting_posts(2) for _ in range(9)]
        deliveries = [
            (index, Post.of(f"x{step}", f"y{index}", timestamp=float(step)))
            for step in range(12)
            for index in range(9)
        ]
        serial = make_monitor(
            "sharded", 3, 0.9, n_shards=3, flush_events=10, track_observed=True
        )
        threaded = make_monitor(
            "sharded", 3, 0.9, n_shards=3, flush_events=10,
            track_observed=True, executor="thread", workers=workers,
        )
        threaded.parallel_min_events = 0  # force pool dispatch
        try:
            for monitor in (serial, threaded):
                monitor.begin(9, initial)
            for start in range(0, len(deliveries), 7):
                chunk = deliveries[start : start + 7]
                serial.observe_batch(chunk)
                threaded.observe_batch(chunk)
                assert threaded.drain_newly_stable() == serial.drain_newly_stable()
            assert threaded.stable_indices() == serial.stable_indices()
            assert threaded.ma_scores() == pytest.approx(
                serial.ma_scores(), abs=0, nan_ok=True
            )
            for index in range(9):
                assert threaded.observed_counts(index) == serial.observed_counts(index)
        finally:
            threaded.close()
