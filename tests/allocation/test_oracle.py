"""Tests for tagger sources (replay and generative)."""

import pytest

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import GenerativeTaggerSource, ReplayTaggerSource
from repro.allocation.oracle import popularity_chooser


@pytest.fixture()
def split():
    resources = ResourceSet(
        [
            Resource(
                "a",
                PostSequence(
                    [Post.of("a1", timestamp=t) for t in (1.0, 10.0, 20.0, 30.0)]
                ),
            ),
            Resource(
                "b",
                PostSequence([Post.of("b1", timestamp=t) for t in (2.0, 15.0)]),
            ),
        ]
    )
    return TaggingDataset(resources).split(cutoff=5.0)


class TestReplaySource:
    def test_next_post_walks_future_in_order(self, split):
        source = ReplayTaggerSource(split)
        assert source.next_post(0).timestamp == 10.0
        assert source.next_post(0).timestamp == 20.0
        assert source.next_post(1).timestamp == 15.0

    def test_exhaustion_returns_none(self, split):
        source = ReplayTaggerSource(split)
        assert source.next_post(1).timestamp == 15.0
        assert source.next_post(1) is None
        assert source.next_post(1) is None  # stays exhausted

    def test_remaining_accounting(self, split):
        source = ReplayTaggerSource(split)
        assert source.total_remaining == 4
        assert source.remaining(0) == 3
        source.next_post(0)
        assert source.remaining(0) == 2
        assert source.total_remaining == 3

    def test_free_choice_follows_arrival_order(self, split):
        source = ReplayTaggerSource(split)
        picks = []
        for _ in range(4):
            index = source.free_choice()
            picks.append(index)
            source.next_post(index)
        # arrivals: a@10, b@15, a@20, a@30
        assert picks == [0, 1, 0, 0]
        assert source.free_choice() is None

    def test_free_choice_skips_directed_consumption(self, split):
        source = ReplayTaggerSource(split)
        source.next_post(0)  # consumes a@10 via a directed task
        assert source.free_choice() == 1  # next organic arrival is b@15

    def test_sources_are_independent(self, split):
        first = ReplayTaggerSource(split)
        second = ReplayTaggerSource(split)
        first.next_post(0)
        assert second.remaining(0) == 3


class TestGenerativeSource:
    def test_factory_is_called_per_request(self):
        calls = []

        def factory(index: int) -> Post:
            calls.append(index)
            return Post.of(f"tag{index}", timestamp=float(len(calls)))

        source = GenerativeTaggerSource(factory)
        assert source.next_post(3).tags == frozenset({"tag3"})
        assert source.next_post(1).tags == frozenset({"tag1"})
        assert calls == [3, 1]
        assert source.total_remaining is None

    def test_free_choice_requires_model(self):
        source = GenerativeTaggerSource(lambda i: Post.of("x"))
        with pytest.raises(NotImplementedError):
            source.free_choice()

    def test_free_choice_delegates(self):
        source = GenerativeTaggerSource(lambda i: Post.of("x"), free_chooser=lambda: 7)
        assert source.free_choice() == 7


class TestPopularityChooser:
    def test_respects_weights(self, rng):
        chooser = popularity_chooser([0.0, 1.0, 0.0], rng)
        assert all(chooser() == 1 for _ in range(20))

    def test_distribution_roughly_proportional(self, rng):
        chooser = popularity_chooser([1.0, 3.0], rng)
        picks = [chooser() for _ in range(2000)]
        fraction = sum(picks) / len(picks)
        assert 0.68 < fraction < 0.82

    def test_rejects_bad_weights(self, rng):
        with pytest.raises(ValueError):
            popularity_chooser([-1.0, 2.0], rng)
        with pytest.raises(ValueError):
            popularity_chooser([0.0, 0.0], rng)
