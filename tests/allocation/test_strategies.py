"""Behavioural tests for the five practical strategies (Section IV)."""

import pytest

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import (
    FewestPostsFirst,
    FreeChoice,
    HybridFPMU,
    IncentiveRunner,
    MostUnstableFirst,
    RoundRobin,
)


def build_split(initial: list[int], future: int = 50, cutoff: float = 100.0):
    """Resources with given initial counts and `future` future posts each."""
    resources = ResourceSet()
    for i, count in enumerate(initial):
        timestamps = [float(j + 1) for j in range(count)]
        timestamps += [cutoff + 1 + j for j in range(future)]
        posts = [Post.of(f"t{i}", f"u{j % 3}", timestamp=t) for j, t in enumerate(timestamps)]
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    return TaggingDataset(resources).split(cutoff)


class TestRoundRobin:
    def test_cycles_in_positional_order(self):
        runner = IncentiveRunner.replay(build_split([5, 5, 5]))
        trace = runner.run(RoundRobin(), budget=7)
        assert list(trace.order) == [0, 1, 2, 0, 1, 2, 0]

    def test_even_spread(self):
        runner = IncentiveRunner.replay(build_split([1, 9, 4, 7]))
        trace = runner.run(RoundRobin(), budget=40)
        assert (trace.x == 10).all()


class TestFewestPostsFirst:
    def test_always_feeds_the_minimum(self):
        split = build_split([8, 2, 5])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FewestPostsFirst(), budget=9)
        # Waterline: counts equalise at (8, 8, 8).
        assert (split.initial_counts + trace.x).tolist() == [8, 8, 8]

    def test_invariant_chosen_has_min_count(self):
        split = build_split([4, 9, 6, 3])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FewestPostsFirst(), budget=25)
        counts = split.initial_counts.astype(int).copy()
        for index in trace.order:
            assert counts[index] == counts.min()
            counts[index] += 1

    def test_moves_on_after_exhaustion(self):
        split = build_split([0, 5], future=3)
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FewestPostsFirst(), budget=6)
        assert trace.x.tolist() == [3, 3]


class TestMostUnstableFirst:
    def test_ignores_resources_below_omega(self):
        split = build_split([2, 20])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(MostUnstableFirst(omega=5), budget=10)
        assert trace.x[0] == 0  # 2 < omega: never eligible
        assert trace.x[1] == 10

    def test_stops_when_no_resource_is_eligible(self):
        split = build_split([1, 2])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(MostUnstableFirst(omega=5), budget=10)
        assert trace.budget_spent == 0

    def test_prefers_lower_ma_score(self):
        # Resource 0: alternating disjoint tags -> unstable rfd.
        # Resource 1: constant tags -> MA ~= 1.
        resources = ResourceSet()
        wobble = [
            Post.of(f"w{j}", timestamp=float(j + 1)) for j in range(8)
        ]
        steady = [Post.of("s", timestamp=float(j + 1)) for j in range(8)]
        for rid, initial in (("wobbly", wobble), ("steady", steady)):
            future = [
                Post.of("f", timestamp=100.0 + j) for j in range(20)
            ]
            resources.add(Resource(rid, PostSequence(initial + future)))
        split = TaggingDataset(resources).split(50.0)
        runner = IncentiveRunner.replay(split)
        trace = runner.run(MostUnstableFirst(omega=5), budget=1)
        assert trace.order[0] == split.resources.index_of("wobbly")

    def test_exposes_ma_scores(self):
        split = build_split([10, 10])
        strategy = MostUnstableFirst(omega=5)
        runner = IncentiveRunner.replay(split)
        runner.run(strategy, budget=2)
        assert strategy.ma_score_of(0) is not None
        assert 0.0 <= strategy.ma_score_of(0) <= 1.0


class TestHybridFPMU:
    def test_warmup_budget_formula(self):
        split = build_split([2, 7, 0])
        runner = IncentiveRunner.replay(split)
        strategy = HybridFPMU(omega=5)
        runner.run(strategy, budget=100)
        # deficits: (5-2) + 0 + (5-0) = 8
        assert strategy.warmup_budget == 8

    def test_warmup_capped_by_budget(self):
        split = build_split([0, 0])
        runner = IncentiveRunner.replay(split)
        strategy = HybridFPMU(omega=8)
        runner.run(strategy, budget=5)
        assert strategy.warmup_budget == 5

    def test_warmup_lifts_everyone_to_omega(self):
        split = build_split([1, 3, 9])
        runner = IncentiveRunner.replay(split)
        strategy = HybridFPMU(omega=5)
        trace = runner.run(strategy, budget=6)
        final = split.initial_counts + trace.x
        assert (final >= 5).all()

    def test_behaves_like_fp_when_budget_below_warmup(self):
        split = build_split([0, 2, 9])
        runner = IncentiveRunner.replay(split)
        fpmu_trace = runner.run(HybridFPMU(omega=6), budget=7)
        fp_trace = runner.run(FewestPostsFirst(), budget=7)
        assert (fpmu_trace.x == fp_trace.x).all()

    def test_equals_mu_when_all_resources_warm(self):
        split = build_split([10, 12, 15])
        runner = IncentiveRunner.replay(split)
        mu_trace = runner.run(MostUnstableFirst(omega=5), budget=12)
        fpmu_trace = runner.run(HybridFPMU(omega=5), budget=12)
        assert (mu_trace.x == fpmu_trace.x).all()


class TestDeterminism:
    @pytest.mark.parametrize(
        "strategy_factory",
        [FreeChoice, RoundRobin, FewestPostsFirst, MostUnstableFirst, HybridFPMU],
    )
    def test_runs_are_reproducible(self, strategy_factory):
        split = build_split([3, 8, 1, 12])
        runner = IncentiveRunner.replay(split)
        first = runner.run(strategy_factory(), budget=15)
        second = runner.run(strategy_factory(), budget=15)
        assert first.order == second.order
