"""The batched CHOOSE protocol: byte-identical traces at every batch size.

The acceptance bar for ``choose_batch`` is exactness, not approximation:
for FP, MU and RR (and the strategies that default to single-choice
plans) a batched run must reproduce the scalar Algorithm 1 loop's trace
byte for byte — including runs with exhaustion, heterogeneous costs and
refusals, where mid-batch failures force plan rollbacks.
"""

import numpy as np
import pytest

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import (
    BankStabilityMonitor,
    FewestPostsFirst,
    FreeChoice,
    HybridFPMU,
    IncentiveRunner,
    MostUnstableFirst,
    RoundRobin,
    TrackerStabilityMonitor,
)
from repro.allocation.fewest_posts import waterfill_plan
from repro.simulate import paper_scenario

BATCH_SIZES = (2, 3, 7, 64, 1000)

STRATEGY_FACTORIES = {
    "FP": FewestPostsFirst,
    "RR": RoundRobin,
    "MU": lambda: MostUnstableFirst(omega=5),
    "FP-MU": lambda: HybridFPMU(omega=5),
    "FC": FreeChoice,
}


@pytest.fixture(scope="module")
def replay_runner():
    corpus = paper_scenario(n=25, seed=7)
    split = corpus.dataset.split(corpus.cutoff)
    return IncentiveRunner.replay(split)


def build_split(counts_future, cutoff=5.0):
    resources = ResourceSet()
    for i, future in enumerate(counts_future):
        timestamps = [1.0, 2.0] + [10.0 + j for j in range(future)]
        resources.add(
            Resource(
                f"r{i}",
                PostSequence([Post.of(f"t{i}", timestamp=t) for t in timestamps]),
            )
        )
    return TaggingDataset(resources).split(cutoff)


def varied_split(n=8, initial=10, future=40, seed=0, cutoff=None):
    """Posts with real tag variation, so MU scores genuinely move."""
    rng = np.random.default_rng(seed)
    resources = ResourceSet()
    for i in range(n):
        pool = [f"a{i}", f"b{i}", f"c{i}", "common"]
        posts = []
        for j in range(initial + future):
            size = int(rng.integers(1, 4))
            tags = rng.choice(pool, size=size, replace=False)
            posts.append(Post(frozenset(str(t) for t in tags), timestamp=float(j)))
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    return TaggingDataset(resources).split(initial - 0.5 if cutoff is None else cutoff)


class TestByteIdenticalTraces:
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_replay_with_exhaustion(self, replay_runner, name, batch_size):
        make = STRATEGY_FACTORIES[name]
        scalar = replay_runner.run(make(), 450)
        batched = replay_runner.run(make(), 450, batch_size=batch_size)
        assert batched.order == scalar.order
        assert batched.spend == scalar.spend

    @pytest.mark.parametrize("name", ["FP", "RR", "MU", "FP-MU"])
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_tag_variation_corpus(self, name, batch_size):
        runner = IncentiveRunner.replay(varied_split())
        make = STRATEGY_FACTORIES[name]
        scalar = runner.run(make(), 200)
        batched = runner.run(make(), 200, batch_size=batch_size)
        assert batched.order == scalar.order

    @pytest.mark.parametrize("omega", [2, 3, 8])
    @pytest.mark.parametrize("batch_size", [2, 16, 64])
    def test_mu_lookahead_across_windows(self, omega, batch_size):
        runner = IncentiveRunner.replay(varied_split(seed=omega))
        scalar = runner.run(MostUnstableFirst(omega=omega), 150)
        batched = runner.run(MostUnstableFirst(omega=omega), 150, batch_size=batch_size)
        assert batched.order == scalar.order

    @pytest.mark.parametrize("name", ["FP", "RR"])
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_heavy_exhaustion_mid_batch(self, name, batch_size):
        runner = IncentiveRunner.replay(build_split([1, 3, 0, 7, 2, 5]))
        make = STRATEGY_FACTORIES[name]
        scalar = runner.run(make(), 30)
        batched = runner.run(make(), 30, batch_size=batch_size)
        assert batched.order == scalar.order

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_costs_abort_batches_exactly(self, batch_size):
        runner = IncentiveRunner.replay(build_split([10, 10, 10]))
        costs = np.array([3, 1, 2])
        scalar = runner.run(FewestPostsFirst(), 17, costs=costs)
        batched = runner.run(FewestPostsFirst(), 17, costs=costs, batch_size=batch_size)
        assert batched.order == scalar.order
        assert batched.spend == scalar.spend

    @pytest.mark.parametrize("name", ["FP", "RR", "MU"])
    @pytest.mark.parametrize("batch_size", [2, 7, 64])
    def test_refusals_keep_rng_streams_aligned(self, name, batch_size):
        runner = IncentiveRunner.replay(varied_split(seed=4))
        acceptance = np.linspace(0.3, 0.95, 8)
        make = STRATEGY_FACTORIES[name]
        scalar = runner.run(
            make(), 60, acceptance=acceptance, rng=np.random.default_rng(9)
        )
        batched = runner.run(
            make(), 60, acceptance=acceptance, rng=np.random.default_rng(9),
            batch_size=batch_size,
        )
        assert batched.order == scalar.order
        assert batched.refusals == scalar.refusals

    def test_generative_unbounded(self):
        counts = np.array([0, 3, 6, 1, 9])

        def factory(index):
            return Post.of(f"t{index}", timestamp=0.0)

        def runner():
            return IncentiveRunner.generative(
                counts, [[] for _ in counts], factory
            )

        scalar = runner().run(FewestPostsFirst(), 40)
        for batch_size in BATCH_SIZES:
            batched = runner().run(FewestPostsFirst(), 40, batch_size=batch_size)
            assert batched.order == scalar.order


class TestWaterfillPlan:
    def _reference(self, counts, ids, k):
        counts = list(counts)
        order = []
        for _ in range(k):
            best = min(range(len(ids)), key=lambda p: (counts[p], ids[p]))
            order.append(ids[best])
            counts[best] += 1
        return order

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_greedy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        counts = rng.integers(0, 6, size=n)
        ids = rng.permutation(n * 3)[:n]
        k = int(rng.integers(1, 40))
        plan = waterfill_plan(counts, ids, k)
        assert plan.tolist() == self._reference(counts, ids, k)

    def test_ties_break_by_id(self):
        plan = waterfill_plan(np.array([2, 2, 2]), np.array([5, 1, 3]), 6)
        assert plan.tolist() == [1, 3, 5, 1, 3, 5]


class TestMonitorsObserveOnly:
    @pytest.mark.parametrize("batch_size", [1, 16])
    def test_monitor_never_changes_the_trace(self, replay_runner, batch_size):
        bare = replay_runner.run(FewestPostsFirst(), 200, batch_size=batch_size)
        monitored = replay_runner.run(
            FewestPostsFirst(), 200, batch_size=batch_size,
            monitor=TrackerStabilityMonitor(omega=5, tau=0.98),
        )
        assert monitored.order == bare.order

    def test_tracker_and_bank_monitors_agree(self, replay_runner):
        tracker = TrackerStabilityMonitor(omega=5, tau=0.97)
        bank = BankStabilityMonitor(omega=5, tau=0.97)
        replay_runner.run(FewestPostsFirst(), 300, monitor=tracker)
        replay_runner.run(FewestPostsFirst(), 300, batch_size=64, monitor=bank)
        assert tracker.stable_indices() == bank.stable_indices()
        assert tracker.stable_count == bank.stable_count
