"""Tests for the Algorithm 1 budget loop (the runner)."""

import numpy as np
import pytest

from repro.core import (
    AllocationError,
    BudgetError,
    Post,
    PostSequence,
    Resource,
    ResourceSet,
    TaggingDataset,
)
from repro.allocation import (
    AllocationStrategy,
    FewestPostsFirst,
    FreeChoice,
    IncentiveRunner,
    RoundRobin,
)


def build_split(counts_future: list[int], cutoff: float = 5.0):
    resources = ResourceSet()
    for i, future in enumerate(counts_future):
        timestamps = [1.0, 2.0] + [10.0 + j for j in range(future)]
        resources.add(
            Resource(
                f"r{i}",
                PostSequence([Post.of(f"t{i}", timestamp=t) for t in timestamps]),
            )
        )
    return TaggingDataset(resources).split(cutoff)


class TestBudgetLoop:
    def test_budget_is_spent_exactly(self):
        runner = IncentiveRunner.replay(build_split([10, 10]))
        trace = runner.run(RoundRobin(), budget=7)
        assert trace.budget_spent == 7
        assert trace.x.sum() == 7

    def test_zero_budget(self):
        runner = IncentiveRunner.replay(build_split([5]))
        trace = runner.run(RoundRobin(), budget=0)
        assert trace.tasks_delivered == 0

    def test_negative_budget_rejected(self):
        runner = IncentiveRunner.replay(build_split([5]))
        with pytest.raises(BudgetError):
            runner.run(RoundRobin(), budget=-1)

    def test_early_stop_on_total_exhaustion(self):
        runner = IncentiveRunner.replay(build_split([2, 1]))
        trace = runner.run(RoundRobin(), budget=100)
        assert trace.budget_spent == 3  # only 3 future posts exist

    def test_strict_mode_raises_on_infeasible_budget(self):
        runner = IncentiveRunner.replay(build_split([2, 1]))
        with pytest.raises(BudgetError):
            runner.run(RoundRobin(), budget=100, strict=True)

    def test_exhausted_resource_skipped_without_budget_loss(self):
        runner = IncentiveRunner.replay(build_split([1, 10]))
        trace = runner.run(RoundRobin(), budget=6)
        assert trace.budget_spent == 6
        x = trace.x
        assert x[0] == 1  # resource 0 had a single future post
        assert x[1] == 5

    def test_trace_order_matches_x(self):
        runner = IncentiveRunner.replay(build_split([4, 4]))
        trace = runner.run(RoundRobin(), budget=6)
        x = np.zeros(2, dtype=int)
        for index in trace.order:
            x[index] += 1
        assert (trace.x == x).all()

    def test_out_of_range_choice_rejected(self):
        class Rogue(AllocationStrategy):
            name = "rogue"

            def choose(self):
                return 99

        runner = IncentiveRunner.replay(build_split([3]))
        with pytest.raises(AllocationError):
            runner.run(Rogue(), budget=1)

    def test_strategy_reuse_across_runs(self):
        runner = IncentiveRunner.replay(build_split([5, 5]))
        strategy = FewestPostsFirst()
        first = runner.run(strategy, budget=4)
        second = runner.run(strategy, budget=4)
        assert (first.x == second.x).all()  # fresh source + re-init each run


class TestCosts:
    def test_costs_consume_budget(self):
        runner = IncentiveRunner.replay(build_split([10, 10]))
        trace = runner.run(RoundRobin(), budget=10, costs=np.array([3, 2]))
        assert trace.budget_spent <= 10
        assert all(c in (2, 3) for c in trace.spend)

    def test_unaffordable_resources_are_skipped(self):
        runner = IncentiveRunner.replay(build_split([10, 10]))
        trace = runner.run(RoundRobin(), budget=5, costs=np.array([100, 1]))
        assert trace.x[0] == 0
        assert trace.x[1] == 5

    def test_cost_validation(self):
        runner = IncentiveRunner.replay(build_split([5, 5]))
        with pytest.raises(AllocationError):
            runner.run(RoundRobin(), budget=3, costs=np.array([0, 1]))
        with pytest.raises(AllocationError):
            runner.run(RoundRobin(), budget=3, costs=np.array([1]))


class TestAcceptance:
    def test_acceptance_requires_rng(self):
        runner = IncentiveRunner.replay(build_split([5]))
        with pytest.raises(AllocationError):
            runner.run(RoundRobin(), budget=2, acceptance=np.array([0.5]))

    def test_refusals_do_not_consume_budget(self, rng):
        runner = IncentiveRunner.replay(build_split([40, 40]))
        trace = runner.run(
            RoundRobin(), budget=20, acceptance=np.array([0.4, 0.4]), rng=rng
        )
        assert trace.budget_spent == 20
        assert trace.refusals > 0

    def test_full_acceptance_means_no_refusals(self, rng):
        runner = IncentiveRunner.replay(build_split([20, 20]))
        trace = runner.run(
            RoundRobin(), budget=10, acceptance=np.array([1.0, 1.0]), rng=rng
        )
        assert trace.refusals == 0


class TestFreeChoiceIntegration:
    def test_fc_replays_arrival_order(self):
        split = build_split([3, 2])
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FreeChoice(), budget=5)
        assert list(trace.order) == list(split.free_choice_order)

    def test_fc_stops_when_stream_dries_up(self):
        runner = IncentiveRunner.replay(build_split([1, 1]))
        trace = runner.run(FreeChoice(), budget=10)
        assert trace.budget_spent == 2
