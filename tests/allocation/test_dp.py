"""Tests for the optimal DP (Algorithm 6) and its implementations."""

import numpy as np
import pytest

from repro.core import BudgetError, QualityProfile
from repro.allocation import (
    brute_force_optimal,
    gains_from_profiles,
    solve_dp,
    solve_dp_reference,
)


class TestPaperExample:
    def test_example_3_optimum(self, paper_r1_posts, paper_r2_posts, paper_stable_rfds):
        profiles = [
            QualityProfile(paper_r1_posts, paper_stable_rfds[0]),
            QualityProfile(paper_r2_posts, paper_stable_rfds[1]),
        ]
        gains = gains_from_profiles(profiles, np.array([3, 2]), budget=2)
        result = solve_dp(gains, 2)
        assert result.x.tolist() == [1, 1]
        assert result.mean_quality == pytest.approx(0.990, abs=2e-3)

    def test_reference_agrees(self, paper_r1_posts, paper_r2_posts, paper_stable_rfds):
        profiles = [
            QualityProfile(paper_r1_posts, paper_stable_rfds[0]),
            QualityProfile(paper_r2_posts, paper_stable_rfds[1]),
        ]
        gains = gains_from_profiles(profiles, np.array([3, 2]), budget=2)
        assert solve_dp_reference(gains, 2).x.tolist() == [1, 1]


class TestCorrectness:
    def test_single_resource_takes_whole_budget(self):
        gains = [np.array([0.1, 0.5, 0.3, 0.9])]
        result = solve_dp(gains, 2)
        assert result.x.tolist() == [2]
        assert result.value == pytest.approx(0.3)

    def test_exact_spend_even_when_quality_decreases(self):
        # Definition 11 demands Σx = B even if extra posts hurt.
        gains = [np.array([0.9, 0.2]), np.array([0.8, 0.3])]
        result = solve_dp(gains, 2)
        assert result.x.sum() == 2
        assert result.value == pytest.approx(0.5)

    def test_budget_zero(self):
        gains = [np.array([0.4, 0.9]), np.array([0.5, 0.1])]
        result = solve_dp(gains, 0)
        assert result.x.tolist() == [0, 0]
        assert result.value == pytest.approx(0.9)

    def test_caps_respected(self):
        gains = [np.array([0.0, 1.0]), np.array([0.0, 0.1, 0.2, 0.3])]
        result = solve_dp(gains, 4)
        assert result.x.tolist() == [1, 3]

    def test_infeasible_budget_raises(self):
        gains = [np.array([0.1, 0.2])]
        with pytest.raises(BudgetError):
            solve_dp(gains, 5)
        with pytest.raises(BudgetError):
            solve_dp_reference(gains, 5)
        with pytest.raises(BudgetError):
            brute_force_optimal(gains, 5)

    def test_negative_budget_raises(self):
        with pytest.raises(BudgetError):
            solve_dp([np.array([0.1])], -1)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        gains = [rng.random(int(rng.integers(2, 6))) for _ in range(n)]
        capacity = sum(len(g) - 1 for g in gains)
        budget = int(rng.integers(0, capacity + 1))
        expected = brute_force_optimal(gains, budget)
        for solver in (solve_dp, solve_dp_reference):
            result = solver(gains, budget)
            assert result.value == pytest.approx(expected.value, abs=1e-12)
            assert result.x.sum() == budget
            realised = sum(float(g[x]) for g, x in zip(gains, result.x))
            assert realised == pytest.approx(result.value, abs=1e-12)

    def test_vectorised_and_reference_pick_same_assignment(self):
        rng = np.random.default_rng(42)
        gains = [rng.random(5) for _ in range(4)]
        fast = solve_dp(gains, 7)
        slow = solve_dp_reference(gains, 7)
        # Same tie-breaking rule (smallest x), so identical assignments.
        assert fast.x.tolist() == slow.x.tolist()


class TestDPResult:
    def test_mean_quality(self):
        gains = [np.array([0.2, 0.8]), np.array([0.4, 0.6])]
        result = solve_dp(gains, 1)
        assert result.mean_quality == pytest.approx(result.value / 2)

    def test_gains_from_profiles_caps_at_future_length(
        self, paper_r1_posts, paper_stable_rfds
    ):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        gains = gains_from_profiles([profile], np.array([3]), budget=100)
        assert len(gains[0]) == 3  # c=3, 2 future posts -> x in {0,1,2}
