"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_ingest_args(self):
        args = build_parser().parse_args(
            ["ingest", "--resources", "40", "--shards", "3", "--batch-size", "256"]
        )
        assert args.command == "ingest"
        assert args.shards == 3
        assert args.batch_size == 256

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--resources", "9"])
        assert args.command == "generate"
        assert args.resources == 9

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_generate_and_analyze(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        assert main(["generate", str(path), "--resources", "8", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "wrote 8 resources" in output
        assert main(["analyze", str(path)]) == 0
        output = capsys.readouterr().out
        assert "stable points" in output

    def test_generate_universe(self, tmp_path, capsys):
        path = tmp_path / "universe.jsonl"
        assert main(["generate", str(path), "--resources", "40", "--universe"]) == 0
        assert "40 resources" in capsys.readouterr().out

    def test_analyze_without_dataset_prints_intro_stats(self, capsys):
        assert main(["analyze", "--resources", "25", "--seed", "7"]) == 0
        assert "Section I statistics" in capsys.readouterr().out

    def test_allocate(self, capsys):
        assert main(["allocate", "FP", "--budget", "60", "--resources", "15"]) == 0
        output = capsys.readouterr().out
        assert "FP:" in output and "quality" in output

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        output = capsys.readouterr().out
        assert "0.953" in output

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "stable point" in capsys.readouterr().out

    def test_experiment_fig6a_small(self, capsys):
        assert main(["experiment", "fig6a", "--resources", "15", "--seed", "11"]) == 0
        output = capsys.readouterr().out
        assert "FP-MU" in output and "DP" in output

    def test_experiment_fig1b(self, capsys):
        assert main(["experiment", "fig1b", "--resources", "500"]) == 0
        assert "slope" in capsys.readouterr().out

    def test_campaign(self, capsys):
        assert main(
            ["campaign", "FP", "--resources", "12", "--budget", "80", "--workers", "4"]
        ) == 0
        output = capsys.readouterr().out
        assert "campaign:" in output

    def test_faults_flag_activates_plan(self, capsys):
        from repro import faults
        from repro.faults.plan import _reset_for_tests

        _reset_for_tests()
        try:
            assert main(
                [
                    "--faults",
                    '{"specs": [{"site": "cli.smoke", "kind": "error", "at": 99}]}',
                    "campaign",
                    "FP",
                    "--resources",
                    "10",
                    "--budget",
                    "50",
                ]
            ) == 0
            injector = faults.active()
            assert injector is not None
            assert injector.plan.specs[0].site == "cli.smoke"
        finally:
            _reset_for_tests()

    def test_faults_flag_rejects_bad_plan(self):
        from repro.faults import FaultError
        from repro.faults.plan import _reset_for_tests

        _reset_for_tests()
        try:
            with pytest.raises(FaultError):
                main(["--faults", "{bad json", "campaign", "FP"])
        finally:
            _reset_for_tests()

    def test_campaign_without_adaptive_stop(self, capsys):
        assert main(
            [
                "campaign",
                "FP",
                "--resources",
                "10",
                "--budget",
                "50",
                "--no-adaptive-stop",
            ]
        ) == 0
        assert "0 resources adaptively stopped" in capsys.readouterr().out

    def test_campaign_engine_backend(self, capsys):
        assert main(
            ["campaign", "FP", "--resources", "10", "--budget", "60", "--engine"]
        ) == 0
        assert "campaign:" in capsys.readouterr().out

    def test_campaign_stability_flag(self, capsys):
        assert main(
            ["campaign", "FP", "--resources", "10", "--budget", "60",
             "--stability", "sharded"]
        ) == 0
        assert "campaign:" in capsys.readouterr().out

    def test_ingest_synthetic(self, capsys):
        assert main(
            ["ingest", "--resources", "20", "--max-events", "800", "--shards", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "ingested 800 events" in output
        assert "resources: 20" in output

    def test_ingest_dataset_with_checkpoint_and_resume(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        assert main(["generate", str(corpus), "--resources", "6", "--seed", "2"]) == 0
        checkpoint = tmp_path / "ckpt"
        assert main(
            ["ingest", str(corpus), "--checkpoint", str(checkpoint)]
        ) == 0
        output = capsys.readouterr().out
        assert "checkpoint written" in output
        assert (checkpoint / "manifest.json").exists()
        posts_line = next(l for l in output.splitlines() if l.startswith("resources:"))
        # resuming over the same corpus skips the already-ingested prefix
        # instead of double-counting it
        assert main(["ingest", str(corpus), "--resume", str(checkpoint)]) == 0
        output = capsys.readouterr().out
        assert "resuming checkpoint" in output
        assert "ingested 0 events" in output
        assert posts_line in output  # post totals unchanged

    def test_ingest_resume_continues_longer_stream(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck"
        assert main(
            ["ingest", "--resources", "10", "--max-events", "300",
             "--checkpoint", str(checkpoint)]
        ) == 0
        capsys.readouterr()
        # same seed, longer stream: resume ingests only the new suffix
        assert main(
            ["ingest", "--resume", str(checkpoint), "--resources", "10",
             "--max-events", "450"]
        ) == 0
        output = capsys.readouterr().out
        assert "after 300 events" in output
        assert "ingested 150 events" in output
        assert "posts: 450" in output

    def test_health_generated(self, capsys):
        assert main(["health", "--resources", "12"]) == 0
        assert "corpus health" in capsys.readouterr().out

    def test_health_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        assert main(["generate", str(path), "--resources", "6"]) == 0
        capsys.readouterr()
        assert main(["health", str(path)]) == 0
        assert "corpus health" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_ingest_telemetry_prints_report(self, capsys):
        assert main(
            ["ingest", "--resources", "10", "--max-events", "400", "--telemetry"]
        ) == 0
        output = capsys.readouterr().out
        assert "ingested 400 events" in output  # the summary still leads
        assert "latency (ms)" in output
        assert "engine.events" in output

    def test_no_report_without_flag(self, capsys):
        assert main(["ingest", "--resources", "10", "--max-events", "400"]) == 0
        output = capsys.readouterr().out
        assert "latency (ms)" not in output

    def test_allocate_telemetry(self, capsys):
        assert main(
            ["allocate", "FP", "--budget", "40", "--resources", "10", "--telemetry"]
        ) == 0
        output = capsys.readouterr().out
        assert "alloc.choose_calls" in output

    def test_campaign_telemetry(self, capsys):
        assert main(
            ["campaign", "FP", "--resources", "10", "--budget", "50", "--telemetry"]
        ) == 0
        output = capsys.readouterr().out
        assert "campaign.epochs" in output
        assert "workers.offers" in output

    def test_telemetry_out_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["ingest", "--resources", "10", "--max-events", "400",
             "--telemetry-out", str(trace)]
        ) == 0
        capsys.readouterr()
        import json

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(event["name"] == "api.run" for event in events)


class TestStatsCommand:
    def test_renders_run_result_json(self, tmp_path, capsys):
        import repro.api as api
        from repro.api import IngestSpec, TelemetrySpec

        result = api.run(
            IngestSpec(resources=8, max_events=200, telemetry=TelemetrySpec())
        )
        path = tmp_path / "result.json"
        path.write_text(result.to_json())
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "engine.events" in output
        assert "latency (ms)" in output

    def test_renders_trace_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["ingest", "--resources", "10", "--max-events", "400",
             "--telemetry-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        assert "api.run" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_non_telemetry_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        assert main(["stats", str(path)]) == 1
        assert "not telemetry data" in capsys.readouterr().err


class TestPacksCommands:
    def test_list_shows_every_registered_pack(self, capsys):
        from repro.packs import PACKS

        assert main(["packs", "list"]) == 0
        output = capsys.readouterr().out
        for name in PACKS.names():
            assert name in output

    def test_show_prints_parameters_and_source(self, capsys):
        assert main(["packs", "show", "adverse-selection"]) == 0
        output = capsys.readouterr().out
        assert "incentive" in output
        assert "Adverse Selection" in output
        assert "drop flagged" in output

    def test_show_unknown_pack_fails_with_listing(self, capsys):
        assert main(["packs", "show", "nope"]) == 1
        err = capsys.readouterr().err
        assert "registered packs" in err

    def test_build_prints_quality_report(self, capsys):
        assert main(
            ["packs", "build", "capped-vocab", "--seed", "3",
             "--param", "n=10", "--param", "cap=4"]
        ) == 0
        output = capsys.readouterr().out
        assert "built capped-vocab seed=3" in output
        assert "quality [drop]" in output
        assert "fingerprint:" in output

    def test_build_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "pack.jsonl"
        assert main(
            ["packs", "build", "tiny", "--output", str(out)]
        ) == 0
        assert out.exists()
        assert "wrote corpus" in capsys.readouterr().out

    def test_build_string_param(self, capsys):
        assert main(
            ["packs", "build", "incentive-framing",
             "--param", "n=8", "--param", "framing=lottery"]
        ) == 0
        assert "incentive-framing" in capsys.readouterr().out

    def test_build_bad_param_fails_cleanly(self, capsys):
        assert main(
            ["packs", "build", "tiny", "--param", "bogus=1"]
        ) == 1
        assert "does not declare" in capsys.readouterr().err

    def test_build_malformed_param_pair_exits(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["packs", "build", "tiny", "--param", "noequals"])
