"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--resources", "9"])
        assert args.command == "generate"
        assert args.resources == 9

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_generate_and_analyze(self, tmp_path, capsys):
        path = tmp_path / "corpus.jsonl"
        assert main(["generate", str(path), "--resources", "8", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "wrote 8 resources" in output
        assert main(["analyze", str(path)]) == 0
        output = capsys.readouterr().out
        assert "stable points" in output

    def test_generate_universe(self, tmp_path, capsys):
        path = tmp_path / "universe.jsonl"
        assert main(["generate", str(path), "--resources", "40", "--universe"]) == 0
        assert "40 resources" in capsys.readouterr().out

    def test_analyze_without_dataset_prints_intro_stats(self, capsys):
        assert main(["analyze", "--resources", "25", "--seed", "7"]) == 0
        assert "Section I statistics" in capsys.readouterr().out

    def test_allocate(self, capsys):
        assert main(["allocate", "FP", "--budget", "60", "--resources", "15"]) == 0
        output = capsys.readouterr().out
        assert "FP:" in output and "quality" in output

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        output = capsys.readouterr().out
        assert "0.953" in output

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "stable point" in capsys.readouterr().out

    def test_experiment_fig6a_small(self, capsys):
        assert main(["experiment", "fig6a", "--resources", "15", "--seed", "11"]) == 0
        output = capsys.readouterr().out
        assert "FP-MU" in output and "DP" in output

    def test_experiment_fig1b(self, capsys):
        assert main(["experiment", "fig1b", "--resources", "500"]) == 0
        assert "slope" in capsys.readouterr().out

    def test_campaign(self, capsys):
        assert main(
            ["campaign", "FP", "--resources", "12", "--budget", "80", "--workers", "4"]
        ) == 0
        output = capsys.readouterr().out
        assert "campaign:" in output

    def test_campaign_without_adaptive_stop(self, capsys):
        assert main(
            [
                "campaign",
                "FP",
                "--resources",
                "10",
                "--budget",
                "50",
                "--no-adaptive-stop",
            ]
        ) == 0
        assert "0 resources adaptively stopped" in capsys.readouterr().out

    def test_health_generated(self, capsys):
        assert main(["health", "--resources", "12"]) == 0
        assert "corpus health" in capsys.readouterr().out

    def test_health_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        assert main(["generate", str(path), "--resources", "6"]) == 0
        capsys.readouterr()
        assert main(["health", str(path)]) == 0
        assert "corpus health" in capsys.readouterr().out
