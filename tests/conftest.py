"""Shared fixtures: the paper's running example and small corpora.

Expensive corpora are session-scoped; tests must not mutate them.

Setting ``REPRO_TEST_SHARD_WORKERS=N`` reruns every test that builds a
sharded stability monitor on an N-worker pool (with the inline cutoff
zeroed, so the pool genuinely engages); ``REPRO_TEST_SHARD_BACKEND``
picks the executor (default ``thread``, CI also runs ``process``).  CI's
pooled legs use this to drive the campaign/monitor suite through
parallel shard ingestion on every PR; since parallel ingestion is
trace-identical to serial, the whole suite must still pass untouched.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.experiments import TEST_SCALE, ExperimentHarness
from repro.simulate import case_study_scenario, tiny_scenario

_FORCED_SHARD_WORKERS = int(os.environ.get("REPRO_TEST_SHARD_WORKERS", "0") or "0")
_FORCED_SHARD_BACKEND = os.environ.get("REPRO_TEST_SHARD_BACKEND", "thread")

if _FORCED_SHARD_WORKERS > 0:  # pragma: no cover - exercised by the CI legs
    from repro.allocation.monitor import ShardedBankStabilityMonitor

    _original_sharded_init = ShardedBankStabilityMonitor.__init__

    def _pooled_sharded_init(self, *args, **kwargs):
        kwargs["executor"] = _FORCED_SHARD_BACKEND
        kwargs["workers"] = _FORCED_SHARD_WORKERS
        _original_sharded_init(self, *args, **kwargs)
        self.parallel_min_events = 0

    ShardedBankStabilityMonitor.__init__ = _pooled_sharded_init


# ----------------------------------------------------------------------
# the paper's running example (Tables I, II, IV)
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def paper_r1_posts() -> list[Post]:
    """r1 = Google Earth: three initial posts + the two future posts."""
    return [
        Post.of("google", "earth", timestamp=1.0),
        Post.of("google", "geographic", timestamp=2.0),
        Post.of("earth", timestamp=3.0),
        Post.of("geographic", "earth", timestamp=4.0),
        Post.of("google", "geographic", timestamp=5.0),
    ]


@pytest.fixture(scope="session")
def paper_r2_posts() -> list[Post]:
    """r2 = Picasa: two initial posts + the two future posts."""
    return [
        Post.of("pictures", timestamp=1.0),
        Post.of("pictures", timestamp=2.0),
        Post.of("google", "pictures", timestamp=3.0),
        Post.of("google", timestamp=4.0),
    ]


@pytest.fixture(scope="session")
def paper_stable_rfds() -> tuple[dict[str, float], dict[str, float]]:
    """Table II's stable rfds (the paper's rounded values)."""
    return (
        {"google": 0.25, "geographic": 0.25, "earth": 0.5},
        {"google": 0.33, "pictures": 0.67},
    )


@pytest.fixture(scope="session")
def paper_dataset(paper_r1_posts, paper_r2_posts) -> TaggingDataset:
    """The two running-example resources as a dataset (cutoff at t=3)."""
    resources = ResourceSet(
        [
            Resource("r1", PostSequence(paper_r1_posts), title="Google Earth"),
            Resource("r2", PostSequence(paper_r2_posts), title="Picasa"),
        ]
    )
    return TaggingDataset(resources, name="running-example")


# ----------------------------------------------------------------------
# synthetic corpora
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_corpus():
    """A ~25-resource unfiltered corpus."""
    return tiny_scenario(seed=5)


@pytest.fixture(scope="session")
def test_harness() -> ExperimentHarness:
    """A stability-filtered corpus wrapped in the experiment harness."""
    return ExperimentHarness.from_scale(TEST_SCALE)


@pytest.fixture(scope="session")
def case_scenario():
    """The Tables VI/VII engineered scenario."""
    return case_study_scenario(seed=1)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
