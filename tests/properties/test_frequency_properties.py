"""Property-based tests for the frequency engine and similarity metrics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import TagFrequencyTable, cosine, dice, jaccard, jensen_shannon
from repro.core.similarity import SIMILARITY_METRICS

# Posts over a small tag alphabet: concentration creates interesting overlap.
tag = st.sampled_from([f"t{i}" for i in range(8)])
post = st.frozensets(tag, min_size=1, max_size=4)
posts = st.lists(post, min_size=1, max_size=40)

# Weights are either exactly zero or of practical magnitude: rfd entries
# are bounded below by 1/total-tag-assignments, so denormal-underflow
# regimes (w**2 == 0.0 for w ~ 1e-200) are out of scope.
sparse_vector = st.dictionaries(
    tag,
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
    ),
    max_size=8,
)


class TestFrequencyInvariants:
    @given(posts)
    def test_rfd_is_a_distribution(self, post_list):
        table = TagFrequencyTable()
        for p in post_list:
            table.add_post(p)
        rfd = table.rfd()
        assert all(v > 0 for v in rfd.values())
        assert math.isclose(sum(rfd.values()), 1.0, rel_tol=1e-9)

    @given(posts)
    def test_frequencies_bounded_by_post_count(self, post_list):
        table = TagFrequencyTable()
        for p in post_list:
            table.add_post(p)
        k = table.num_posts
        assert all(0 < table.frequency(t) <= k for t in table.counts())

    @given(posts)
    def test_adjacent_similarity_in_unit_interval(self, post_list):
        table = TagFrequencyTable()
        similarities = [table.add_post(p) for p in post_list]
        assert all(0.0 <= s <= 1.0 for s in similarities)
        assert similarities[0] == 0.0

    @given(posts)
    def test_incremental_similarity_matches_rfd_cosine(self, post_list):
        table = TagFrequencyTable()
        previous = {}
        for p in post_list:
            reported = table.add_post(p)
            current = table.rfd()
            assert math.isclose(reported, cosine(previous, current), abs_tol=1e-9)
            previous = current

    @given(posts, sparse_vector)
    def test_cosine_to_agrees_with_cosine(self, post_list, vector):
        table = TagFrequencyTable()
        for p in post_list:
            table.add_post(p)
        assert math.isclose(
            table.cosine_to(vector), cosine(table.rfd(), vector), abs_tol=1e-9
        )

    @given(posts)
    def test_total_assignments_is_sum_of_post_sizes(self, post_list):
        table = TagFrequencyTable()
        for p in post_list:
            table.add_post(p)
        assert table.total_tag_assignments == sum(len(p) for p in post_list)


class TestSimilarityInvariants:
    @given(sparse_vector, sparse_vector)
    def test_all_metrics_bounded_and_symmetric(self, u, v):
        for metric in SIMILARITY_METRICS.values():
            score = metric(u, v)
            assert 0.0 <= score <= 1.0
            assert math.isclose(score, metric(v, u), abs_tol=1e-12)

    @given(sparse_vector)
    def test_self_similarity_is_one_for_nonzero(self, u):
        positive = {t: w for t, w in u.items() if w > 0}
        if not positive:
            return
        assert math.isclose(cosine(positive, positive), 1.0, abs_tol=1e-9)
        assert math.isclose(jaccard(positive, positive), 1.0, abs_tol=1e-9)
        assert math.isclose(dice(positive, positive), 1.0, abs_tol=1e-9)
        assert math.isclose(jensen_shannon(positive, positive), 1.0, abs_tol=1e-9)

    @given(sparse_vector, sparse_vector, st.floats(min_value=0.01, max_value=50.0))
    def test_cosine_scale_invariance(self, u, v, factor):
        scaled = {t: w * factor for t, w in u.items()}
        assert math.isclose(cosine(u, v), cosine(scaled, v), abs_tol=1e-9)

    @given(sparse_vector)
    def test_zero_vector_similarity_is_zero(self, u):
        assert cosine(u, {}) == 0.0
        assert cosine({}, u) == 0.0
