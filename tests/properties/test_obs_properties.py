"""Property-based tests for the streaming latency histogram.

The histogram's contract is sharp: every quantile estimate must lie
within one log-bucket's relative error (a factor of :data:`GROWTH`) of
the *exact* empirical quantile under numpy's ``inverted_cdf`` rank
convention, and merging two histograms must be exactly the same as
recording the union of their samples.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import GROWTH, LatencyHistogram

# Durations spanning the regular bucket range (1 µs .. 100 s, in ms);
# under/overflow clamping is covered separately with explicit extremes.
durations = st.floats(min_value=1e-3, max_value=1e5)
samples = st.lists(durations, min_size=1, max_size=300)
quantiles = st.sampled_from([0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0])

#: One bucket's relative error, with float-boundary slack.
TOLERANCE = GROWTH * (1.0 + 1e-9)


def filled(values) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for value in values:
        histogram.record(value)
    return histogram


class TestQuantileAccuracy:
    @given(samples, quantiles)
    @settings(max_examples=200)
    def test_within_one_bucket_of_exact(self, values, q):
        histogram = filled(values)
        exact = float(np.percentile(values, q * 100.0, method="inverted_cdf"))
        estimate = histogram.quantile(q)
        assert max(estimate / exact, exact / estimate) <= TOLERANCE

    @given(samples)
    def test_quantiles_monotone(self, values):
        histogram = filled(values)
        grid = [histogram.quantile(q / 20.0) for q in range(21)]
        assert all(a <= b + 1e-12 for a, b in zip(grid, grid[1:]))

    @given(samples)
    def test_count_and_mean_exact(self, values):
        histogram = filled(values)
        assert histogram.count == len(values)
        assert math.isclose(
            histogram.mean, sum(values) / len(values), rel_tol=1e-9, abs_tol=1e-12
        )
        assert histogram.min == min(values)
        assert histogram.max == max(values)


class TestMergeIsUnion:
    @given(samples, samples)
    @settings(max_examples=100)
    def test_merge_equals_recording_union(self, a, b):
        merged = filled(a)
        merged.merge(filled(b))
        union = filled(a + b)
        assert merged.counts == union.counts
        assert merged.count == union.count
        assert math.isclose(merged.total, union.total, rel_tol=1e-9)
        assert merged.min == union.min
        assert merged.max == union.max

    @given(samples, samples, quantiles)
    @settings(max_examples=100)
    def test_merged_quantiles_still_within_tolerance(self, a, b, q):
        merged = filled(a)
        merged.merge(filled(b))
        values = a + b
        exact = float(np.percentile(values, q * 100.0, method="inverted_cdf"))
        estimate = merged.quantile(q)
        assert max(estimate / exact, exact / estimate) <= TOLERANCE

    @given(samples)
    def test_merge_with_empty_is_identity(self, values):
        histogram = filled(values)
        before = (list(histogram.counts), histogram.count, histogram.total)
        histogram.merge(LatencyHistogram())
        assert (list(histogram.counts), histogram.count, histogram.total) == before
