"""Property-based tests for Kendall's τ-b against scipy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

scipy_stats = pytest.importorskip("scipy.stats")

from repro.analysis import kendall_tau  # noqa: E402

paired = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=2,
    max_size=150,
)

tied_paired = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=2, max_size=150
)


class TestKendallProperties:
    @given(paired)
    @settings(max_examples=60)
    def test_matches_scipy_continuous(self, pairs):
        x = np.array([a for a, _ in pairs])
        y = np.array([b for _, b in pairs])
        expected = scipy_stats.kendalltau(x, y).statistic
        ours = kendall_tau(x, y)
        if math.isnan(expected):
            assert math.isnan(ours)
        else:
            assert math.isclose(ours, expected, abs_tol=1e-9)

    @given(tied_paired)
    @settings(max_examples=60)
    def test_matches_scipy_with_ties(self, pairs):
        x = np.array([a for a, _ in pairs], dtype=float)
        y = np.array([b for _, b in pairs], dtype=float)
        expected = scipy_stats.kendalltau(x, y).statistic
        ours = kendall_tau(x, y)
        if math.isnan(expected):
            assert math.isnan(ours)
        else:
            assert math.isclose(ours, expected, abs_tol=1e-9)

    @given(paired)
    @settings(max_examples=30)
    def test_symmetry(self, pairs):
        x = np.array([a for a, _ in pairs])
        y = np.array([b for _, b in pairs])
        forward = kendall_tau(x, y)
        backward = kendall_tau(y, x)
        if math.isnan(forward):
            assert math.isnan(backward)
        else:
            assert math.isclose(forward, backward, abs_tol=1e-9)

    @given(paired)
    @settings(max_examples=30)
    def test_self_correlation_is_one(self, pairs):
        x = np.array([a for a, _ in pairs])
        if len(set(x.tolist())) < 2:
            return
        assert math.isclose(kendall_tau(x, x), 1.0, abs_tol=1e-12)

    @given(paired)
    @settings(max_examples=30)
    def test_negation_flips_sign(self, pairs):
        x = np.array([a for a, _ in pairs])
        y = np.array([b for _, b in pairs])
        tau = kendall_tau(x, y)
        if math.isnan(tau):
            return
        assert math.isclose(kendall_tau(x, -y), -tau, abs_tol=1e-9)
