"""Property-based tests for the StabilityMonitor backends.

The three backends (scalar trackers, the columnar bank, the sharded
bank) must agree on stability under *any* delivery chunking, and
``drain_newly_stable`` must hand out each index exactly once no matter
when it is called.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post
from repro.allocation.monitor import make_monitor

BACKENDS = ("tracker", "engine", "sharded")

tag = st.sampled_from([f"t{i}" for i in range(6)])
post_tags = st.frozensets(tag, min_size=1, max_size=3)

# Thresholds deliberately far from any MA value small integer-count
# vectors can produce: the scalar tracker and the vectorized bank agree
# to ~1 ulp, so a tau landing exactly on an achievable MA (e.g. 0.5 with
# omega=2) would legitimately split the backends at the last bit.
taus = st.sampled_from([0.31415927, 0.54321099, 0.68792341, 0.83791264, 0.96234178])


@st.composite
def delivery_runs(draw):
    """Initial posts plus a chunked delivery schedule over n resources."""
    n = draw(st.integers(min_value=1, max_value=5))
    initial = [
        [
            Post(tags, timestamp=float(t))
            for t, tags in enumerate(draw(st.lists(post_tags, max_size=6)))
        ]
        for _ in range(n)
    ]
    deliveries = draw(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1), post_tags),
            max_size=40,
        )
    )
    posts = [
        (index, Post(tags, timestamp=float(t)))
        for t, (index, tags) in enumerate(deliveries)
    ]
    # random chunk boundaries, including empty chunks
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(posts)), max_size=6
            )
        )
    )
    chunks, start = [], 0
    for boundary in boundaries + [len(posts)]:
        chunks.append(posts[start:boundary])
        start = boundary
    return n, initial, chunks


def build_monitors(omega, tau, n, initial):
    monitors = {
        backend: make_monitor(backend, omega, tau, n_shards=3, flush_events=7)
        for backend in BACKENDS
    }
    for monitor in monitors.values():
        monitor.begin(n, initial)
    return monitors


class TestBackendAgreement:
    @given(delivery_runs(), st.integers(min_value=2, max_value=5), taus)
    @settings(max_examples=60, deadline=None)
    def test_drains_accumulate_identically_under_chunking(self, run, omega, tau):
        """Cumulative drained sets agree across backends at every chunk
        boundary, each index is drained exactly once, and the final
        cumulative set equals every backend's stable_indices()."""
        n, initial, chunks = run
        monitors = build_monitors(omega, tau, n, initial)
        drained = {backend: [] for backend in BACKENDS}
        for backend, monitor in monitors.items():
            drained[backend].extend(monitor.drain_newly_stable())
        for chunk in chunks:
            for backend, monitor in monitors.items():
                monitor.observe_batch(chunk)
                drained[backend].extend(monitor.drain_newly_stable())
            sets = {backend: set(ids) for backend, ids in drained.items()}
            assert sets["tracker"] == sets["engine"] == sets["sharded"]
        for backend, monitor in monitors.items():
            assert len(drained[backend]) == len(set(drained[backend])), (
                f"{backend} drained an index twice"
            )
            assert set(drained[backend]) == set(monitor.stable_indices())

    @given(delivery_runs(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_observed_counts_and_ma_scores_agree(self, run, omega):
        n, initial, chunks = run
        monitors = build_monitors(omega, 0.9, n, initial)
        for chunk in chunks:
            for monitor in monitors.values():
                monitor.observe_batch(chunk)
        tracker = monitors["tracker"]
        for index in range(n):
            expected = tracker.observed_counts(index)
            for backend in ("engine", "sharded"):
                assert monitors[backend].observed_counts(index) == expected
        scores = {backend: monitor.ma_scores() for backend, monitor in monitors.items()}
        for backend in ("engine", "sharded"):
            assert len(scores[backend]) == len(scores["tracker"])
            for got, want in zip(scores[backend], scores["tracker"]):
                if want != want:  # nan: undefined while k < omega
                    assert got != got
                else:
                    assert abs(got - want) < 1e-9
