"""Property-based tests for waste accounting and the trace evaluator."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.waste import salvage_requirement, waste_report, wasted_tasks


@st.composite
def count_state(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    initial = draw(
        st.lists(st.integers(0, 40), min_size=n, max_size=n).map(np.array)
    )
    added = draw(st.lists(st.integers(0, 40), min_size=n, max_size=n).map(np.array))
    stable_points = draw(
        st.lists(st.integers(-1, 50), min_size=n, max_size=n).map(np.array)
    )
    return initial, initial + added, stable_points


class TestWasteProperties:
    @given(count_state())
    def test_wasted_tasks_bounded_by_delivery(self, state):
        initial, final, stable_points = state
        wasted = wasted_tasks(initial, final, stable_points)
        assert 0 <= wasted <= int((final - initial).sum())

    @given(count_state())
    def test_wasted_tasks_zero_when_delivery_stops_at_stable_points(self, state):
        initial, final, stable_points = state
        # Cap each resource's delivery at its stable point: waste-free.
        below = np.where(stable_points >= 0, np.minimum(final, stable_points), final)
        if (below >= initial).all():
            assert wasted_tasks(initial, below, stable_points) == 0

    @given(count_state())
    def test_wasted_tasks_additive_in_steps(self, state):
        initial, final, stable_points = state
        # Splitting the delivery at any midpoint conserves total waste.
        midpoint = (initial + final) // 2
        midpoint = np.maximum(midpoint, initial)
        total = wasted_tasks(initial, final, stable_points)
        first = wasted_tasks(initial, midpoint, stable_points)
        second = wasted_tasks(midpoint, final, stable_points)
        assert total == first + second

    @given(count_state())
    def test_report_consistency(self, state):
        initial, final, stable_points = state
        report = waste_report(final, stable_points)
        assert 0 <= report.over_tagged <= len(final)
        assert 0 <= report.under_tagged <= len(final)
        assert report.total_posts == int(final.sum())
        assert 0.0 <= report.under_tagged_fraction <= 1.0
        if report.total_posts:
            assert 0.0 <= report.wasted_fraction <= 1.0

    @given(count_state(), st.integers(min_value=0, max_value=30))
    def test_salvage_monotone_in_threshold(self, state, threshold):
        initial, final, stable_points = state
        lower = salvage_requirement(final, under_threshold=threshold)
        higher = salvage_requirement(final, under_threshold=threshold + 1)
        assert higher >= lower

    @given(count_state())
    def test_salvage_clears_under_tagging(self, state):
        initial, final, stable_points = state
        needed = salvage_requirement(final)
        # Distribute exactly the salvage posts: nothing stays under-tagged.
        topped = np.maximum(final, 11)
        assert int((topped - final).sum()) == needed
        assert waste_report(topped, stable_points).under_tagged == 0
