"""Property test: the delta-update evaluator equals brute-force rescoring."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.core.frequency import TagFrequencyTable
from repro.core.similarity import cosine
from repro.allocation.budget import AllocationTrace
from repro.analysis.waste import waste_report, wasted_tasks
from repro.experiments.evaluation import GroundTruth, TraceEvaluator


@st.composite
def replay_world(draw):
    """A small corpus (stable by construction) plus a random valid trace."""
    n = draw(st.integers(min_value=1, max_value=4))
    resources = ResourceSet()
    for i in range(n):
        # Concentrated repeating posts stabilise quickly and surely.
        total = draw(st.integers(min_value=30, max_value=50))
        initial = draw(st.integers(min_value=0, max_value=10))
        posts = []
        for j in range(total):
            tags = {f"r{i}-a"} if j % 3 else {f"r{i}-a", f"r{i}-b"}
            timestamp = float(j) if j < initial else 100.0 + j
            posts.append(Post(frozenset(tags), timestamp=timestamp))
        resources.add(Resource(f"r{i}", PostSequence(posts)))
    dataset = TaggingDataset(resources)
    split = dataset.split(50.0)

    # Random delivery order respecting per-resource future capacity.
    capacity = [len(split.future[i]) for i in range(n)]
    length = draw(st.integers(min_value=0, max_value=sum(capacity)))
    order = []
    remaining = list(capacity)
    for _ in range(length):
        eligible = [i for i in range(n) if remaining[i] > 0]
        if not eligible:
            break
        pick = draw(st.sampled_from(eligible))
        remaining[pick] -= 1
        order.append(pick)
    trace = AllocationTrace(
        strategy_name="random",
        n=n,
        budget=len(order),
        order=tuple(order),
        spend=tuple([1] * len(order)),
    )
    checkpoints = sorted(
        set(draw(st.lists(st.integers(0, len(order)), min_size=1, max_size=4)))
    )
    return dataset, split, trace, checkpoints


class TestEvaluatorEquivalence:
    @given(replay_world())
    @settings(max_examples=25, deadline=None)
    def test_series_equals_bruteforce(self, world):
        dataset, split, trace, checkpoints = world
        truth = GroundTruth.build(dataset, omega=5, tau=0.99)
        evaluator = TraceEvaluator(split, truth)
        series = evaluator.evaluate_series(trace, checkpoints)

        for position, budget in enumerate(checkpoints):
            counts = split.initial_counts + trace.prefix_x(budget)
            # quality, recomputed from scratch rfds
            qualities = []
            for i, resource in enumerate(dataset.resources):
                table = TagFrequencyTable.from_posts(
                    resource.sequence.prefix(int(counts[i]))
                )
                qualities.append(cosine(table.rfd(), truth.stable_rfds[i]))
            assert abs(series.quality[position] - np.mean(qualities)) < 1e-9

            report = waste_report(counts, truth.stable_points)
            assert series.over_tagged[position] == report.over_tagged
            assert abs(
                series.under_fraction[position] - report.under_tagged_fraction
            ) < 1e-12
            assert series.wasted[position] == wasted_tasks(
                split.initial_counts, counts, truth.stable_points
            )
