"""Property-based equivalence: StabilityBank == StabilityTracker.

The vectorized engine promises *identical* semantics to the scalar
Appendix C tracker on any interleaved event stream, however the stream
is chopped into batches.  Hypothesis drives random multi-resource
streams, random MA windows and thresholds, and random batch splits, and
pins MA scores to 1e-9 plus exact stable points, counts and stable rfds.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StabilityTracker
from repro.engine import (
    ShardedStabilityBank,
    StabilityBank,
    TagEvent,
    load_checkpoint,
    make_executor,
    save_checkpoint,
)

tag = st.sampled_from([f"t{i}" for i in range(6)])
resource = st.sampled_from([f"r{i}" for i in range(5)])
event = st.builds(
    lambda rid, tags: TagEvent(rid, tuple(sorted(tags))),
    resource,
    st.frozensets(tag, min_size=1, max_size=4),
)
event_streams = st.lists(event, min_size=1, max_size=120)
omegas = st.integers(min_value=2, max_value=6)
taus = st.floats(min_value=0.5, max_value=1.0, exclude_max=True)


def scalar_reference(events, omega, tau):
    trackers = {}
    for item in events:
        tracker = trackers.setdefault(item.resource_id, StabilityTracker(omega, tau))
        tracker.add_post(item.tags)
    return trackers


class TestBankMatchesTracker:
    @given(event_streams, omegas, taus, st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_ma_scores_and_stable_points_match(self, events, omega, tau, batch_size):
        trackers = scalar_reference(events, omega, tau)
        bank = StabilityBank(omega, tau)
        for i in range(0, len(events), batch_size):
            bank.ingest_events(events[i : i + batch_size])

        for rid, tracker in trackers.items():
            scalar_ma, bank_ma = tracker.ma_score, bank.ma_score(rid)
            assert (scalar_ma is None) == (bank_ma is None)
            if scalar_ma is not None:
                assert math.isclose(bank_ma, scalar_ma, abs_tol=1e-9)
            assert bank.stable_point(rid) == tracker.stable_point
            assert bank.counts_of(rid) == tracker.frequency_table().counts()
            if tracker.is_stable:
                scalar_rfd = tracker.stable_rfd
                bank_rfd = bank.stable_rfd(rid)
                assert set(bank_rfd) == set(scalar_rfd)
                for key, value in scalar_rfd.items():
                    assert math.isclose(bank_rfd[key], value, abs_tol=1e-9)

    @given(event_streams, omegas)
    @settings(max_examples=40, deadline=None)
    def test_similarities_match_scalar_recurrence(self, events, omega):
        bank = StabilityBank(omega)
        report = bank.ingest_events(events)
        trackers = {}
        for item, similarity in zip(events, report.similarities):
            tracker = trackers.setdefault(item.resource_id, StabilityTracker(omega))
            assert math.isclose(tracker.add_post(item.tags), similarity, abs_tol=1e-9)

    @given(events=event_streams, omega=omegas, tau=taus)
    @settings(max_examples=25, deadline=None)
    def test_checkpoint_resume_determinism(self, tmp_path_factory, events, omega, tau):
        """save → load → ingest(rest) is bit-identical to never leaving RAM."""
        half = len(events) // 2
        uninterrupted = StabilityBank(omega, tau)
        uninterrupted.ingest_events(events[:half])

        partial = StabilityBank(omega, tau)
        partial.ingest_events(events[:half])
        directory = tmp_path_factory.mktemp("engine-ckpt")
        save_checkpoint(partial, directory)
        resumed = load_checkpoint(directory)

        # same batch schedule after the checkpoint on both sides
        uninterrupted.ingest_events(events[half:])
        resumed.ingest_events(events[half:])

        assert resumed.stable_points() == uninterrupted.stable_points()
        for rid in uninterrupted.resources.items():
            assert resumed.counts_of(rid) == uninterrupted.counts_of(rid)
            # bit-deterministic, not merely close
            assert resumed.ma_score(rid) == uninterrupted.ma_score(rid)
            assert resumed.stable_rfd(rid) == uninterrupted.stable_rfd(rid)


class TestSmallBatchKernel:
    """The scalar fast path is bit-identical to the vectorized pass."""

    @given(
        events=event_streams,
        omega=omegas,
        tau=st.one_of(st.none(), taus),
        batch_size=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_paths_agree_to_the_bit(self, events, omega, tau, batch_size):
        small = StabilityBank(omega, tau)
        small.small_batch_max = 10**9  # force the scalar fast path
        vector = StabilityBank(omega, tau)
        vector.small_batch_max = 0  # force the vectorized pass
        for start in range(0, len(events), batch_size):
            chunk = events[start : start + batch_size]
            report_small = small.ingest_events(chunk)
            report_vector = vector.ingest_events(chunk)
            assert np.array_equal(
                report_small.similarities, report_vector.similarities
            )
            assert report_small.newly_stable == report_vector.newly_stable
            assert report_small.n_tag_assignments == report_vector.n_tag_assignments
        assert small.stable_points() == vector.stable_points()
        for rid in vector.resources.items():
            assert small.counts_of(rid) == vector.counts_of(rid)
            # bit-deterministic, not merely close
            assert small.ma_score(rid) == vector.ma_score(rid)
            assert small.stable_rfd(rid) == vector.stable_rfd(rid)
            assert small.stable_point(rid) == vector.stable_point(rid)
        # internal window state matches too (it seeds future batches)
        count = len(vector.resources)
        assert np.array_equal(small._window_sum[:count], vector._window_sum[:count])
        assert np.array_equal(small._win_len[:count], vector._win_len[:count])
        assert np.array_equal(small._sumsq[:count], vector._sumsq[:count])


class TestExecutorInvariance:
    """Parallel sharded ingestion is invisible: any executor, same bytes."""

    @given(
        events=event_streams,
        omega=omegas,
        tau=taus,
        n_shards=st.integers(min_value=1, max_value=5),
        workers=st.sampled_from([1, 2, 4]),
        batch_size=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_ingest_events_invariant_to_executor(
        self, events, omega, tau, n_shards, workers, batch_size
    ):
        serial = ShardedStabilityBank(n_shards, omega, tau)
        with make_executor("thread", workers) as pool:
            threaded = ShardedStabilityBank(n_shards, omega, tau, executor=pool)
            threaded.parallel_min_events = 0  # force pool dispatch
            for start in range(0, len(events), batch_size):
                chunk = events[start : start + batch_size]
                expected = serial.ingest_events(chunk)
                got = threaded.ingest_events(chunk)
                # similarity vectors are byte-identical, not merely close
                assert np.array_equal(expected.similarities, got.similarities)
                assert got.newly_stable == expected.newly_stable
        assert threaded.stable_points() == serial.stable_points()
        for rid in {e.resource_id for e in events}:
            assert threaded.counts_of(rid) == serial.counts_of(rid)
            assert threaded.ma_score(rid) == serial.ma_score(rid)
