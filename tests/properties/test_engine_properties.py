"""Property-based equivalence: StabilityBank == StabilityTracker.

The vectorized engine promises *identical* semantics to the scalar
Appendix C tracker on any interleaved event stream, however the stream
is chopped into batches.  Hypothesis drives random multi-resource
streams, random MA windows and thresholds, and random batch splits, and
pins MA scores to 1e-9 plus exact stable points, counts and stable rfds.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StabilityTracker
from repro.engine import StabilityBank, TagEvent, load_checkpoint, save_checkpoint

tag = st.sampled_from([f"t{i}" for i in range(6)])
resource = st.sampled_from([f"r{i}" for i in range(5)])
event = st.builds(
    lambda rid, tags: TagEvent(rid, tuple(sorted(tags))),
    resource,
    st.frozensets(tag, min_size=1, max_size=4),
)
event_streams = st.lists(event, min_size=1, max_size=120)
omegas = st.integers(min_value=2, max_value=6)
taus = st.floats(min_value=0.5, max_value=1.0, exclude_max=True)


def scalar_reference(events, omega, tau):
    trackers = {}
    for item in events:
        tracker = trackers.setdefault(item.resource_id, StabilityTracker(omega, tau))
        tracker.add_post(item.tags)
    return trackers


class TestBankMatchesTracker:
    @given(event_streams, omegas, taus, st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_ma_scores_and_stable_points_match(self, events, omega, tau, batch_size):
        trackers = scalar_reference(events, omega, tau)
        bank = StabilityBank(omega, tau)
        for i in range(0, len(events), batch_size):
            bank.ingest_events(events[i : i + batch_size])

        for rid, tracker in trackers.items():
            scalar_ma, bank_ma = tracker.ma_score, bank.ma_score(rid)
            assert (scalar_ma is None) == (bank_ma is None)
            if scalar_ma is not None:
                assert math.isclose(bank_ma, scalar_ma, abs_tol=1e-9)
            assert bank.stable_point(rid) == tracker.stable_point
            assert bank.counts_of(rid) == tracker.frequency_table().counts()
            if tracker.is_stable:
                scalar_rfd = tracker.stable_rfd
                bank_rfd = bank.stable_rfd(rid)
                assert set(bank_rfd) == set(scalar_rfd)
                for key, value in scalar_rfd.items():
                    assert math.isclose(bank_rfd[key], value, abs_tol=1e-9)

    @given(event_streams, omegas)
    @settings(max_examples=40, deadline=None)
    def test_similarities_match_scalar_recurrence(self, events, omega):
        bank = StabilityBank(omega)
        report = bank.ingest_events(events)
        trackers = {}
        for item, similarity in zip(events, report.similarities):
            tracker = trackers.setdefault(item.resource_id, StabilityTracker(omega))
            assert math.isclose(tracker.add_post(item.tags), similarity, abs_tol=1e-9)

    @given(events=event_streams, omega=omegas, tau=taus)
    @settings(max_examples=25, deadline=None)
    def test_checkpoint_resume_determinism(self, tmp_path_factory, events, omega, tau):
        """save → load → ingest(rest) is bit-identical to never leaving RAM."""
        half = len(events) // 2
        uninterrupted = StabilityBank(omega, tau)
        uninterrupted.ingest_events(events[:half])

        partial = StabilityBank(omega, tau)
        partial.ingest_events(events[:half])
        directory = tmp_path_factory.mktemp("engine-ckpt")
        save_checkpoint(partial, directory)
        resumed = load_checkpoint(directory)

        # same batch schedule after the checkpoint on both sides
        uninterrupted.ingest_events(events[half:])
        resumed.ingest_events(events[half:])

        assert resumed.stable_points() == uninterrupted.stable_points()
        for rid in uninterrupted.resources.items():
            assert resumed.counts_of(rid) == uninterrupted.counts_of(rid)
            # bit-deterministic, not merely close
            assert resumed.ma_score(rid) == uninterrupted.ma_score(rid)
            assert resumed.stable_rfd(rid) == uninterrupted.stable_rfd(rid)
