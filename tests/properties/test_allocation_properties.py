"""Property-based tests for DP optimality and strategy invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import (
    FewestPostsFirst,
    HybridFPMU,
    IncentiveRunner,
    MostUnstableFirst,
    RoundRobin,
    brute_force_optimal,
    solve_dp,
    solve_dp_reference,
    solve_greedy,
    solve_weighted_dp,
)

gain_table = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=5
).map(np.array)
instances = st.lists(gain_table, min_size=1, max_size=4)


@st.composite
def dp_instance(draw):
    gains = draw(instances)
    capacity = sum(len(g) - 1 for g in gains)
    budget = draw(st.integers(min_value=0, max_value=capacity))
    return gains, budget


class TestDPProperties:
    @given(dp_instance())
    @settings(max_examples=60)
    def test_dp_matches_brute_force(self, instance):
        gains, budget = instance
        expected = brute_force_optimal(gains, budget).value
        assert abs(solve_dp(gains, budget).value - expected) < 1e-9
        assert abs(solve_dp_reference(gains, budget).value - expected) < 1e-9

    @given(dp_instance())
    @settings(max_examples=60)
    def test_dp_assignment_realises_value(self, instance):
        gains, budget = instance
        result = solve_dp(gains, budget)
        assert result.x.sum() == budget
        assert all(0 <= x <= len(g) - 1 for x, g in zip(result.x, gains))
        realised = sum(float(g[x]) for g, x in zip(gains, result.x))
        assert abs(realised - result.value) < 1e-9

    @given(dp_instance())
    @settings(max_examples=40)
    def test_greedy_never_beats_dp(self, instance):
        gains, budget = instance
        assert solve_greedy(gains, budget).value <= solve_dp(gains, budget).value + 1e-9

    @given(dp_instance())
    @settings(max_examples=40)
    def test_weighted_dp_with_unit_costs_relaxes_exact_spend(self, instance):
        gains, budget = instance
        weighted = solve_weighted_dp(gains, [1] * len(gains), budget)
        exact = solve_dp(gains, budget)
        assert weighted.value >= exact.value - 1e-9
        assert weighted.x.sum() <= budget

    @given(dp_instance())
    @settings(max_examples=40)
    def test_dp_value_monotone_under_budget_when_padded(self, instance):
        # With a slack resource of constant gains, a bigger budget can
        # never hurt: the DP can park surplus tasks there.
        gains, budget = instance
        padded = list(gains) + [np.zeros(budget + 2)]
        low = solve_dp(padded, budget)
        high = solve_dp(padded, budget + 1)
        assert high.value >= low.value - 1e-9


# ----------------------------------------------------------------------
# strategy invariants on randomly generated replay splits
# ----------------------------------------------------------------------


@st.composite
def replay_split(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    resources = ResourceSet()
    for i in range(n):
        initial = draw(st.integers(min_value=0, max_value=8))
        future = draw(st.integers(min_value=0, max_value=10))
        timestamps = [float(j + 1) for j in range(initial)]
        timestamps += [100.0 + j for j in range(future)]
        posts = [
            Post.of(f"r{i}", f"x{j % 3}", timestamp=t) for j, t in enumerate(timestamps)
        ]
        if posts:
            resources.add(Resource(f"r{i}", PostSequence(posts)))
        else:
            resources.add(Resource(f"r{i}", PostSequence([])))
    return TaggingDataset(resources).split(50.0)


strategy_factories = st.sampled_from(
    [RoundRobin, FewestPostsFirst, lambda: MostUnstableFirst(omega=3), lambda: HybridFPMU(omega=3)]
)


class TestStrategyProperties:
    @given(replay_split(), st.integers(min_value=0, max_value=30), strategy_factories)
    @settings(max_examples=60, deadline=None)
    def test_budget_conservation(self, split, budget, factory):
        runner = IncentiveRunner.replay(split)
        trace = runner.run(factory(), budget)
        assert trace.budget_spent <= budget
        assert trace.x.sum() == trace.tasks_delivered
        # Never deliver more than a resource's future posts.
        for i in range(split.n):
            assert trace.x[i] <= len(split.future[i])

    @given(replay_split(), st.integers(min_value=0, max_value=30), strategy_factories)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, split, budget, factory):
        runner = IncentiveRunner.replay(split)
        assert runner.run(factory(), budget).order == runner.run(factory(), budget).order

    @given(replay_split(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_fp_invariant_minimum_count(self, split, budget):
        runner = IncentiveRunner.replay(split)
        trace = runner.run(FewestPostsFirst(), budget)
        counts = split.initial_counts.astype(int).copy()
        exhausted = [len(split.future[i]) for i in range(split.n)]
        delivered = [0] * split.n
        for index in trace.order:
            # The chosen resource has the minimum count among those with
            # remaining future posts.
            eligible = [
                counts[i]
                for i in range(split.n)
                if delivered[i] < exhausted[i]
            ]
            assert counts[index] == min(eligible)
            counts[index] += 1
            delivered[index] += 1
