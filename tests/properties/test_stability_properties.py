"""Property-based tests for MA scores and quality profiles."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Post, QualityProfile, StabilityTracker, TagFrequencyTable, cosine
from repro.core.stability import ma_score_direct, ma_series

tag = st.sampled_from([f"t{i}" for i in range(8)])
post_tags = st.frozensets(tag, min_size=1, max_size=4)
post_lists = st.lists(post_tags, min_size=1, max_size=35)
omegas = st.integers(min_value=2, max_value=8)


def to_posts(tag_sets) -> list[Post]:
    return [Post(tags, timestamp=float(i)) for i, tags in enumerate(tag_sets)]


class TestMAInvariants:
    @given(post_lists, omegas)
    def test_ma_bounded(self, tag_sets, omega):
        tracker = StabilityTracker(omega)
        for tags in tag_sets:
            tracker.add_post(tags)
            score = tracker.ma_score
            if score is not None:
                assert 0.0 <= score <= 1.0 + 1e-12

    @given(post_lists, omegas)
    def test_ma_defined_iff_window_filled(self, tag_sets, omega):
        tracker = StabilityTracker(omega)
        for count, tags in enumerate(tag_sets, start=1):
            tracker.add_post(tags)
            assert (tracker.ma_score is None) == (count < omega)

    @given(post_lists, omegas)
    @settings(max_examples=40)
    def test_incremental_equals_direct_everywhere(self, tag_sets, omega):
        posts = to_posts(tag_sets)
        for k, score in ma_series(posts, omega):
            assert math.isclose(score, ma_score_direct(posts, k, omega), abs_tol=1e-9)

    @given(post_lists, omegas, st.floats(min_value=0.5, max_value=1.0, exclude_max=True))
    def test_stable_point_is_first_crossing(self, tag_sets, omega, tau):
        tracker = StabilityTracker(omega, tau)
        posts = to_posts(tag_sets)
        for post in posts:
            tracker.add_post(post.tags)
        if tracker.stable_point is not None:
            series = dict(ma_series(posts, omega))
            k = tracker.stable_point
            assert series[k] > tau
            for earlier in range(omega, k):
                assert series[earlier] <= tau


class TestQualityProfileInvariants:
    @given(post_lists)
    def test_profile_matches_definition_everywhere(self, tag_sets):
        posts = to_posts(tag_sets)
        # Use the final rfd as the reference distribution.
        reference = TagFrequencyTable.from_posts(posts).rfd()
        profile = QualityProfile(posts, reference)
        table = TagFrequencyTable()
        assert profile.quality(0) == 0.0
        for k, post in enumerate(posts, start=1):
            table.add_post(post.tags)
            expected = cosine(table.rfd(), reference)
            assert math.isclose(profile.quality(k), expected, abs_tol=1e-9)

    @given(post_lists)
    def test_quality_at_reference_point_is_one(self, tag_sets):
        posts = to_posts(tag_sets)
        reference = TagFrequencyTable.from_posts(posts).rfd()
        profile = QualityProfile(posts, reference)
        assert math.isclose(profile.quality(len(posts)), 1.0, abs_tol=1e-9)

    @given(post_lists)
    def test_qualities_bounded(self, tag_sets):
        posts = to_posts(tag_sets)
        reference = TagFrequencyTable.from_posts(posts).rfd()
        profile = QualityProfile(posts, reference)
        assert all(0.0 <= q <= 1.0 for q in profile.qualities)
