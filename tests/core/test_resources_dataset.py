"""Tests for resources, resource sets, datasets and splits."""

import pytest

from repro.core import (
    DataModelError,
    Post,
    PostSequence,
    Resource,
    ResourceSet,
    TaggingDataset,
)


def make_resource(rid: str, timestamps: list[float]) -> Resource:
    sequence = PostSequence(
        [Post.of(f"tag-{rid}", "shared", timestamp=t) for t in timestamps]
    )
    return Resource(rid, sequence, title=f"{rid}.com", category=("science", "physics"))


class TestResource:
    def test_requires_id(self):
        with pytest.raises(DataModelError):
            Resource("")

    def test_display_name_prefers_title(self):
        assert make_resource("r1", [1.0]).display_name == "r1.com"
        assert Resource("r2").display_name == "r2"

    def test_category_coerced_to_tuple(self):
        resource = Resource("r1", category=["a", "b"])  # type: ignore[arg-type]
        assert resource.category == ("a", "b")

    def test_num_posts(self):
        assert make_resource("r1", [1.0, 2.0]).num_posts == 2


class TestResourceSet:
    def test_positional_and_id_access(self):
        resources = ResourceSet([make_resource("a", [1.0]), make_resource("b", [1.0])])
        assert resources[0].resource_id == "a"
        assert resources.by_id("b").resource_id == "b"
        assert resources.index_of("b") == 1
        assert "a" in resources and "zzz" not in resources

    def test_duplicate_ids_rejected(self):
        resources = ResourceSet([make_resource("a", [1.0])])
        with pytest.raises(DataModelError):
            resources.add(make_resource("a", [1.0]))

    def test_subset_preserves_order(self):
        resources = ResourceSet([make_resource(r, [1.0]) for r in "abcd"])
        subset = resources.subset([2, 0])
        assert subset.ids == ("c", "a")


class TestDatasetStats:
    def test_total_posts_and_distribution(self):
        dataset = TaggingDataset(
            ResourceSet([make_resource("a", [1.0]), make_resource("b", [1.0, 2.0])])
        )
        assert dataset.total_posts == 3
        assert dataset.posts_per_resource().tolist() == [1, 2]
        assert dataset.posts_distribution() == {1: 1, 2: 1}

    def test_distinct_tags(self):
        dataset = TaggingDataset(
            ResourceSet([make_resource("a", [1.0]), make_resource("b", [1.0])])
        )
        assert dataset.distinct_tags() == {"tag-a", "tag-b", "shared"}

    def test_sample_bounds(self, rng):
        dataset = TaggingDataset(ResourceSet([make_resource(r, [1.0]) for r in "abc"]))
        assert len(dataset.sample(2, rng)) == 2
        with pytest.raises(DataModelError):
            dataset.sample(10, rng)


class TestSplit:
    def build(self) -> TaggingDataset:
        return TaggingDataset(
            ResourceSet(
                [
                    make_resource("a", [1.0, 2.0, 10.0, 20.0]),
                    make_resource("b", [1.5, 12.0, 15.0]),
                ]
            )
        )

    def test_initial_counts(self):
        split = self.build().split(cutoff=5.0)
        assert split.initial_counts.tolist() == [2, 1]

    def test_future_posts_in_order(self):
        split = self.build().split(cutoff=5.0)
        assert [p.timestamp for p in split.future[0]] == [10.0, 20.0]
        assert [p.timestamp for p in split.future[1]] == [12.0, 15.0]
        assert split.total_future_posts == 4

    def test_free_choice_order_is_global_timestamp_order(self):
        split = self.build().split(cutoff=5.0)
        # future timestamps: a@10, b@12, b@15, a@20
        assert list(split.free_choice_order) == [0, 1, 1, 0]

    def test_initial_posts_view(self):
        split = self.build().split(cutoff=5.0)
        assert [p.timestamp for p in split.initial_posts(0)] == [1.0, 2.0]

    def test_subset_reindexes_free_choice_order(self):
        split = self.build().split(cutoff=5.0)
        subset = split.subset([1])
        assert subset.n == 1
        assert list(subset.free_choice_order) == [0, 0]
        assert subset.initial_counts.tolist() == [1]


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        dataset = TaggingDataset(
            ResourceSet([make_resource("a", [1.0, 2.0]), make_resource("b", [3.0])]),
            name="rt",
        )
        path = tmp_path / "corpus.jsonl"
        dataset.to_jsonl(path)
        loaded = TaggingDataset.from_jsonl(path)
        assert len(loaded) == 2
        assert loaded.resources.by_id("a").sequence == dataset.resources.by_id("a").sequence
        assert loaded.resources.by_id("b").title == "b.com"
        assert loaded.resources.by_id("b").category == ("science", "physics")

    def test_malformed_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a"}\n')
        with pytest.raises(DataModelError):
            TaggingDataset.from_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        dataset = TaggingDataset(ResourceSet([make_resource("a", [1.0])]))
        path = tmp_path / "corpus.jsonl"
        dataset.to_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(TaggingDataset.from_jsonl(path)) == 1
