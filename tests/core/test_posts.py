"""Tests for posts and post sequences (Definitions 1–2)."""

import pytest

from repro.core import DataModelError, Post, PostSequence


class TestPost:
    def test_post_holds_normalised_tags(self):
        post = Post.of("Google", " EARTH ")
        assert post.tags == frozenset({"google", "earth"})

    def test_post_requires_at_least_one_tag(self):
        with pytest.raises(DataModelError):
            Post(frozenset())

    def test_post_of_rejects_empty_tag(self):
        with pytest.raises(DataModelError):
            Post.of("")

    def test_post_collapses_duplicate_tags(self):
        post = Post.of("maps", "maps")
        assert len(post) == 1

    def test_post_accepts_plain_iterables(self):
        post = Post({"a", "b"})
        assert isinstance(post.tags, frozenset)

    def test_post_is_hashable_and_comparable(self):
        a = Post.of("x", timestamp=1.0)
        b = Post.of("x", timestamp=1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_post_iteration_is_sorted(self):
        post = Post.of("zebra", "apple", "mango")
        assert list(post) == ["apple", "mango", "zebra"]

    def test_post_contains(self):
        post = Post.of("google")
        assert "google" in post
        assert "earth" not in post

    def test_post_carries_tagger_identity(self):
        post = Post.of("a", tagger="alice")
        assert post.tagger == "alice"


class TestPostSequence:
    def test_sequence_preserves_order(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert list(sequence) == paper_r1_posts

    def test_sequence_rejects_decreasing_timestamps(self):
        sequence = PostSequence([Post.of("a", timestamp=2.0)])
        with pytest.raises(DataModelError):
            sequence.append(Post.of("b", timestamp=1.0))

    def test_sequence_allows_equal_timestamps(self):
        sequence = PostSequence([Post.of("a", timestamp=1.0)])
        sequence.append(Post.of("b", timestamp=1.0))
        assert len(sequence) == 2

    def test_sequence_rejects_non_posts(self):
        sequence = PostSequence()
        with pytest.raises(DataModelError):
            sequence.append({"not", "a", "post"})  # type: ignore[arg-type]

    def test_one_based_post_accessor(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert sequence.post(1) == paper_r1_posts[0]
        assert sequence.post(5) == paper_r1_posts[4]

    def test_post_accessor_bounds(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        with pytest.raises(IndexError):
            sequence.post(0)
        with pytest.raises(IndexError):
            sequence.post(6)

    def test_prefix_and_suffix_partition(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert list(sequence.prefix(3)) + list(sequence.suffix(3)) == paper_r1_posts

    def test_prefix_clamps_beyond_length(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert len(sequence.prefix(100)) == 5

    def test_prefix_rejects_negative(self):
        with pytest.raises(DataModelError):
            PostSequence().prefix(-1)

    def test_split_at_time(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        initial, future = sequence.split_at_time(3.0)
        assert len(initial) == 3
        assert len(future) == 2

    def test_count_before(self, paper_r2_posts):
        sequence = PostSequence(paper_r2_posts)
        assert sequence.count_before(2.0) == 2
        assert sequence.count_before(0.5) == 0

    def test_distinct_tags(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert sequence.distinct_tags() == {"google", "earth", "geographic"}

    def test_total_tag_assignments(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert sequence.total_tag_assignments() == 9

    def test_slicing_returns_lists(self, paper_r1_posts):
        sequence = PostSequence(paper_r1_posts)
        assert sequence[1:3] == paper_r1_posts[1:3]

    def test_equality(self, paper_r1_posts):
        assert PostSequence(paper_r1_posts) == PostSequence(paper_r1_posts)
        assert PostSequence(paper_r1_posts) != PostSequence(paper_r1_posts[:2])
