"""Tests for the tag vocabulary and tag normalisation."""

import numpy as np
import pytest

from repro.core import DataModelError, TagVocabulary, normalize_tag


class TestNormalizeTag:
    def test_lowercases_and_strips(self):
        assert normalize_tag("  GooGle ") == "google"

    def test_rejects_empty(self):
        with pytest.raises(DataModelError):
            normalize_tag("   ")

    def test_rejects_interior_whitespace(self):
        with pytest.raises(DataModelError):
            normalize_tag("two words")


class TestTagVocabulary:
    def test_insertion_order_indexing(self):
        vocabulary = TagVocabulary(["google", "earth", "geographic"])
        assert vocabulary.index_of("google") == 0
        assert vocabulary.index_of("geographic") == 2
        assert vocabulary.tags == ("google", "earth", "geographic")

    def test_rejects_duplicates_on_add(self):
        vocabulary = TagVocabulary(["a"])
        with pytest.raises(DataModelError):
            vocabulary.add("a")

    def test_add_all_skips_existing(self):
        vocabulary = TagVocabulary(["a"])
        vocabulary.add_all(["a", "b", "b", "c"])
        assert len(vocabulary) == 3

    def test_contains_is_case_insensitive(self):
        vocabulary = TagVocabulary(["google"])
        assert "Google" in vocabulary
        assert "other" not in vocabulary
        assert 42 not in vocabulary

    def test_unknown_lookup_raises(self):
        vocabulary = TagVocabulary(["a"])
        with pytest.raises(KeyError):
            vocabulary.index_of("missing")


class TestDenseRoundTrip:
    def test_to_dense(self):
        vocabulary = TagVocabulary(["a", "b", "c"])
        dense = vocabulary.to_dense({"a": 0.5, "c": 0.5})
        assert dense.tolist() == [0.5, 0.0, 0.5]

    def test_to_dense_rejects_unknown_tag(self):
        vocabulary = TagVocabulary(["a"])
        with pytest.raises(DataModelError):
            vocabulary.to_dense({"zzz": 1.0})

    def test_to_sparse_drops_zeros(self):
        vocabulary = TagVocabulary(["a", "b", "c"])
        sparse = vocabulary.to_sparse(np.array([0.5, 0.0, 0.5]))
        assert sparse == {"a": 0.5, "c": 0.5}

    def test_to_sparse_validates_length(self):
        vocabulary = TagVocabulary(["a", "b"])
        with pytest.raises(DataModelError):
            vocabulary.to_sparse(np.array([1.0]))

    def test_round_trip(self):
        vocabulary = TagVocabulary(["a", "b", "c", "d"])
        original = {"b": 0.25, "d": 0.75}
        assert vocabulary.to_sparse(vocabulary.to_dense(original)) == original
