"""Tests for the incremental tag-frequency engine (Definitions 3–5)."""

import math

import pytest

from repro.core import DataModelError, TagFrequencyTable, cosine


class TestCounting:
    def test_empty_table_is_the_zero_rfd(self):
        table = TagFrequencyTable()
        assert table.rfd() == {}
        assert table.relative_frequency("anything") == 0.0
        assert table.num_posts == 0

    def test_frequency_counts_posts_not_occurrences(self):
        table = TagFrequencyTable()
        table.add_post({"a", "b"})
        table.add_post({"a"})
        assert table.frequency("a") == 2
        assert table.frequency("b") == 1
        assert table.frequency("c") == 0

    def test_relative_frequency_normalises_by_total_tags(self):
        # Definition 4: divide by Σ_t h(t, k), not by the post count.
        table = TagFrequencyTable()
        table.add_post({"a", "b"})
        table.add_post({"a"})
        assert table.relative_frequency("a") == pytest.approx(2 / 3)
        assert table.relative_frequency("b") == pytest.approx(1 / 3)

    def test_paper_table_ii_rfd(self, paper_r1_posts):
        table = TagFrequencyTable.from_posts(paper_r1_posts[:3])
        assert table.rfd() == pytest.approx(
            {"google": 0.4, "earth": 0.4, "geographic": 0.2}
        )

    def test_rfd_sums_to_one(self, paper_r1_posts):
        table = TagFrequencyTable.from_posts(paper_r1_posts)
        assert sum(table.rfd().values()) == pytest.approx(1.0)

    def test_rejects_empty_post(self):
        table = TagFrequencyTable()
        with pytest.raises(DataModelError):
            table.add_post(set())

    def test_duplicate_tags_in_one_post_collapse(self):
        table = TagFrequencyTable()
        table.add_post(["a", "a", "b"])
        assert table.frequency("a") == 1

    def test_totals_and_norm(self):
        table = TagFrequencyTable()
        table.add_post({"a", "b"})
        table.add_post({"a"})
        assert table.total_tag_assignments == 3
        assert table.norm == pytest.approx(math.sqrt(2**2 + 1))
        assert table.distinct_tags() == 2


class TestAdjacentSimilarity:
    def test_first_post_similarity_is_zero(self):
        # Eq. 16's "otherwise" branch: F(0) is the zero vector.
        table = TagFrequencyTable()
        assert table.add_post({"a"}) == 0.0

    def test_incremental_matches_direct_cosine(self, rng):
        table = TagFrequencyTable()
        previous_rfd: dict[str, float] = {}
        for _ in range(60):
            size = int(rng.integers(1, 5))
            tags = {f"t{int(rng.integers(0, 12))}" for _ in range(size)}
            reported = table.add_post(tags)
            current_rfd = table.rfd()
            assert reported == pytest.approx(cosine(previous_rfd, current_rfd), abs=1e-12)
            previous_rfd = current_rfd

    def test_identical_posts_converge_to_similarity_one(self):
        table = TagFrequencyTable()
        table.add_post({"a", "b"})
        similarity = table.add_post({"a", "b"})
        assert 0.9 < similarity <= 1.0
        for _ in range(50):
            similarity = table.add_post({"a", "b"})
        assert similarity == pytest.approx(1.0, abs=1e-4)

    def test_disjoint_post_drops_similarity(self):
        table = TagFrequencyTable()
        for _ in range(5):
            table.add_post({"a"})
        overlapping = table.copy().add_post({"a"})
        disjoint = table.add_post({"zzz"})
        assert disjoint < overlapping


class TestCosineTo:
    def test_cosine_to_matches_rfd_cosine(self, paper_r1_posts, paper_stable_rfds):
        table = TagFrequencyTable.from_posts(paper_r1_posts[:3])
        expected = cosine(table.rfd(), paper_stable_rfds[0])
        assert table.cosine_to(paper_stable_rfds[0]) == pytest.approx(expected)

    def test_cosine_to_paper_value(self, paper_r1_posts, paper_stable_rfds):
        table = TagFrequencyTable.from_posts(paper_r1_posts[:3])
        assert table.cosine_to(paper_stable_rfds[0]) == pytest.approx(0.953, abs=5e-4)

    def test_cosine_to_zero_vectors(self):
        table = TagFrequencyTable()
        assert table.cosine_to({"a": 1.0}) == 0.0
        table.add_post({"a"})
        assert table.cosine_to({}) == 0.0

    def test_scale_invariance(self, paper_r1_posts):
        table = TagFrequencyTable.from_posts(paper_r1_posts)
        reference = {"google": 0.2, "earth": 0.5}
        scaled = {tag: 7.3 * w for tag, w in reference.items()}
        assert table.cosine_to(reference) == pytest.approx(table.cosine_to(scaled))


class TestCopy:
    def test_copy_is_independent(self):
        table = TagFrequencyTable()
        table.add_post({"a"})
        clone = table.copy()
        clone.add_post({"b"})
        assert table.num_posts == 1
        assert clone.num_posts == 2
        assert table.frequency("b") == 0

    def test_from_posts_matches_incremental(self, paper_r2_posts):
        table = TagFrequencyTable.from_posts(paper_r2_posts)
        manual = TagFrequencyTable()
        for post in paper_r2_posts:
            manual.add_post(post.tags)
        assert table.rfd() == manual.rfd()
        assert table.num_posts == manual.num_posts
