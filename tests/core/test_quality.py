"""Tests for tagging quality and quality profiles (Definitions 9–10)."""

import numpy as np
import pytest

from repro.core import (
    DataModelError,
    Post,
    QualityProfile,
    TagFrequencyTable,
    cosine,
    set_quality,
    tagging_quality,
)


class TestTaggingQuality:
    def test_quality_is_cosine_to_stable_rfd(self, paper_stable_rfds):
        f1 = {"google": 0.4, "geographic": 0.2, "earth": 0.4}
        assert tagging_quality(f1, paper_stable_rfds[0]) == pytest.approx(0.953, abs=5e-4)

    def test_quality_of_empty_rfd_is_zero(self, paper_stable_rfds):
        assert tagging_quality({}, paper_stable_rfds[0]) == 0.0

    def test_set_quality_is_the_mean(self):
        assert set_quality([0.953, 0.897]) == pytest.approx(0.925)

    def test_set_quality_rejects_empty(self):
        with pytest.raises(DataModelError):
            set_quality([])


class TestQualityProfile:
    def test_profile_matches_scratch_computation(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        for k in range(len(paper_r1_posts) + 1):
            table = TagFrequencyTable.from_posts(paper_r1_posts[:k])
            expected = cosine(table.rfd(), paper_stable_rfds[0])
            assert profile.quality(k) == pytest.approx(expected, abs=1e-12)

    def test_paper_table_iv_column_r1(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        assert profile.quality(3) == pytest.approx(0.953, abs=5e-4)
        assert profile.quality(4) == pytest.approx(0.990, abs=5e-4)
        assert profile.quality(5) == pytest.approx(0.943, abs=5e-4)

    def test_paper_table_iv_column_r2(self, paper_r2_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r2_posts, paper_stable_rfds[1])
        assert profile.quality(2) == pytest.approx(0.897, abs=5e-4)
        assert profile.quality(3) == pytest.approx(0.990, abs=2e-3)
        assert profile.quality(4) == pytest.approx(0.992, abs=2e-3)

    def test_quality_at_zero_posts_is_zero(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        assert profile.quality(0) == 0.0

    def test_quality_bounds(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        assert np.all(profile.qualities >= 0.0)
        assert np.all(profile.qualities <= 1.0)

    def test_out_of_range_k(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        with pytest.raises(IndexError):
            profile.quality(-1)
        with pytest.raises(IndexError):
            profile.quality(len(paper_r1_posts) + 1)

    def test_rejects_empty_stable_rfd(self, paper_r1_posts):
        with pytest.raises(DataModelError):
            QualityProfile(paper_r1_posts, {})

    def test_len_is_number_of_posts(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        assert len(profile) == len(paper_r1_posts)


class TestGainArray:
    def test_gain_array_slices_qualities(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        gains = profile.gain_array(c=3, max_tasks=10)
        # Only 2 future posts exist beyond c = 3.
        assert len(gains) == 3
        assert gains[0] == pytest.approx(profile.quality(3))
        assert gains[2] == pytest.approx(profile.quality(5))

    def test_gain_array_respects_budget_cap(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        gains = profile.gain_array(c=0, max_tasks=2)
        assert len(gains) == 3

    def test_gain_array_is_read_only(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        gains = profile.gain_array(c=0, max_tasks=2)
        with pytest.raises(ValueError):
            gains[0] = 0.5

    def test_gain_array_rejects_bad_c(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        with pytest.raises(DataModelError):
            profile.gain_array(c=99, max_tasks=1)

    def test_verify_against_oracle(self, paper_r1_posts, paper_stable_rfds):
        profile = QualityProfile(paper_r1_posts, paper_stable_rfds[0])
        for k in range(len(paper_r1_posts) + 1):
            assert profile.quality(k) == pytest.approx(
                profile.verify_against(paper_r1_posts, k), abs=1e-12
            )
