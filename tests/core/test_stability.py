"""Tests for MA scores and practically-stable rfds (Definitions 7–8)."""

import pytest

from repro.core import (
    NotStableError,
    Post,
    StabilityError,
    StabilityTracker,
    adjacent_similarity_series,
    find_stable_point,
    ma_series,
    practically_stable_rfd,
)
from repro.core.stability import ma_score_direct


def repeated_posts(tags: set[str], count: int) -> list[Post]:
    return [Post(frozenset(tags), timestamp=float(i)) for i in range(count)]


class TestStabilityTracker:
    def test_ma_undefined_below_window(self):
        tracker = StabilityTracker(omega=5)
        for post in repeated_posts({"a"}, 4):
            tracker.add_post(post.tags)
        assert tracker.ma_score is None

    def test_ma_defined_at_window(self):
        tracker = StabilityTracker(omega=5)
        for post in repeated_posts({"a"}, 5):
            tracker.add_post(post.tags)
        assert tracker.ma_score is not None

    def test_constant_posts_reach_ma_one(self):
        tracker = StabilityTracker(omega=4)
        for post in repeated_posts({"a", "b"}, 20):
            tracker.add_post(post.tags)
        assert tracker.ma_score == pytest.approx(1.0, abs=1e-9)

    def test_ma_window_excludes_first_similarity(self):
        # The j = 1 adjacent similarity (always 0) must never enter a
        # window: for constant posts MA at k = omega is already high.
        tracker = StabilityTracker(omega=3)
        for post in repeated_posts({"x"}, 3):
            tracker.add_post(post.tags)
        assert tracker.ma_score == pytest.approx(1.0, abs=1e-9)

    def test_invalid_omega(self):
        with pytest.raises(StabilityError):
            StabilityTracker(omega=1)

    def test_invalid_tau(self):
        with pytest.raises(StabilityError):
            StabilityTracker(omega=3, tau=1.5)

    def test_stable_point_detection(self):
        tracker = StabilityTracker(omega=3, tau=0.99)
        for post in repeated_posts({"a"}, 10):
            tracker.add_post(post.tags)
        assert tracker.is_stable
        assert tracker.stable_point == 3
        assert tracker.stable_rfd == {"a": 1.0}

    def test_stable_rfd_snapshot_is_frozen(self):
        tracker = StabilityTracker(omega=3, tau=0.9)
        for post in repeated_posts({"a"}, 3):
            tracker.add_post(post.tags)
        snapshot = tracker.stable_rfd
        tracker.add_post({"b"})
        assert tracker.stable_rfd == snapshot

    def test_incremental_matches_direct(self, tiny_corpus):
        sequence = tiny_corpus.dataset.resources[0].sequence
        omega = 6
        series = dict(ma_series(sequence, omega))
        for k in (omega, omega + 3, min(40, len(sequence))):
            assert series[k] == pytest.approx(ma_score_direct(sequence, k, omega), abs=1e-9)


class TestSeriesHelpers:
    def test_adjacent_series_first_entry_zero(self, paper_r1_posts):
        series = adjacent_similarity_series(paper_r1_posts)
        assert series[0] == 0.0
        assert len(series) == len(paper_r1_posts)

    def test_ma_series_starts_at_omega(self, paper_r1_posts):
        series = ma_series(paper_r1_posts, omega=3)
        assert series[0][0] == 3
        assert series[-1][0] == len(paper_r1_posts)

    def test_ma_series_empty_for_short_sequences(self, paper_r2_posts):
        assert ma_series(paper_r2_posts, omega=10) == []

    def test_ma_score_direct_validates_k(self, paper_r1_posts):
        with pytest.raises(StabilityError):
            ma_score_direct(paper_r1_posts, k=2, omega=3)
        with pytest.raises(StabilityError):
            ma_score_direct(paper_r1_posts, k=9, omega=3)


class TestStablePoints:
    def test_find_stable_point_on_constant_sequence(self):
        posts = repeated_posts({"a", "b"}, 12)
        assert find_stable_point(posts, omega=4, tau=0.99) == 4

    def test_find_stable_point_none_when_never_stable(self):
        # Every post introduces a brand-new tag: the rfd never settles.
        posts = [Post.of(f"unique-{i}", timestamp=float(i)) for i in range(30)]
        assert find_stable_point(posts, omega=4, tau=0.99) is None

    def test_practically_stable_rfd_returns_smallest_k(self):
        posts = repeated_posts({"a"}, 20)
        k, rfd = practically_stable_rfd(posts, omega=4, tau=0.9)
        assert k == 4
        assert rfd == {"a": 1.0}

    def test_practically_stable_rfd_raises_not_stable(self):
        posts = [Post.of(f"unique-{i}", timestamp=float(i)) for i in range(15)]
        with pytest.raises(NotStableError) as excinfo:
            practically_stable_rfd(posts, omega=4, tau=0.999, resource_id="r9")
        assert excinfo.value.resource_id == "r9"
        assert excinfo.value.best_score is not None
        assert excinfo.value.best_score < 0.999

    def test_not_stable_error_without_window(self):
        posts = repeated_posts({"a"}, 2)
        with pytest.raises(NotStableError) as excinfo:
            practically_stable_rfd(posts, omega=5, tau=0.9)
        assert excinfo.value.best_score is None

    def test_stable_point_monotone_in_tau(self, tiny_corpus):
        sequence = tiny_corpus.dataset.resources[0].sequence
        lenient = find_stable_point(sequence, omega=5, tau=0.9)
        strict = find_stable_point(sequence, omega=5, tau=0.999)
        if lenient is not None and strict is not None:
            assert lenient <= strict
