"""Tests for the similarity metrics (Eq. 16 and the ablation extras)."""

import pytest

from repro.core import cosine, dice, jaccard, jensen_shannon
from repro.core.similarity import SIMILARITY_METRICS


class TestCosine:
    def test_identical_vectors_score_one(self):
        vector = {"a": 0.3, "b": 0.7}
        assert cosine(vector, vector) == pytest.approx(1.0)

    def test_disjoint_vectors_score_zero(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_zero_vector_branch(self):
        # Eq. 16: similarity with a k = 0 rfd is defined to be 0.
        assert cosine({}, {"a": 1.0}) == 0.0
        assert cosine({"a": 1.0}, {}) == 0.0
        assert cosine({}, {}) == 0.0

    def test_symmetry(self):
        u = {"a": 0.2, "b": 0.8}
        v = {"b": 0.5, "c": 0.5}
        assert cosine(u, v) == pytest.approx(cosine(v, u))

    def test_scale_invariance(self):
        u = {"a": 0.2, "b": 0.8}
        v = {"a": 2.0, "b": 8.0}
        assert cosine(u, v) == pytest.approx(1.0)

    def test_paper_example_2_values(self, paper_stable_rfds):
        phi1, phi2 = paper_stable_rfds
        f1 = {"google": 0.4, "geographic": 0.2, "earth": 0.4}
        f2 = {"pictures": 1.0}
        assert cosine(f1, phi1) == pytest.approx(0.953, abs=5e-4)
        assert cosine(f2, phi2) == pytest.approx(0.897, abs=5e-4)

    def test_never_exceeds_one(self):
        # Floating-point drift must be clamped.
        u = {f"t{i}": 1 / 17 for i in range(17)}
        assert cosine(u, u) <= 1.0


class TestJaccard:
    def test_identical(self):
        v = {"a": 0.5, "b": 0.5}
        assert jaccard(v, v) == pytest.approx(1.0)

    def test_disjoint(self):
        assert jaccard({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert jaccard({}, {}) == 0.0

    def test_weighted_example(self):
        # Σmin / Σmax = (1 + 0) / (2 + 1) = 1/3
        assert jaccard({"a": 1.0, "b": 1.0}, {"a": 2.0}) == pytest.approx(1 / 3)


class TestDice:
    def test_identical(self):
        v = {"a": 0.5, "b": 0.5}
        assert dice(v, v) == pytest.approx(1.0)

    def test_empty(self):
        assert dice({}, {}) == 0.0

    def test_weighted_example(self):
        # 2·Σmin / (Σu + Σv) = 2·1 / (2 + 2) = 0.5
        assert dice({"a": 1.0, "b": 1.0}, {"a": 2.0}) == pytest.approx(0.5)


class TestJensenShannon:
    def test_identical(self):
        v = {"a": 0.5, "b": 0.5}
        assert jensen_shannon(v, v) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert jensen_shannon({"a": 1.0}, {"b": 1.0}) == pytest.approx(0.0, abs=1e-12)

    def test_empty_side(self):
        assert jensen_shannon({}, {"a": 1.0}) == 0.0

    def test_normalisation_makes_counts_and_rfds_agree(self):
        counts = {"a": 4.0, "b": 2.0}
        rfd = {"a": 2 / 3, "b": 1 / 3}
        other = {"a": 0.5, "b": 0.5}
        assert jensen_shannon(counts, other) == pytest.approx(jensen_shannon(rfd, other))


class TestRegistry:
    def test_all_metrics_registered(self):
        assert set(SIMILARITY_METRICS) == {"cosine", "jaccard", "dice", "jensen-shannon"}

    @pytest.mark.parametrize("name", sorted(SIMILARITY_METRICS))
    def test_every_metric_is_bounded(self, name, rng):
        metric = SIMILARITY_METRICS[name]
        for _ in range(25):
            u = {f"t{i}": float(rng.random()) for i in range(int(rng.integers(1, 6)))}
            v = {f"t{i}": float(rng.random()) for i in range(int(rng.integers(1, 6)))}
            score = metric(u, v)
            assert 0.0 <= score <= 1.0
