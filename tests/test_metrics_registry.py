"""Tests for the bench-metric registry (``benchmarks/_metrics.py``).

Loaded via ``importlib`` (the benchmarks directory is not a package),
with a fresh module per test so the registry dict starts empty.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def metrics():
    spec = importlib.util.spec_from_file_location(
        "bench_metrics_under_test", REPO_ROOT / "benchmarks" / "_metrics.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecord:
    def test_record_and_dump(self, metrics, monkeypatch, tmp_path):
        target = tmp_path / "bench.json"
        monkeypatch.setenv("BENCH_JSON", str(target))
        monkeypatch.setenv("BENCH_SMOKE", "1")
        metrics.record("a.ratio", 2.5, unit="x")
        metrics.record("a.rate", 100.0, unit="events/s", gate=False)
        assert metrics.dump_if_requested() == target
        payload = json.loads(target.read_text())
        assert payload["smoke"] is True
        assert payload["metrics"]["a.ratio"] == {
            "value": 2.5, "unit": "x", "higher_is_better": True, "gate": True,
        }
        assert payload["metrics"]["a.rate"]["gate"] is False

    def test_dump_noop_without_env(self, metrics, monkeypatch):
        monkeypatch.delenv("BENCH_JSON", raising=False)
        metrics.record("a", 1.0)
        assert metrics.dump_if_requested() is None

    def test_same_meaning_re_record_is_silent(self, metrics, recwarn):
        metrics.record("a.ratio", 1.0, unit="x")
        metrics.record("a.ratio", 2.0, unit="x")  # smoke + full profiles re-run
        assert not recwarn.list
        assert metrics._METRICS["a.ratio"]["value"] == 2.0

    @pytest.mark.parametrize(
        "kwargs,fragment",
        [
            ({"unit": "ms"}, "unit"),
            ({"higher_is_better": False}, "higher_is_better"),
            ({"gate": False}, "gate"),
        ],
    )
    def test_conflicting_re_record_warns(self, metrics, kwargs, fragment):
        metrics.record("a.ratio", 1.0, unit="x")
        with pytest.warns(RuntimeWarning, match="different meaning") as captured:
            metrics.record("a.ratio", 2.0, **{"unit": "x", **kwargs})
        assert fragment in str(captured[0].message)
        # the new definition wins (last writer is the authoritative bench)
        entry = metrics._METRICS["a.ratio"]
        assert entry["value"] == 2.0
        for key, expected in kwargs.items():
            assert entry[key] == expected
