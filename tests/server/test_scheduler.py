"""Scheduler acceptance: concurrency is invisible in the results.

The headline guarantees of the campaign service, as tests:

* N campaigns from multiple users interleaved through the scheduler
  produce traces byte-identical to the pinned serial fixtures
  (``tests/fixtures/campaign_traces.json``);
* killing the server mid-job and restarting over the same state
  directory resumes from the last checkpoint and still lands on the
  identical final trace;
* an over-budget user is rejected at admission and the tenant ledger
  reconciles exactly in every path (done, failed, cancelled, rejected).
"""

import asyncio
import json
from pathlib import Path

import pytest

import repro.api as api
from repro.api import CampaignSpec, CorpusSpec, JobSpec, ServerSpec
from repro.core.errors import SpecError
from repro.server import AdmissionError, JobState, JobStore, Scheduler
from repro.service import IncentiveCampaign

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "campaign_traces.json"


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())["traces"]


def small_spec(seed=11, budget=80, backend="tracker"):
    return CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=15, seed=7),
        strategy="FP",
        budget=budget,
        workers=6,
        seed=seed,
        stop_tau=0.99,
        batch_size=15,
        max_epochs=40,
        stability_backend=backend,
    )


def serial_trace(spec):
    campaign = IncentiveCampaign.from_spec(spec, api.materialize(spec.corpus))
    return campaign.run(max_epochs=spec.max_epochs).trace_payload()


def canon(payload):
    return json.dumps(payload, sort_keys=True)


class TestConcurrentDeterminism:
    def test_interleaved_jobs_match_pinned_serial_traces(self, pinned):
        """Acceptance: 4 concurrent specs, 2 users, byte-identical traces."""
        users = ("alice", "bob")
        scheduler = Scheduler(ServerSpec(slots=4), store=JobStore(None))
        job_ids = [
            scheduler.submit(
                JobSpec(
                    campaign=CampaignSpec.from_dict(entry["spec"]),
                    user=users[i % len(users)],
                )
            )
            for i, entry in enumerate(pinned)
        ]
        assert len(job_ids) >= 4
        assert len({scheduler.store.get(j).user for j in job_ids}) == 2
        asyncio.run(scheduler.run_until_idle())
        for job_id, entry in zip(job_ids, pinned):
            job = scheduler.store.get(job_id)
            assert job.state is JobState.DONE
            assert canon(job.trace) == canon(entry["trace"]), (
                f"concurrent trace diverged from serial for {entry['spec']}"
            )
        assert scheduler.tenants.reconcile()

    def test_legacy_flat_spec_payload_runs_as_a_job(self, pinned):
        # a pre-ExecutionSpec payload (flat stability_* knobs) submits
        # through the deprecation shim and lands on the pinned trace
        entry = next(
            e for e in pinned if e["spec"]["stability_backend"] == "engine"
        )
        payload = dict(
            entry["spec"],
            stability_backend="sharded",
            stability_shards=4,
            stability_executor="thread",
            stability_workers=2,
        )
        with pytest.warns(DeprecationWarning, match="stability_shards"):
            spec = CampaignSpec.from_dict(payload)
        scheduler = Scheduler(ServerSpec(slots=1), store=JobStore(None))
        job_id = scheduler.submit(spec, user="alice")
        asyncio.run(scheduler.run_until_idle())
        job = scheduler.store.get(job_id)
        assert job.state is JobState.DONE
        assert canon(job.trace) == canon(entry["trace"])

    def test_slot_count_does_not_change_traces(self):
        specs = [small_spec(seed=3), small_spec(seed=4, backend="engine")]
        traces = []
        for slots in (1, 3):
            scheduler = Scheduler(ServerSpec(slots=slots), store=JobStore(None))
            ids = [scheduler.submit(s, user="alice") for s in specs]
            asyncio.run(scheduler.run_until_idle())
            traces.append([canon(scheduler.store.get(j).trace) for j in ids])
        assert traces[0] == traces[1]


class TestKillAndResume:
    @pytest.mark.parametrize("backend", ["tracker", "engine"])
    def test_kill_mid_job_then_restart_is_byte_identical(self, tmp_path, backend):
        """Acceptance: crash the server mid-run, restart, traces still match."""
        spec = ServerSpec(root=str(tmp_path), slots=2, checkpoint_every=3)
        campaigns = [
            small_spec(seed=21, budget=120, backend=backend),
            small_spec(seed=22, budget=120),
        ]
        expected = [serial_trace(c) for c in campaigns]

        async def run_and_crash():
            scheduler = Scheduler(spec)
            job_ids = [scheduler.submit(c, user="alice") for c in campaigns]
            runner = asyncio.ensure_future(scheduler.run_until_idle())
            while not runner.done() and any(
                scheduler.store.get(j).epochs < 4 for j in job_ids
            ):
                await asyncio.sleep(0)
            runner.cancel()
            try:
                await runner
            except asyncio.CancelledError:
                pass
            return job_ids, [scheduler.store.get(j) for j in job_ids]

        job_ids, crashed = asyncio.run(run_and_crash())
        assert any(not job.terminal for job in crashed), "crash happened too late"

        revived = Scheduler(spec)
        recovered = [revived.store.get(j) for j in job_ids]
        assert all(job.state is not JobState.RUNNING for job in recovered)
        asyncio.run(revived.run_until_idle())
        for job_id, want in zip(job_ids, expected):
            job = revived.store.get(job_id)
            assert job.state is JobState.DONE
            assert canon(job.trace) == canon(want), "resumed trace diverged"
        assert revived.tenants.reconcile()

    def test_serve_shutdown_checkpoints_live_jobs(self, tmp_path):
        spec = ServerSpec(root=str(tmp_path), slots=1, checkpoint_every=0)
        scheduler = Scheduler(spec)
        job_id = scheduler.submit(small_spec(seed=31), user="alice")

        async def run():
            shutdown = asyncio.Event()

            async def stopper():
                while scheduler.store.get(job_id).epochs < 2:
                    await asyncio.sleep(0)
                shutdown.set()

            await asyncio.gather(
                scheduler.serve(poll_interval=0.001, shutdown=shutdown), stopper()
            )

        asyncio.run(run())
        job = scheduler.store.get(job_id)
        assert job.state is JobState.CHECKPOINTED
        assert job.checkpoint_epoch == job.epochs
        # a fresh scheduler picks the checkpointed job up and finishes it
        revived = Scheduler(spec)
        asyncio.run(revived.run_until_idle())
        final = revived.store.get(job_id)
        assert final.state is JobState.DONE
        assert canon(final.trace) == canon(serial_trace(small_spec(seed=31)))


class TestAdmission:
    def test_over_budget_user_rejected_with_exact_reconciliation(self):
        """Acceptance: rejection at admission, ledger reconciles exactly."""
        scheduler = Scheduler(
            ServerSpec(budgets={"alice": 100}), store=JobStore(None)
        )
        ok = scheduler.submit(small_spec(budget=80), user="alice")
        with pytest.raises(AdmissionError, match="allowance"):
            scheduler.submit(small_spec(budget=30), user="alice")
        failed = [j for j in scheduler.store.jobs() if j.job_id != ok]
        assert len(failed) == 1
        assert failed[0].state is JobState.FAILED
        assert "rejected at admission" in failed[0].error
        assert scheduler.tenants.reserved_for("alice") == 80
        assert scheduler.tenants.reconcile()
        # the admitted job still runs to completion and settles
        asyncio.run(scheduler.run_until_idle())
        assert scheduler.store.get(ok).state is JobState.DONE
        assert scheduler.tenants.committed_for("alice") == scheduler.store.get(ok).spent
        assert scheduler.tenants.reconcile()

    def test_queue_bound_refuses_excess_submissions(self):
        scheduler = Scheduler(ServerSpec(max_queued=2), store=JobStore(None))
        scheduler.submit(small_spec(seed=1), user="alice")
        scheduler.submit(small_spec(seed=2), user="bob")
        with pytest.raises(AdmissionError, match="queue full"):
            scheduler.submit(small_spec(seed=3), user="carol")

    def test_bare_campaign_spec_wrapped_with_user(self):
        scheduler = Scheduler(store=JobStore(None))
        anon = scheduler.submit(small_spec())
        named = scheduler.submit(small_spec(), user="dana")
        assert scheduler.store.get(anon).user == "anonymous"
        assert scheduler.store.get(named).user == "dana"

    def test_rejected_submission_frees_no_queue_slot(self):
        scheduler = Scheduler(
            ServerSpec(budgets={"alice": 10}), store=JobStore(None)
        )
        with pytest.raises(AdmissionError):
            scheduler.submit(small_spec(budget=50), user="alice")
        assert scheduler.submit(small_spec(budget=10), user="alice")


class TestJobControl:
    def test_pause_parked_job_then_resume(self):
        scheduler = Scheduler(store=JobStore(None))
        job_id = scheduler.submit(small_spec(seed=41), user="alice")
        scheduler.pause(job_id)
        assert scheduler.store.get(job_id).state is JobState.PAUSED
        # paused jobs are ignored by the loop
        asyncio.run(scheduler.run_until_idle())
        assert scheduler.store.get(job_id).state is JobState.PAUSED
        scheduler.resume(job_id)
        asyncio.run(scheduler.run_until_idle())
        final = scheduler.store.get(job_id)
        assert final.state is JobState.DONE
        assert canon(final.trace) == canon(serial_trace(small_spec(seed=41)))

    def test_pause_mid_run_checkpoints_and_resumes_identically(self, tmp_path):
        spec = ServerSpec(root=str(tmp_path), slots=1, checkpoint_every=0)
        scheduler = Scheduler(spec)
        job_id = scheduler.submit(small_spec(seed=42), user="alice")

        async def run():
            runner = asyncio.ensure_future(scheduler.run_until_idle())
            while not runner.done() and scheduler.store.get(job_id).epochs < 3:
                await asyncio.sleep(0)
            if not runner.done():
                scheduler.pause(job_id)
            await runner

        asyncio.run(run())
        job = scheduler.store.get(job_id)
        assert job.state is JobState.PAUSED
        assert job.checkpoint_epoch == job.epochs  # pause cut a checkpoint
        scheduler.resume(job_id)
        asyncio.run(scheduler.run_until_idle())
        final = scheduler.store.get(job_id)
        assert final.state is JobState.DONE
        assert canon(final.trace) == canon(serial_trace(small_spec(seed=42)))

    def test_cancel_mid_run_settles_partial_spend(self):
        scheduler = Scheduler(
            ServerSpec(budgets={"alice": 200}, slots=1), store=JobStore(None)
        )
        job_id = scheduler.submit(small_spec(seed=43), user="alice")

        async def run():
            runner = asyncio.ensure_future(scheduler.run_until_idle())
            while not runner.done() and scheduler.store.get(job_id).epochs < 2:
                await asyncio.sleep(0)
            if not runner.done():
                scheduler.cancel(job_id)
            await runner

        asyncio.run(run())
        job = scheduler.store.get(job_id)
        assert job.state is JobState.CANCELLED
        assert 0 < job.spent < small_spec().budget
        assert scheduler.tenants.committed_for("alice") == job.spent
        assert scheduler.tenants.reconcile()

    def test_invalid_control_transitions_rejected(self):
        scheduler = Scheduler(store=JobStore(None))
        job_id = scheduler.submit(small_spec(seed=44), user="alice")
        with pytest.raises(SpecError):
            scheduler.resume(job_id)  # not paused
        asyncio.run(scheduler.run_until_idle())
        with pytest.raises(SpecError):
            scheduler.pause(job_id)  # already done
        scheduler.cancel(job_id)  # cancelling a done job is a no-op
        assert scheduler.store.get(job_id).state is JobState.DONE

    def test_status_and_jobs_views(self):
        scheduler = Scheduler(store=JobStore(None))
        job_id = scheduler.submit(small_spec(seed=45), user="alice")
        record = scheduler.status(job_id)
        assert record.job_id == job_id
        assert record.state == "queued"
        assert [r.job_id for r in scheduler.jobs()] == [job_id]


class TestFileProtocol:
    def test_inbox_submission_yields_receipt(self, tmp_path):
        scheduler = Scheduler(ServerSpec(root=str(tmp_path)))
        inbox = tmp_path / "inbox"
        inbox.mkdir()
        payload = JobSpec(user="alice", campaign=small_spec()).to_dict()
        (inbox / "a.json").write_text(json.dumps(payload))
        scheduler.poll_once()
        receipt = json.loads((inbox / "processed" / "a.json.receipt").read_text())
        assert receipt["job_id"] == "job-0001"
        assert not (inbox / "a.json").exists()
        assert scheduler.store.get("job-0001").user == "alice"

    def test_inbox_accepts_bare_campaign_payloads(self, tmp_path):
        scheduler = Scheduler(ServerSpec(root=str(tmp_path)))
        inbox = tmp_path / "inbox"
        inbox.mkdir()
        (inbox / "c.json").write_text(json.dumps(small_spec().to_dict()))
        scheduler.poll_once()
        assert scheduler.store.get("job-0001").user == "anonymous"

    def test_inbox_rejection_writes_error_receipt(self, tmp_path):
        scheduler = Scheduler(ServerSpec(root=str(tmp_path), budgets={"alice": 1}))
        inbox = tmp_path / "inbox"
        inbox.mkdir()
        payload = JobSpec(user="alice", campaign=small_spec(budget=50)).to_dict()
        (inbox / "over.json").write_text(json.dumps(payload))
        (inbox / "broken.json").write_text("{not json")
        scheduler.poll_once()
        over = json.loads((inbox / "processed" / "over.json.receipt").read_text())
        broken = json.loads((inbox / "processed" / "broken.json.receipt").read_text())
        assert "rejected at admission" in over["error"]
        assert "error" in broken
        assert scheduler.tenants.reconcile()

    def test_control_files_drive_pause_resume_cancel(self, tmp_path):
        scheduler = Scheduler(ServerSpec(root=str(tmp_path)))
        job_id = scheduler.submit(small_spec(), user="alice")
        control = tmp_path / "control"
        control.mkdir()
        (control / f"{job_id}.pause").touch()
        scheduler.poll_once()
        assert scheduler.store.get(job_id).state is JobState.PAUSED
        (control / f"{job_id}.resume").touch()
        (control / "job-nope.cancel").touch()  # stale request: ignored
        (control / "garbage").touch()  # no action suffix: ignored
        scheduler.poll_once()
        assert scheduler.store.get(job_id).state is JobState.QUEUED
        assert list(control.iterdir()) == []
