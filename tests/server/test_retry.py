"""Scheduler retry/backoff: deterministic schedules, checkpoint resume,
exactly-once tenant settlement, and journal durability across restarts."""

import asyncio
import json
import warnings

import pytest

from repro import faults
from repro.api import CampaignSpec, CorpusSpec, JobSpec, RetryPolicy
from repro.api.results import JobRecord
from repro.api.specs import ServerSpec
from repro.core.errors import SpecError
from repro.faults.plan import _reset_for_tests
from repro.server.scheduler import Scheduler


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
    _reset_for_tests()
    yield
    _reset_for_tests()


def _campaign():
    return CampaignSpec(
        corpus=CorpusSpec(kind="tiny", seed=3),
        strategy="FP",
        budget=30,
        workers=4,
        seed=5,
        batch_size=8,
        max_epochs=10,
    )


def _run(scheduler):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        asyncio.run(scheduler.run_until_idle())


class TestRetryPolicy:
    def test_defaults_are_fail_fast(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.schedule() == []

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(max_attempts=5, backoff_base=0.5, backoff_cap=8.0, jitter_seed=3)
        b = RetryPolicy(max_attempts=5, backoff_base=0.5, backoff_cap=8.0, jitter_seed=3)
        assert a.schedule() == b.schedule()

    def test_different_seed_different_schedule(self):
        a = RetryPolicy(max_attempts=5, backoff_base=0.5, jitter_seed=3)
        b = RetryPolicy(max_attempts=5, backoff_base=0.5, jitter_seed=4)
        assert a.schedule() != b.schedule()

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(max_attempts=8, backoff_base=1.0, backoff_cap=4.0,
                             jitter_seed=0)
        delays = policy.schedule()
        # raw backoff 1, 2, 4, 4, ... with jitter factor in [0.5, 1.0)
        assert all(d <= 4.0 for d in delays)
        assert delays[0] >= 0.5
        assert len(delays) == 7

    def test_zero_base_retries_immediately(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        assert policy.schedule() == [0.0, 0.0]

    def test_validation(self):
        with pytest.raises(SpecError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SpecError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(SpecError):
            RetryPolicy(jitter_seed=-1)

    def test_job_spec_round_trips_retry(self):
        spec = JobSpec(
            campaign=_campaign(),
            retry=RetryPolicy(max_attempts=4, backoff_base=0.25, jitter_seed=9),
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_job_record_round_trips_attempts(self):
        record = JobRecord(job_id="job-0001", user="u", state="failed", attempts=3)
        assert JobRecord.from_dict(record.to_dict()).attempts == 3


class TestSchedulerRetry:
    def test_transient_fault_retried_from_checkpoint(self, tmp_path):
        """Two injected epoch failures, max_attempts=3: the job resumes
        from its checkpoint each time and the final trace is
        byte-identical to a never-faulted run."""
        clean = Scheduler(ServerSpec(root=str(tmp_path / "clean"), slots=1,
                                     checkpoint_every=2))
        clean_id = clean.submit(JobSpec(campaign=_campaign()))
        _run(clean)
        baseline = clean.status(clean_id)
        assert baseline.state == "done"

        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 3, "every": 1,
             "times": 2},
        ]})
        sched = Scheduler(ServerSpec(root=str(tmp_path / "faulty"), slots=1,
                                     checkpoint_every=2))
        job_id = sched.submit(JobSpec(
            campaign=_campaign(),
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05,
                              jitter_seed=1),
        ))
        _run(sched)
        record = sched.status(job_id)
        assert record.state == "done"
        assert record.attempts == 2
        assert record.checkpoint_epoch >= 0  # resumed from a checkpoint
        assert "FaultInjected" in record.error  # survived faults stay audited
        assert json.dumps(record.trace, sort_keys=True) == json.dumps(
            baseline.trace, sort_keys=True
        )

    def test_exhausted_attempts_fail_with_traceback(self, tmp_path):
        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 0, "every": 1,
             "times": 0},
        ]})
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        job_id = sched.submit(JobSpec(
            campaign=_campaign(), retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        ))
        _run(sched)
        record = sched.status(job_id)
        assert record.state == "failed"
        assert record.attempts == 3
        assert "Traceback" in record.error
        assert "FaultInjected" in record.error

    def test_default_policy_keeps_fail_fast_semantics(self, tmp_path):
        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 0},
        ]})
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        job_id = sched.submit(JobSpec(campaign=_campaign()))
        _run(sched)
        record = sched.status(job_id)
        assert record.state == "failed"
        assert record.attempts == 1

    def test_ledger_settles_exactly_once_across_retries(self, tmp_path):
        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 0, "every": 1,
             "times": 0},
        ]})
        budget = _campaign().budget
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1,
                                     budgets={"alice": budget * 2}))
        job_id = sched.submit(JobSpec(
            campaign=_campaign(), user="alice",
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        ))
        assert sched.tenants.available("alice") == budget  # reserved once
        _run(sched)
        assert sched.status(job_id).state == "failed"
        # failed before spending: the full reservation is released, once
        assert sched.tenants.available("alice") == budget * 2

    def test_attempts_survive_restart(self, tmp_path):
        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 0, "every": 1,
             "times": 0},
        ]})
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        job_id = sched.submit(JobSpec(
            campaign=_campaign(), retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        ))
        _run(sched)
        faults.deactivate()
        reborn = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        record = reborn.status(job_id)
        assert record.state == "failed"
        assert record.attempts == 2

    def test_attempt_events_journalled(self, tmp_path):
        faults.activate({"specs": [
            {"site": "campaign.epoch", "kind": "error", "at": 0, "every": 1,
             "times": 0},
        ]})
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        sched.submit(JobSpec(
            campaign=_campaign(), retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        ))
        _run(sched)
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        attempts = [json.loads(l) for l in lines if '"attempt"' in l]
        attempts = [e for e in attempts if e.get("event") == "attempt"]
        assert [e["attempt"] for e in attempts] == [1, 2]
        assert all(e["of"] == 3 for e in attempts)

    def test_cancel_while_waiting_on_backoff(self, tmp_path):
        """A job parked on a backoff timer can be cancelled; the timer
        dies with it and the ledger settles."""

        async def scenario():
            faults.activate({"specs": [
                {"site": "campaign.epoch", "kind": "error", "at": 0},
            ]})
            sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
            job_id = sched.submit(JobSpec(
                campaign=_campaign(),
                retry=RetryPolicy(max_attempts=2, backoff_base=30.0,
                                  backoff_cap=60.0),
            ))
            runner = asyncio.create_task(sched.run_until_idle())
            for _ in range(200):
                await asyncio.sleep(0.01)
                if sched._retry_timers:
                    break
            assert sched._retry_timers, "job never reached its backoff wait"
            sched.cancel(job_id)
            await asyncio.wait_for(runner, timeout=10.0)
            record = sched.status(job_id)
            assert record.state == "cancelled"
            assert not sched._retry_timers

        asyncio.run(scenario())

    def test_resume_skips_the_backoff_wait(self, tmp_path):
        async def scenario():
            faults.activate({"specs": [
                {"site": "campaign.epoch", "kind": "error", "at": 3},
            ]})
            sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1,
                                         checkpoint_every=2))
            job_id = sched.submit(JobSpec(
                campaign=_campaign(),
                retry=RetryPolicy(max_attempts=2, backoff_base=30.0,
                                  backoff_cap=60.0),
            ))
            runner = asyncio.create_task(sched.run_until_idle())
            for _ in range(200):
                await asyncio.sleep(0.01)
                if sched._retry_timers:
                    break
            assert sched._retry_timers, "job never reached its backoff wait"
            sched.resume(job_id)  # operator nudge: run now, skip the wait
            await asyncio.wait_for(runner, timeout=30.0)
            record = sched.status(job_id)
            assert record.state == "done"
            assert record.attempts == 1

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            asyncio.run(scenario())


class TestJournalTruncationTolerance:
    def test_torn_append_drops_only_the_torn_line(self, tmp_path):
        """``truncate_journal`` tears a journal line mid-append; replay
        keeps everything before the tear and drops the fragment."""
        sched = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        job_id = sched.submit(JobSpec(campaign=_campaign()))
        _run(sched)
        assert sched.status(job_id).state == "done"
        # tear the *next* append — a post-completion audit entry
        faults.activate({"specs": [
            {"site": "jobstore.append", "kind": "truncate_journal", "at": 0},
        ]})
        sched.store.log({"event": "audit", "note": "about to be torn"})
        faults.deactivate()
        raw = (tmp_path / "journal.jsonl").read_text()
        assert not raw.endswith("\n")  # the tear really happened
        reborn = Scheduler(ServerSpec(root=str(tmp_path), slots=1))
        record = reborn.status(job_id)
        assert record.state == "done"  # pre-tear state intact
