"""Campaign checkpoints restore byte-identically, for both stability backends."""

import json

import pytest

import repro.api as api
from repro.api import CampaignSpec, CorpusSpec
from repro.core.errors import SpecError
from repro.server import (
    has_campaign_checkpoint,
    restore_campaign_checkpoint,
    save_campaign_checkpoint,
)
from repro.service import IncentiveCampaign


def make_spec(backend="tracker"):
    return CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=15, seed=7),
        strategy="FP",
        budget=80,
        workers=6,
        seed=11,
        stop_tau=0.99,
        batch_size=15,
        max_epochs=40,
        stability_backend=backend,
    )


@pytest.fixture(scope="module")
def corpus():
    return api.materialize(make_spec().corpus)


def run_to_completion(campaign, max_epochs=40):
    while campaign.epochs_run < max_epochs:
        if campaign.step_epoch() is None:
            break
    return campaign.finish().trace_payload()


@pytest.mark.parametrize("backend", ["tracker", "engine"])
class TestRoundTrip:
    def test_restore_then_finish_is_byte_identical(self, tmp_path, corpus, backend):
        spec = make_spec(backend)
        baseline = IncentiveCampaign.from_spec(spec, corpus)
        baseline.start()
        expected = run_to_completion(baseline)

        killed = IncentiveCampaign.from_spec(spec, corpus)
        killed.start()
        for _ in range(5):
            killed.step_epoch()
        save_campaign_checkpoint(killed, tmp_path)
        assert has_campaign_checkpoint(tmp_path)

        restored = restore_campaign_checkpoint(spec, corpus, tmp_path)
        assert restored.epochs_run == 5
        got = run_to_completion(restored)
        assert json.dumps(got, sort_keys=True) == json.dumps(expected, sort_keys=True)

    def test_kill_between_checkpoints_reruns_identically(self, tmp_path, corpus, backend):
        """Checkpoint at epoch 4, crash at 7: the re-run epochs match exactly."""
        spec = make_spec(backend)
        baseline = IncentiveCampaign.from_spec(spec, corpus)
        baseline.start()
        expected = run_to_completion(baseline)

        killed = IncentiveCampaign.from_spec(spec, corpus)
        killed.start()
        for _ in range(4):
            killed.step_epoch()
        save_campaign_checkpoint(killed, tmp_path)
        for _ in range(3):
            killed.step_epoch()  # progress past the checkpoint, then "crash"

        restored = restore_campaign_checkpoint(spec, corpus, tmp_path)
        assert restored.epochs_run == 4
        got = run_to_completion(restored)
        assert json.dumps(got, sort_keys=True) == json.dumps(expected, sort_keys=True)


class TestCheckpointFiles:
    def test_missing_checkpoint_detected(self, tmp_path):
        assert not has_campaign_checkpoint(tmp_path)
        with pytest.raises(SpecError):
            restore_campaign_checkpoint(make_spec(), None, tmp_path)

    def test_unknown_format_rejected(self, tmp_path, corpus):
        spec = make_spec()
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        state_path = tmp_path / "state.json"
        state = json.loads(state_path.read_text())
        state["format"] = 99
        state_path.write_text(json.dumps(state))
        with pytest.raises(SpecError, match="format"):
            restore_campaign_checkpoint(spec, corpus, tmp_path)

    def test_epoch_drift_rejected(self, tmp_path, corpus):
        spec = make_spec()
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(3):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        state_path = tmp_path / "state.json"
        state = json.loads(state_path.read_text())
        state["epoch"] = 7  # claims more epochs than the journal replays
        state_path.write_text(json.dumps(state))
        with pytest.raises(SpecError, match="epoch"):
            restore_campaign_checkpoint(spec, corpus, tmp_path)

    def test_engine_checkpoint_carries_a_bank_snapshot(self, tmp_path, corpus):
        spec = make_spec("engine")
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(5):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["bank"] == "bank-000005"
        assert (tmp_path / "bank-000005").is_dir()

    def test_stale_bank_snapshots_pruned(self, tmp_path, corpus):
        spec = make_spec("engine")
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(3):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        for _ in range(2):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        # the previous epoch's bank survives one cycle as the torn-write
        # fallback; anything older is pruned
        banks = sorted(p.name for p in tmp_path.glob("bank-*"))
        assert banks == ["bank-000003", "bank-000005"]
        campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        banks = sorted(p.name for p in tmp_path.glob("bank-*"))
        assert banks == ["bank-000005", "bank-000006"]

    def test_restore_survives_a_pruned_bank(self, tmp_path, corpus):
        """The journal is authoritative; the bank is only a cross-check."""
        import shutil

        spec = make_spec("engine")
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(4):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        shutil.rmtree(tmp_path / "bank-000004")
        restored = restore_campaign_checkpoint(spec, corpus, tmp_path)
        assert restored.epochs_run == 4

    def test_torn_bank_falls_back_to_previous_checkpoint(self, tmp_path, corpus):
        """A torn bank write in the latest cycle is survivable: restore
        warns, falls back to ``state-prev.json`` (one epoch earlier), and
        the resumed run still finishes byte-identically."""
        spec = make_spec("engine")
        baseline = IncentiveCampaign.from_spec(spec, corpus)
        baseline.start()
        expected = run_to_completion(baseline)

        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(4):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        # tear the newest bank snapshot: truncate every shard payload
        for shard_file in (tmp_path / "bank-000005").glob("shard*"):
            if shard_file.is_file():
                shard_file.write_bytes(shard_file.read_bytes()[:16])
            else:
                for part in shard_file.glob("*.npy"):
                    part.write_bytes(part.read_bytes()[:16])
        with pytest.warns(RuntimeWarning, match="falling back"):
            restored = restore_campaign_checkpoint(spec, corpus, tmp_path)
        assert restored.epochs_run == 4
        got = run_to_completion(restored)
        assert json.dumps(got, sort_keys=True) == json.dumps(expected, sort_keys=True)

    def test_all_checkpoints_torn_raises_typed(self, tmp_path, corpus):
        from repro.engine import CheckpointCorrupted

        spec = make_spec("engine")
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        for _ in range(3):
            campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        (tmp_path / "state.json").write_text('{"to')
        with pytest.raises(CheckpointCorrupted):
            restore_campaign_checkpoint(spec, corpus, tmp_path)

    def test_tracker_checkpoint_has_no_bank(self, tmp_path, corpus):
        spec = make_spec("tracker")
        campaign = IncentiveCampaign.from_spec(spec, corpus)
        campaign.start()
        campaign.step_epoch()
        save_campaign_checkpoint(campaign, tmp_path)
        state = json.loads((tmp_path / "state.json").read_text())
        assert "bank" not in state
        assert list(tmp_path.glob("bank-*")) == []
