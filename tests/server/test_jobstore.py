"""JobStore durability: journal replay, crash demotion, torn writes."""

import json

import pytest

from repro.api import CampaignSpec, JobRecord, JobSpec
from repro.core.errors import SpecError
from repro.server import CampaignJob, JobState, JobStore


def job_spec(user="alice", budget=50):
    return JobSpec(user=user, campaign=CampaignSpec(budget=budget))


class TestInMemoryStore:
    def test_submit_assigns_sequential_ids(self):
        store = JobStore(None)
        ids = [store.submit(job_spec()).job_id for _ in range(3)]
        assert ids == ["job-0001", "job-0002", "job-0003"]
        assert len(store) == 3
        assert [j.job_id for j in store.jobs()] == ids

    def test_only_job_specs_accepted(self):
        with pytest.raises(SpecError):
            JobStore(None).submit(CampaignSpec(budget=10))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            JobStore(None).get("job-9999")

    def test_no_directories_in_memory(self):
        store = JobStore(None)
        job = store.submit(job_spec())
        with pytest.raises(SpecError):
            store.job_dir(job.job_id)

    def test_save_and_log_are_noops_without_root(self):
        store = JobStore(None)
        job = store.submit(job_spec())
        job.state = JobState.RUNNING
        store.save(job)  # nothing to write, nothing to raise
        store.log({"event": "tenant", "kind": "reserve"})


class TestDurableStore:
    def test_journal_replay_rebuilds_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec(user="bob", budget=77))
        job.state = JobState.DONE
        job.epochs = 9
        job.spent = 42
        job.trace = {"bought_sha256": "abc"}
        store.save(job)

        reopened = JobStore(tmp_path)
        got = reopened.get(job.job_id)
        assert got.state is JobState.DONE
        assert got.user == "bob"
        assert got.epochs == 9
        assert got.spent == 42
        assert got.trace == {"bought_sha256": "abc"}
        assert got.spec.campaign.budget == 77

    def test_sequence_continues_after_reopen(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(job_spec())
        store.submit(job_spec())
        reopened = JobStore(tmp_path)
        assert reopened.submit(job_spec()).job_id == "job-0003"

    def test_running_without_checkpoint_demotes_to_queued(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        job.state = JobState.RUNNING
        job.epochs = 3
        store.save(job)
        reopened = JobStore(tmp_path)
        assert reopened.get(job.job_id).state is JobState.QUEUED

    def test_running_with_checkpoint_demotes_to_checkpointed(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        job.state = JobState.RUNNING
        job.epochs = 6
        job.checkpoint_epoch = 5
        store.save(job)
        reopened = JobStore(tmp_path)
        got = reopened.get(job.job_id)
        assert got.state is JobState.CHECKPOINTED
        assert got.checkpoint_epoch == 5

    def test_demotion_never_writes_to_the_journal(self, tmp_path):
        """Opening a store is read-only: CLI tools may inspect a live server."""
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        job.state = JobState.RUNNING
        store.save(job)
        journal = tmp_path / "journal.jsonl"
        before = journal.read_text()
        JobStore(tmp_path)
        assert journal.read_text() == before

    def test_torn_final_line_is_dropped(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        job.state = JobState.DONE
        store.save(job)
        journal = tmp_path / "journal.jsonl"
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "state", "job_id": "job-0001", "sta')
        reopened = JobStore(tmp_path)
        assert reopened.get(job.job_id).state is JobState.DONE

    def test_unknown_events_are_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        store.log({"event": "tenant", "kind": "reserve", "amount": 50})
        store.log({"event": "from-the-future", "payload": [1, 2, 3]})
        reopened = JobStore(tmp_path)
        assert reopened.get(job.job_id).state is JobState.QUEUED

    def test_state_for_unknown_job_is_ignored(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            json.dumps({"event": "state", "job_id": "job-0042", "state": "done"}) + "\n"
        )
        assert len(JobStore(tmp_path)) == 0

    def test_checkpoint_dir_under_job_dir(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(job_spec())
        ckpt = store.checkpoint_dir(job.job_id)
        assert ckpt == tmp_path / "jobs" / job.job_id / "checkpoint"
        assert ckpt.parent.is_dir()


class TestJobRecord:
    def test_record_round_trip(self):
        job = CampaignJob(job_id="job-0007", spec=job_spec(user="carol"))
        job.state = JobState.FAILED
        job.epochs = 4
        job.spent = 11
        job.error = "boom"
        record = job.record()
        assert isinstance(record, JobRecord)
        assert record.user == "carol"
        assert record.state == "failed"
        clone = JobRecord.from_json(record.to_json())
        assert clone == record

    def test_terminal_property(self):
        job = CampaignJob(job_id="job-0001", spec=job_spec())
        assert not job.terminal
        for state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
            job.state = state
            assert job.terminal
        job.state = JobState.PAUSED
        assert not job.terminal
