"""TenantLedger: reserve/settle discipline and audit-log reconciliation."""

import pytest

from repro.core.errors import BudgetError
from repro.server import TenantLedger


class TestReserve:
    def test_reserve_within_allowance(self):
        ledger = TenantLedger({"alice": 100})
        assert ledger.reserve("alice", "job-0001", 60)
        assert ledger.reserved_for("alice") == 60
        assert ledger.available("alice") == 40

    def test_reserve_over_allowance_rejected_and_logged(self):
        ledger = TenantLedger({"alice": 100})
        assert not ledger.reserve("alice", "job-0001", 150)
        assert ledger.reserved_for("alice") == 0
        assert ledger.available("alice") == 100
        kinds = [txn.kind for txn in ledger.transactions]
        assert kinds == ["reject"]
        assert ledger.reconcile()

    def test_concurrent_reservations_cannot_overshoot(self):
        ledger = TenantLedger({"alice": 100})
        assert ledger.reserve("alice", "job-0001", 60)
        assert not ledger.reserve("alice", "job-0002", 60)
        assert ledger.reserve("alice", "job-0003", 40)
        assert ledger.available("alice") == 0

    def test_uncapped_user_always_admitted(self):
        ledger = TenantLedger({"alice": 10})
        assert ledger.available("bob") is None
        assert ledger.reserve("bob", "job-0001", 10**9)

    def test_default_budget_caps_unlisted_users(self):
        ledger = TenantLedger({"alice": 500}, default_budget=50)
        assert ledger.allowance("bob") == 50
        assert not ledger.reserve("bob", "job-0001", 60)
        assert ledger.reserve("alice", "job-0002", 400)

    def test_force_skips_the_cap(self):
        ledger = TenantLedger({"alice": 10})
        assert ledger.reserve("alice", "job-0001", 500, force=True)
        assert ledger.available("alice") == -490
        assert ledger.reconcile()

    def test_negative_amount_is_a_caller_bug(self):
        with pytest.raises(BudgetError):
            TenantLedger().reserve("alice", "job-0001", -1)

    def test_double_reservation_is_a_caller_bug(self):
        ledger = TenantLedger()
        ledger.reserve("alice", "job-0001", 5)
        with pytest.raises(BudgetError):
            ledger.reserve("alice", "job-0001", 5)


class TestSettle:
    def test_settle_commits_spend_and_releases_rest(self):
        ledger = TenantLedger({"alice": 100})
        ledger.reserve("alice", "job-0001", 60)
        ledger.settle("job-0001", 45)
        assert ledger.reserved_for("alice") == 0
        assert ledger.committed_for("alice") == 45
        assert ledger.available("alice") == 55
        kinds = [txn.kind for txn in ledger.transactions]
        assert kinds == ["reserve", "commit", "release"]
        assert ledger.reconcile()

    def test_settle_without_reservation_raises(self):
        with pytest.raises(BudgetError):
            TenantLedger().settle("job-0001", 0)

    def test_overspend_beyond_reservation_raises(self):
        ledger = TenantLedger({"alice": 100})
        ledger.reserve("alice", "job-0001", 30)
        with pytest.raises(BudgetError):
            ledger.settle("job-0001", 31)
        # the failed settle must not corrupt the open reservation
        ledger.settle("job-0001", 30)
        assert ledger.committed_for("alice") == 30
        assert ledger.reconcile()

    def test_zero_spend_settle_still_audited(self):
        ledger = TenantLedger()
        ledger.reserve("alice", "job-0001", 0)
        ledger.settle("job-0001", 0)
        assert [txn.kind for txn in ledger.transactions] == ["reserve", "release"]
        assert ledger.reconcile()

    def test_released_budget_admits_the_next_campaign(self):
        ledger = TenantLedger({"alice": 100})
        ledger.reserve("alice", "job-0001", 100)
        assert not ledger.reserve("alice", "job-0002", 10)
        ledger.settle("job-0001", 40)
        assert ledger.reserve("alice", "job-0003", 60)
        assert ledger.reconcile()


class TestAudit:
    def test_sink_receives_every_transaction(self):
        seen = []
        ledger = TenantLedger({"alice": 50}, sink=seen.append)
        ledger.reserve("alice", "job-0001", 30)
        ledger.reserve("alice", "job-0002", 30)  # rejected
        ledger.settle("job-0001", 10)
        assert [p["kind"] for p in seen] == ["reserve", "reject", "commit", "release"]
        assert all(p["seq"] == i for i, p in enumerate(seen))

    def test_reconcile_detects_tampering(self):
        ledger = TenantLedger({"alice": 100})
        ledger.reserve("alice", "job-0001", 60)
        ledger.settle("job-0001", 60)
        assert ledger.reconcile()
        ledger._committed["alice"] += 1  # simulate state corruption
        assert not ledger.reconcile()

    def test_reconcile_across_many_users_and_rejects(self):
        ledger = TenantLedger({"alice": 100, "bob": 80}, default_budget=20)
        ledger.reserve("alice", "job-0001", 70)
        ledger.reserve("bob", "job-0002", 80)
        ledger.reserve("carol", "job-0003", 30)  # rejected by default cap
        ledger.reserve("carol", "job-0004", 20)
        ledger.settle("job-0001", 55)
        ledger.settle("job-0002", 0)
        assert ledger.committed_for("alice") == 55
        assert ledger.reserved_for("carol") == 20
        assert ledger.reconcile()
