"""Tests for rendering helpers and the shared harness."""

import numpy as np
from repro.experiments import TEST_SCALE, default_strategies
from repro.experiments.evaluation import EvaluationSeries
from repro.experiments.report import format_float, render_comparison_metric, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_values_stringified(self):
        text = render_table(["x"], [[3.5]])
        assert "3.5" in text


class TestFormatFloat:
    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_digits(self):
        assert format_float(0.123456, digits=2) == "0.12"


class TestRenderComparison:
    def build_series(self, name, budgets, quality):
        n = len(budgets)
        return EvaluationSeries(
            strategy_name=name,
            budgets=np.array(budgets),
            quality=np.array(quality),
            over_tagged=np.zeros(n, dtype=np.int64),
            wasted=np.zeros(n, dtype=np.int64),
            under_fraction=np.zeros(n),
        )

    def test_mismatched_grids_show_dashes(self):
        series = {
            "A": self.build_series("A", [0, 10, 20], [0.1, 0.2, 0.3]),
            "B": self.build_series("B", [0, 20], [0.1, 0.4]),
        }
        text = render_comparison_metric(series, "quality")
        row_10 = next(line for line in text.splitlines() if line.startswith("10"))
        assert "-" in row_10

    def test_integer_metrics_render_as_ints(self):
        series = {"A": self.build_series("A", [0], [0.5])}
        text = render_comparison_metric(series, "wasted")
        assert "0.0000" not in text

    def test_custom_formatter(self):
        series = {"A": self.build_series("A", [0], [0.54321])}
        text = render_comparison_metric(
            series, "quality", value_format=lambda v: f"{v:.1f}"
        )
        assert "0.5" in text and "0.5432" not in text

    def test_budget_order_in_merged_grid(self):
        series = {
            "A": self.build_series("A", [0, 30], [0.1, 0.2]),
            "B": self.build_series("B", [10], [0.3]),
        }
        text = render_comparison_metric(series, "quality")
        budgets = [line.split()[0] for line in text.splitlines()[2:]]
        assert budgets == ["0", "10", "30"]


class TestHarness:
    def test_from_scale_builds_consistent_state(self, test_harness):
        assert test_harness.split.n == len(test_harness.truth)
        assert test_harness.scale is TEST_SCALE

    def test_default_strategies_order(self):
        names = [s.name for s in default_strategies(omega=5)]
        assert names == ["FC", "RR", "FP", "MU", "FP-MU"]

    def test_run_strategy_uses_scale_budget(self, test_harness):
        from repro.allocation import RoundRobin

        trace = test_harness.run_strategy(RoundRobin())
        assert trace.budget == test_harness.scale.max_budget

    def test_dp_series_budgets(self, test_harness):
        series = test_harness.run_dp()
        assert tuple(int(b) for b in series.budgets) == test_harness.scale.dp_budgets
