"""Tests for ground truth construction and trace evaluation."""

import pytest

from repro.core import DataModelError, NotStableError, Post, PostSequence, Resource, ResourceSet, TaggingDataset
from repro.allocation import FewestPostsFirst, RoundRobin
from repro.allocation.budget import AllocationTrace
from repro.experiments.evaluation import GroundTruth, TraceEvaluator


class TestGroundTruth:
    def test_build_on_filtered_corpus(self, test_harness):
        truth = test_harness.truth
        assert len(truth) == len(test_harness.corpus.dataset)
        assert (truth.stable_points > 0).all()
        for rfd in truth.stable_rfds:
            assert sum(rfd.values()) == pytest.approx(1.0)

    def test_build_raises_on_unstable_resource(self):
        posts = [Post.of(f"u{i}", timestamp=float(i)) for i in range(20)]
        dataset = TaggingDataset(ResourceSet([Resource("bad", PostSequence(posts))]))
        with pytest.raises(NotStableError):
            GroundTruth.build(dataset)

    def test_subset(self, test_harness):
        subset = test_harness.truth.subset([0, 3])
        assert len(subset) == 2
        assert subset.stable_points[1] == test_harness.truth.stable_points[3]


class TestTraceEvaluator:
    def test_length_mismatch_rejected(self, test_harness):
        truth = test_harness.truth.subset([0, 1])
        with pytest.raises(DataModelError):
            TraceEvaluator(test_harness.split, truth)

    def test_quality_of_initial_counts(self, test_harness):
        evaluator = test_harness.evaluator
        quality = evaluator.quality_of_counts(test_harness.split.initial_counts)
        assert 0.0 < quality < 1.0

    def test_series_checkpoints_match_point_evaluation(self, test_harness):
        runner = test_harness.runner
        trace = runner.run(FewestPostsFirst(), budget=120)
        checkpoints = [0, 40, 80, 120]
        series = test_harness.evaluator.evaluate_series(trace, checkpoints)
        for position, budget in enumerate(checkpoints):
            expected = test_harness.evaluator.quality_of_x(trace.prefix_x(budget))
            assert series.quality[position] == pytest.approx(expected, abs=1e-9)

    def test_series_rejects_unsorted_checkpoints(self, test_harness):
        trace = test_harness.runner.run(RoundRobin(), budget=10)
        with pytest.raises(DataModelError):
            test_harness.evaluator.evaluate_series(trace, [10, 0])

    def test_wasted_series_matches_waste_module(self, test_harness):
        from repro.analysis import wasted_tasks

        trace = test_harness.runner.run(RoundRobin(), budget=150)
        series = test_harness.evaluator.evaluate_series(trace, [150])
        final = test_harness.split.initial_counts + trace.x
        expected = wasted_tasks(
            test_harness.split.initial_counts, final, test_harness.truth.stable_points
        )
        assert series.wasted[-1] == expected

    def test_under_fraction_series(self, test_harness):
        trace = test_harness.runner.run(FewestPostsFirst(), budget=200)
        series = test_harness.evaluator.evaluate_series(trace, [0, 200])
        # FP floods the under-tagged resources first: the fraction falls.
        assert series.under_fraction[-1] <= series.under_fraction[0]

    def test_checkpoints_beyond_trace_repeat_final_state(self, test_harness):
        trace = test_harness.runner.run(RoundRobin(), budget=50)
        series = test_harness.evaluator.evaluate_series(trace, [50, 10_000])
        assert series.quality[1] == pytest.approx(series.quality[0])

    def test_evaluate_x_consistency(self, test_harness):
        trace = test_harness.runner.run(RoundRobin(), budget=80)
        by_trace = test_harness.evaluator.evaluate_series(trace, [80])
        by_x = test_harness.evaluator.evaluate_x("RR", [80], [trace.x])
        assert by_x.quality[0] == pytest.approx(by_trace.quality[0], abs=1e-9)
        assert by_x.over_tagged[0] == by_trace.over_tagged[0]
        assert by_x.wasted[0] == by_trace.wasted[0]
        assert by_x.under_fraction[0] == pytest.approx(by_trace.under_fraction[0])


class TestPrefixX:
    def test_prefix_x_respects_spend(self):
        trace = AllocationTrace(
            strategy_name="t", n=3, budget=5, order=(0, 1, 2, 0), spend=(1, 2, 1, 1)
        )
        assert trace.prefix_x(0).tolist() == [0, 0, 0]
        assert trace.prefix_x(3).tolist() == [1, 1, 0]
        assert trace.prefix_x(99).tolist() == [2, 1, 1]

    def test_budget_spent(self):
        trace = AllocationTrace(
            strategy_name="t", n=2, budget=9, order=(0, 1), spend=(2, 3)
        )
        assert trace.budget_spent == 5
        assert trace.tasks_delivered == 2
