"""Tests for the Fig 6 experiment harnesses (qualitative paper claims)."""

import numpy as np
import pytest

from repro.experiments import (
    budget_to_stability,
    figure_6abcd,
    figure_6e,
    figure_6f,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
    runtime_vs_budget,
    runtime_vs_resources,
)


@pytest.fixture(scope="module")
def comparison(request):
    harness = request.getfixturevalue("test_harness")
    return figure_6abcd(harness=harness)


class TestFig6aQuality:
    def test_quality_series_monotone_strategies_improve(self, comparison):
        for name in ("FP", "FP-MU", "DP"):
            series = comparison[name]
            assert series.quality[-1] > series.quality[0]

    def test_dp_dominates_every_strategy(self, comparison):
        dp = comparison["DP"]
        dp_lookup = {int(b): q for b, q in zip(dp.budgets, dp.quality)}
        for name in ("FC", "RR", "FP", "MU", "FP-MU"):
            series = comparison[name]
            for budget, quality in zip(series.budgets, series.quality):
                if int(budget) in dp_lookup:
                    assert quality <= dp_lookup[int(budget)] + 1e-9

    def test_fp_and_fpmu_close_to_dp(self, comparison):
        # The paper's headline: FP/FP-MU are near-optimal.
        dp_final = comparison["DP"].quality[-1]
        initial = comparison["DP"].quality[0]
        dp_gain = dp_final - initial
        for name in ("FP", "FP-MU"):
            gain = comparison[name].final_quality() - initial
            assert gain >= 0.75 * dp_gain

    def test_fp_beats_fc_and_rr(self, comparison):
        assert comparison["FP"].final_quality() > comparison["FC"].final_quality()
        assert comparison["FP"].final_quality() > comparison["RR"].final_quality()

    def test_mu_improves_least_among_directed(self, comparison):
        # MU ignores the under-tagged resources; the paper observes it
        # barely improves quality.
        assert comparison["MU"].final_quality() < comparison["FP"].final_quality()


class TestFig6bOverTagging:
    def test_fp_mu_never_over_tag(self, comparison):
        for name in ("FP", "MU", "FP-MU"):
            series = comparison[name]
            assert series.over_tagged[-1] == series.over_tagged[0]

    def test_fc_increases_over_tagging(self, comparison):
        series = comparison["FC"]
        assert series.over_tagged[-1] >= series.over_tagged[0]


class TestFig6cWaste:
    def test_directed_strategies_waste_nothing(self, comparison):
        for name in ("FP", "MU", "FP-MU"):
            assert comparison[name].wasted[-1] == 0

    def test_fc_wastes_substantially(self, comparison):
        # At the reduced test scale the popularity head is thin, so the
        # share is below the paper's 48%; the default-scale benchmark
        # checks the headline number.  Here: clearly nonzero and growing.
        series = comparison["FC"]
        spent = int(series.budgets[-1])
        assert series.wasted[-1] > 0.1 * spent
        assert series.wasted[-1] > series.wasted[1]

    def test_fc_wastes_more_than_rr(self, comparison):
        assert comparison["FC"].wasted[-1] >= comparison["RR"].wasted[-1]


class TestFig6dUnderTagging:
    def test_fp_eliminates_under_tagging(self, comparison):
        assert comparison["FP"].under_fraction[-1] == 0.0

    def test_mu_cannot_reduce_below_ineligible_floor(self, comparison, test_harness):
        # Resources with fewer than omega initial posts are invisible to
        # MU and stay under-tagged forever: they are MU's floor.
        omega = test_harness.scale.omega
        floor = float(
            (test_harness.split.initial_counts < omega).mean()
        )
        series = comparison["MU"]
        assert series.under_fraction[-1] >= floor - 1e-9
        assert series.under_fraction[-1] == pytest.approx(floor, abs=0.05)

    def test_fc_remains_worst_or_near_worst(self, comparison):
        fc_final = comparison["FC"].under_fraction[-1]
        fp_final = comparison["FP"].under_fraction[-1]
        assert fc_final >= fp_final


class TestRenderers:
    @pytest.mark.parametrize(
        "renderer",
        [render_figure_6a, render_figure_6b, render_figure_6c, render_figure_6d],
    )
    def test_tables_include_all_strategies(self, comparison, renderer):
        text = renderer(comparison)
        for name in ("FC", "RR", "FP", "MU", "FP-MU", "DP"):
            assert name in text


class TestFig6e:
    def test_quality_decreases_with_corpus_size(self, test_harness):
        result = figure_6e(harness=test_harness, budget=100)
        for name in ("FP", "DP"):
            values = result.quality[name]
            assert values[0] >= values[-1]

    def test_dp_on_top_for_each_size(self, test_harness):
        result = figure_6e(harness=test_harness, budget=100)
        for i in range(len(result.resource_counts)):
            for name in ("FC", "RR", "FP", "MU", "FP-MU"):
                assert result.quality[name][i] <= result.quality["DP"][i] + 1e-9

    def test_render(self, test_harness):
        result = figure_6e(harness=test_harness, budget=100)
        assert "DP" in result.render()


class TestFig6f:
    def test_mu_quality_declines_with_omega(self, test_harness):
        result = figure_6f(harness=test_harness)
        assert result.mu_quality[0] > result.mu_quality[-1]

    def test_warmup_grows_with_omega(self, test_harness):
        result = figure_6f(harness=test_harness)
        assert (np.diff(result.fpmu_warmup) >= 0).all()

    def test_fpmu_at_least_fp_when_warmup_saturates(self, test_harness):
        result = figure_6f(harness=test_harness)
        saturated = result.fpmu_warmup >= result.budget
        for i in np.flatnonzero(saturated):
            assert result.fpmu_quality[i] == pytest.approx(result.fp_quality, abs=1e-9)


class TestRuntime:
    def test_runtime_rows_cover_all_strategies(self, test_harness):
        result = runtime_vs_budget(
            harness=test_harness, budgets=(50, 100), include_dp=True
        )
        assert set(result.seconds) == {"FC", "RR", "FP", "MU", "FP-MU", "DP"}
        assert all(len(v) == 2 for v in result.seconds.values())
        assert all((v >= 0).all() for v in result.seconds.values())

    def test_runtime_vs_resources(self, test_harness):
        result = runtime_vs_resources(harness=test_harness, budget=50, include_dp=False)
        assert result.parameter_values == test_harness.scale.resource_counts
        assert "DP" not in result.seconds

    def test_render(self, test_harness):
        result = runtime_vs_budget(harness=test_harness, budgets=(50,), include_dp=False)
        assert "budget" in result.render()


class TestBudgetToStability:
    def test_fp_reaches_stability_cheaper_than_fc(self, test_harness):
        result = budget_to_stability(test_harness)
        fp = result.budgets["FP"]
        fc = result.budgets["FC"]
        assert fp is not None
        if fc is not None:
            assert fp < fc

    def test_mu_never_stabilises_everyone(self, test_harness):
        # MU ignores sub-omega resources, which therefore never reach
        # their stable points.
        result = budget_to_stability(test_harness)
        assert result.budgets["MU"] is None

    def test_render(self, test_harness):
        text = budget_to_stability(test_harness).render()
        assert "FP" in text and "FC" in text
