"""Tests for the Tables VI/VII case studies and the Section I statistics."""

import pytest

from repro.experiments import intro_statistics, run_case_study


@pytest.fixture(scope="module")
def case_result(request):
    scenario = request.getfixturevalue("case_scenario")
    return run_case_study(scenario, budget=2500)


class TestCaseStudy:
    def test_four_tables(self, case_result):
        assert len(case_result.subjects) == 4

    def test_january_list_is_wrong_for_biased_subjects(self, case_result):
        physics = case_result.subjects[0]
        assert physics.overlaps["Jan 31"] <= 3

    def test_fp_recovers_the_ideal_list(self, case_result):
        physics = case_result.subjects[0]
        fp_column = next(k for k in physics.overlaps if k.startswith("FP"))
        # The paper reports 9/10 for myphysicslab; we require a clear win.
        assert physics.overlaps[fp_column] >= 7

    def test_fp_beats_fc_on_every_biased_subject(self, case_result):
        for subject in case_result.subjects[:3]:
            fp_column = next(k for k in subject.overlaps if k.startswith("FP"))
            fc_column = next(k for k in subject.overlaps if k.startswith("FC"))
            assert subject.overlaps[fp_column] > subject.overlaps[fc_column]

    def test_control_subject_identical_everywhere(self, case_result):
        espn = case_result.subjects[-1]
        assert espn.subject.story == "espn-control"
        for overlap in espn.overlaps.values():
            assert overlap >= 9  # all four columns effectively the same

    def test_fp_top10_dominated_by_true_leaf(self, case_result):
        physics = case_result.subjects[0]
        fp_column = next(k for k in physics.columns if k.startswith("FP"))
        rows = physics.columns[fp_column]
        true_leaf = physics.subject.true_leaf
        labelled = [
            case_result.labels.get(row.resource_id) for row in rows
        ]
        matches = sum(1 for leaf in labelled if leaf == true_leaf)
        assert matches >= 6

    def test_render(self, case_result):
        text = case_result.render()
        assert "subject: subject-physics-vs-java" in text
        assert "overlap with Dec 31" in text


class TestIntroStats:
    @pytest.fixture(scope="class")
    def stats(self):
        return intro_statistics(n=60, seed=7)

    def test_stable_point_scale_matches_paper(self, stats):
        # Paper: average 112, range 50-200.
        assert 80 <= stats.stable_points.mean <= 150
        assert stats.stable_points.minimum >= 40

    def test_under_tagged_fraction_plausible(self, stats):
        assert 0.10 <= stats.cutoff_report.under_tagged_fraction <= 0.5

    def test_waste_share_near_half(self, stats):
        # Paper: 48% of all posts land on already-stable resources.
        assert 0.25 <= stats.year_report.wasted_fraction <= 0.7

    def test_salvage_is_a_tiny_share_of_waste(self, stats):
        # Paper: 1% of wasted posts would rescue all under-tagged URLs.
        assert stats.salvage_ratio < 0.1

    def test_render(self, stats):
        text = stats.render()
        assert "stable points" in text
        assert "paper" in text
