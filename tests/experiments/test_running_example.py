"""Golden tests: every number of the paper's running example.

These are the strongest direct correctness checks the paper offers —
Tables II and IV print exact values computed from the definitions.
"""

import pytest

from repro.experiments import running_example


@pytest.fixture(scope="module")
def result():
    return running_example()


class TestTableII:
    def test_rfd_r1(self, result):
        assert result.rfd_r1 == pytest.approx(
            {"google": 0.4, "earth": 0.4, "geographic": 0.2}
        )

    def test_rfd_r2(self, result):
        assert result.rfd_r2 == pytest.approx({"pictures": 1.0})

    def test_q1_initial(self, result):
        assert result.q1_initial == pytest.approx(0.953, abs=5e-4)

    def test_q2_initial(self, result):
        assert result.q2_initial == pytest.approx(0.897, abs=5e-4)


class TestTableIV:
    def test_assignment_02(self, result):
        q1, q2, mean = result.assignment_qualities[(0, 2)]
        assert q1 == pytest.approx(0.953, abs=5e-4)
        assert q2 == pytest.approx(0.992, abs=2e-3)
        assert mean == pytest.approx(0.973, abs=2e-3)

    def test_assignment_11(self, result):
        q1, q2, mean = result.assignment_qualities[(1, 1)]
        assert q1 == pytest.approx(0.990, abs=5e-4)
        assert q2 == pytest.approx(0.990, abs=2e-3)
        assert mean == pytest.approx(0.990, abs=2e-3)

    def test_assignment_20(self, result):
        q1, q2, mean = result.assignment_qualities[(2, 0)]
        assert q1 == pytest.approx(0.943, abs=5e-4)
        assert q2 == pytest.approx(0.897, abs=5e-4)
        assert mean == pytest.approx(0.920, abs=5e-4)


class TestExample3:
    def test_optimal_assignment_is_1_1(self, result):
        assert result.optimal_x == (1, 1)

    def test_optimal_quality(self, result):
        assert result.optimal_quality == pytest.approx(0.990, abs=2e-3)

    def test_example_2_set_quality(self, result):
        mean = (result.q1_initial + result.q2_initial) / 2
        assert mean == pytest.approx(0.925, abs=5e-4)

    def test_render_mentions_paper_values(self, result):
        text = result.render()
        assert "0.953" in text
        assert "(1, 1)" in text
