"""Tests for Fig 7 (similarity accuracy) and Figs 1, 3, 5."""

import numpy as np
import pytest

from repro.experiments import (
    SimilarityAccuracyEvaluator,
    figure_1a,
    figure_1b,
    figure_3,
    figure_5,
    figure_7a,
    figure_7b,
)


class TestFig7a:
    @pytest.fixture(scope="class")
    def result(self, request):
        harness = request.getfixturevalue("test_harness")
        return figure_7a(harness=harness, subset_size=25)

    def test_accuracy_bounded(self, result):
        for values in result.accuracy.values():
            assert (values >= -1).all() and (values <= 1).all()

    def test_budget_improves_accuracy_for_fp(self, result):
        fp = result.accuracy["FP"]
        assert fp[-1] > fp[0]

    def test_dp_accuracy_improves(self, result):
        assert result.dp_accuracy[-1] > result.dp_accuracy[0]

    def test_render(self, result):
        text = result.render()
        assert "FP" in text and "DP" in text


class TestFig7b:
    def test_quality_accuracy_strongly_correlated(self, test_harness):
        fig7a = figure_7a(harness=test_harness, subset_size=25)
        fig7b = figure_7b(fig7a)
        # The paper reports > 0.98; the reduced scale keeps it high.
        assert fig7b.correlation > 0.7
        assert "correlation" in fig7b.render()

    def test_point_counts(self, test_harness):
        fig7a = figure_7a(harness=test_harness, subset_size=25)
        fig7b = figure_7b(fig7a)
        expected = len(fig7a.budgets) * len(fig7a.accuracy) + len(fig7a.dp_budgets)
        assert len(fig7b.quality) == expected


class TestSimilarityAccuracyEvaluator:
    def test_series_matches_point_evaluation(self, test_harness):
        from repro.allocation import FewestPostsFirst

        rng = np.random.default_rng(0)
        indices = sorted(int(i) for i in rng.choice(len(test_harness.corpus.dataset), 12, replace=False))
        corpus = test_harness.corpus.subset(indices)
        split = corpus.dataset.split(corpus.cutoff)
        from repro.allocation.runner import IncentiveRunner

        runner = IncentiveRunner.replay(split)
        evaluator = SimilarityAccuracyEvaluator(split, corpus.models)
        trace = runner.run(FewestPostsFirst(), budget=30)
        series = evaluator.series(trace, [0, 15, 30])
        assert series[0] == pytest.approx(
            evaluator.accuracy_of_counts(split.initial_counts), abs=1e-12
        )
        assert series[2] == pytest.approx(
            evaluator.accuracy_of_counts(split.initial_counts + trace.x), abs=1e-12
        )


class TestFig1:
    def test_fig1a_trajectories_converge(self):
        result = figure_1a(num_posts=400, step=20)
        half = len(result.checkpoints) // 2
        for t in range(len(result.tags)):
            late = result.trajectories[t][half:]
            early = result.trajectories[t][: half]
            assert late.std() < early.std() + 0.05

    def test_fig1a_tracked_tags_are_top_tags(self):
        result = figure_1a(num_posts=300)
        assert "google" in result.tags

    def test_fig1b_power_law_shape(self):
        result = figure_1b(n=1500, seed=3)
        assert result.bucket_counts[0] > result.bucket_counts[2] > 0
        assert result.slope < -1.0
        assert "slope" in result.render()


class TestFig3:
    def test_stable_point_detected(self):
        result = figure_3(num_posts=400, seed=0)
        assert result.stable_point is not None
        assert result.stable_point >= result.omega

    def test_ma_is_windowed_mean_of_adjacent(self):
        # Definitional invariant rendered by the figure: the MA at k is
        # the mean of the adjacent similarities at posts k-ω+2 .. k, so
        # it must lie inside that window's range.
        result = figure_3(num_posts=400, seed=0)
        omega = result.omega
        for k, ma in zip(result.ma_ks, result.ma_scores):
            window = result.adjacent[int(k) - omega + 1 : int(k)]
            assert window.min() - 1e-12 <= ma <= window.max() + 1e-12
            assert ma == pytest.approx(window.mean(), abs=1e-9)

    def test_render_marks_stable_point(self):
        result = figure_3(num_posts=400, seed=0)
        assert "stable point" in result.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure_5(num_posts=400, seed=0)

    def test_low_start_gains_much_more(self, result):
        assert result.low_gain > 5 * max(result.high_gain, 1e-6)

    def test_complex_resource_converges_slower(self, result):
        early = slice(20, 60)
        assert result.complex_quality[early].mean() <= result.simple_quality[early].mean() + 0.02

    def test_quality_curves_bounded(self, result):
        for curve in (result.simple_quality, result.complex_quality):
            assert (curve >= 0).all() and (curve <= 1).all()

    def test_render(self, result):
        assert "quality gain" in result.render()
