"""Tests for the telemetry registry: histograms, spans, activation."""

import json
import math
import threading

import pytest

import repro.obs as obs
from repro.obs import GROWTH, LatencyHistogram, NullTelemetry, Telemetry
from repro.obs.telemetry import _BOUNDS, _N_BUCKETS


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    def test_single_value_all_quantiles(self):
        histogram = LatencyHistogram()
        histogram.record(3.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            estimate = histogram.quantile(q)
            assert 3.0 / GROWTH <= estimate <= 3.0 * GROWTH

    def test_quantiles_within_one_bucket(self):
        histogram = LatencyHistogram()
        values = [0.1 * (i + 1) for i in range(100)]
        for value in values:
            histogram.record(value)
        values.sort()
        for q in (0.50, 0.95, 0.99):
            exact = values[max(1, math.ceil(q * len(values))) - 1]
            estimate = histogram.quantile(q)
            assert max(estimate / exact, exact / estimate) <= GROWTH * (1 + 1e-9)

    def test_mean_min_max_are_exact(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 9.0):
            histogram.record(value)
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.min == 1.0
        assert histogram.max == 9.0

    def test_underflow_and_overflow_clamp_to_observed(self):
        histogram = LatencyHistogram()
        tiny = _BOUNDS[0] / 10.0
        huge = _BOUNDS[_N_BUCKETS] * 10.0
        histogram.record(tiny)
        histogram.record(huge)
        assert histogram.quantile(0.0) == tiny
        assert histogram.quantile(1.0) == huge

    def test_merge_equals_union(self):
        left, right, union = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        a = [0.5, 1.5, 40.0]
        b = [0.002, 7.0, 7.0, 900.0]
        for value in a:
            left.record(value)
            union.record(value)
        for value in b:
            right.record(value)
            union.record(value)
        left.merge(right)
        assert left.counts == union.counts
        assert left.count == union.count
        assert left.total == pytest.approx(union.total)
        assert left.min == union.min and left.max == union.max

    def test_to_dict_shape(self):
        histogram = LatencyHistogram()
        histogram.record(2.0)
        payload = histogram.to_dict()
        assert set(payload) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestTelemetry:
    def test_counters_and_gauges(self):
        with Telemetry() as telemetry:
            telemetry.count("a")
            telemetry.count("a", 4)
            telemetry.gauge("g", 2.5)
            snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {"a": 5}
        assert snapshot["gauges"] == {"g": 2.5}

    def test_span_feeds_histogram(self):
        with Telemetry() as telemetry:
            with telemetry.span("op", detail="x"):
                pass
            snapshot = telemetry.snapshot()
        assert snapshot["histograms"]["op"]["count"] == 1

    def test_snapshot_is_json_safe(self):
        with Telemetry() as telemetry:
            telemetry.observe("h", 1.0)
            telemetry.count("c")
            json.dumps(telemetry.snapshot())  # must not raise

    def test_trace_stream_spans_and_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("work", shard=3):
            pass
        telemetry.event("crossed", resource=7)
        telemetry.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["ph"] for e in events] == ["X", "i"]
        assert events[0]["name"] == "work"
        assert events[0]["args"] == {"shard": 3}
        assert events[0]["dur"] >= 0
        assert events[1]["args"] == {"resource": 7}

    def test_close_is_idempotent(self, tmp_path):
        telemetry = Telemetry(trace_path=tmp_path / "t.jsonl")
        telemetry.close()
        telemetry.close()

    def test_thread_safe_counting(self):
        with Telemetry() as telemetry:
            def work():
                for _ in range(1000):
                    telemetry.count("n")
                    telemetry.observe("h", 1.0)

            threads = [threading.Thread(target=work) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["n"] == 4000
        assert snapshot["histograms"]["h"]["count"] == 4000


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        null = NullTelemetry()
        assert null.enabled is False
        null.count("x")
        null.gauge("g", 1.0)
        null.observe("h", 1.0)
        null.event("e")
        with null.span("s", a=1):
            pass
        assert null.snapshot() == {}

    def test_shared_singleton_is_default_active(self):
        assert obs.get() is obs.NULL


class TestActivation:
    def test_activated_restores_previous(self):
        before = obs.get()
        telemetry = Telemetry()
        with obs.activated(telemetry) as active:
            assert active is telemetry
            assert obs.get() is telemetry
        assert obs.get() is before
        telemetry.close()

    def test_activated_restores_on_exception(self):
        before = obs.get()
        with pytest.raises(RuntimeError):
            with obs.activated(Telemetry()):
                raise RuntimeError("boom")
        assert obs.get() is before

    def test_set_active_returns_previous(self):
        telemetry = Telemetry()
        previous = obs.set_active(telemetry)
        try:
            assert obs.get() is telemetry
        finally:
            assert obs.set_active(previous) is telemetry
        assert obs.get() is previous


class TestEnvConfig:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert obs.telemetry_from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert obs.telemetry_from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        assert obs.telemetry_from_env() is None

    def test_enabled_via_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.delenv("REPRO_TELEMETRY_OUT", raising=False)
        telemetry = obs.telemetry_from_env()
        assert isinstance(telemetry, Telemetry)
        telemetry.close()

        trace = tmp_path / "env_trace.jsonl"
        monkeypatch.setenv("REPRO_TELEMETRY_OUT", str(trace))
        telemetry = obs.telemetry_from_env()
        assert telemetry._trace_path == str(trace)
        telemetry.close()
