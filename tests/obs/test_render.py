"""Tests for telemetry rendering and the three load_stats file shapes."""

import json

import pytest

from repro.obs import Telemetry, load_stats, render_snapshot


@pytest.fixture()
def snapshot():
    with Telemetry() as telemetry:
        telemetry.count("engine.events", 500)
        telemetry.gauge("campaign.budget_remaining", 12.0)
        for value in (0.5, 1.0, 2.0, 40.0):
            telemetry.observe("engine.batch", value)
        return telemetry.snapshot()


class TestRenderSnapshot:
    def test_empty(self):
        assert render_snapshot({}) == "telemetry: no data recorded"

    def test_sections_present(self, snapshot):
        rendered = render_snapshot(snapshot)
        assert "latency (ms)" in rendered
        assert "counters" in rendered
        assert "gauges" in rendered
        assert "engine.batch" in rendered
        assert "engine.events" in rendered
        assert "500" in rendered

    def test_histogram_columns(self, snapshot):
        header = next(
            line for line in render_snapshot(snapshot).splitlines() if "p50" in line
        )
        for column in ("histogram", "count", "p50", "p95", "p99", "mean", "max"):
            assert column in header


class TestLoadStats:
    def test_snapshot_file(self, tmp_path, snapshot):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        loaded = load_stats(path)
        assert loaded["counters"] == snapshot["counters"]
        assert loaded["histograms"].keys() == snapshot["histograms"].keys()

    def test_run_result_file(self, tmp_path, snapshot):
        from repro.api import RunResult

        result = RunResult(kind="ingest", spec={"type": "ingest"}, telemetry=snapshot)
        path = tmp_path / "result.json"
        path.write_text(result.to_json())
        loaded = load_stats(path)
        assert loaded["counters"] == snapshot["counters"]

    def test_trace_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        for _ in range(3):
            with telemetry.span("op"):
                pass
        telemetry.event("crossed")
        telemetry.close()
        loaded = load_stats(path)
        assert loaded["histograms"]["op"]["count"] == 3
        assert loaded["counters"] == {"crossed": 1}
        # trace percentiles are exact (every duration is in the file)
        assert loaded["histograms"]["op"]["p50"] <= loaded["histograms"]["op"]["max"]

    def test_single_line_trace_is_not_mistaken_for_snapshot(self, tmp_path):
        path = tmp_path / "one.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("solo"):
            pass
        telemetry.close()
        loaded = load_stats(path)
        assert loaded["histograms"]["solo"]["count"] == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_stats(path) == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_non_object_json_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_stats(path)

    def test_renders_after_load(self, tmp_path, snapshot):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        assert "engine.batch" in render_snapshot(load_stats(path))
