"""Every example script must run clean at a reduced scale."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "--resources", "25", "--budget", "150")
        assert "FP" in output and "quality" in output

    def test_delicious_replay(self):
        output = run_example("delicious_replay.py", "--resources", "30")
        assert "Fig 6(a)" in output
        assert "budget to full stability" in output

    def test_similarity_case_study(self):
        output = run_example("similarity_case_study.py", "--budget", "1500")
        assert "subject-physics-vs-java" in output
        assert "correlation" in output

    def test_crowdsourcing_campaign(self):
        output = run_example(
            "crowdsourcing_campaign.py", "--resources", "25", "--budget", "150"
        )
        assert "refusals" in output

    def test_dataset_analysis(self):
        output = run_example(
            "dataset_analysis.py", "--resources", "30", "--universe", "600"
        )
        assert "Fig 1(a)" in output
        assert "Section I statistics" in output

    def test_incentive_service(self):
        output = run_example(
            "incentive_service.py", "--resources", "15", "--budget", "250"
        )
        assert "campaign:" in output
        assert "observably stable" in output

    def test_campaign_server(self):
        output = run_example("campaign_server.py")
        assert "admission control" in output
        assert "crashed mid-run" in output
        assert "tenant ledger reconciles exactly" in output

    def test_scenario_packs(self):
        output = run_example("scenario_packs.py", "--resources", "12")
        assert "registered packs (9)" in output
        assert "quality [drop]" in output
        assert "corpus quality travelled with the result" in output
        assert "server job job-0001 for 'demo': done" in output

    def test_spec_driven_run(self):
        output = run_example(
            "spec_driven_run.py", "--resources", "20", "--budget", "150"
        )
        assert "batched trace identical" in output
        assert "replayed from" in output
        assert "campaign:" in output
        assert "ingested 2,000 events" in output
