"""Unit tests for scripts/check_bench_regression.py (the CI bench gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def metric(value, *, higher=True, gate_it=True):
    return {"value": value, "unit": "x", "higher_is_better": higher, "gate": gate_it}


def write(tmp_path, name, metrics, smoke=True):
    path = tmp_path / name
    path.write_text(json.dumps({"smoke": smoke, "metrics": metrics}))
    return path


class TestCompare:
    def test_within_threshold_passes(self, gate):
        _, failures = gate.compare(
            {"m": metric(10.0)}, {"m": metric(8.0)}, threshold=0.25
        )
        assert failures == []

    def test_regression_beyond_threshold_fails(self, gate):
        _, failures = gate.compare(
            {"m": metric(10.0)}, {"m": metric(7.0)}, threshold=0.25
        )
        assert len(failures) == 1 and "m:" in failures[0]

    def test_improvement_always_passes(self, gate):
        _, failures = gate.compare(
            {"m": metric(10.0)}, {"m": metric(50.0)}, threshold=0.25
        )
        assert failures == []

    def test_lower_is_better_direction(self, gate):
        base = {"lat": metric(100.0, higher=False)}
        _, ok = gate.compare(base, {"lat": metric(120.0, higher=False)}, 0.25)
        assert ok == []
        _, bad = gate.compare(base, {"lat": metric(130.0, higher=False)}, 0.25)
        assert len(bad) == 1

    def test_missing_gated_metric_fails(self, gate):
        _, failures = gate.compare({"m": metric(10.0)}, {}, threshold=0.25)
        assert len(failures) == 1 and "missing" in failures[0].lower()

    def test_ungated_metric_never_fails(self, gate):
        base = {"abs": metric(1e6, gate_it=False)}
        _, failures = gate.compare(base, {"abs": metric(1.0, gate_it=False)}, 0.25)
        assert failures == []
        _, failures = gate.compare(base, {}, threshold=0.25)
        assert failures == []

    def test_new_pr_metric_is_reported_not_gated(self, gate):
        lines, failures = gate.compare({}, {"fresh": metric(3.0)}, threshold=0.25)
        assert failures == []
        assert any("fresh" in line and "new metric" in line for line in lines)


class TestMain:
    def test_exit_zero_on_pass(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", {"m": metric(10.0)})
        current = write(tmp_path, "pr.json", {"m": metric(9.5)})
        assert gate.main([str(baseline), str(current)]) == 0
        assert "no hot-path regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", {"m": metric(10.0)})
        current = write(tmp_path, "pr.json", {"m": metric(1.0)})
        assert gate.main([str(baseline), str(current)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_custom_threshold(self, gate, tmp_path):
        baseline = write(tmp_path, "base.json", {"m": metric(10.0)})
        current = write(tmp_path, "pr.json", {"m": metric(6.0)})
        assert gate.main([str(baseline), str(current), "--threshold", "0.5"]) == 0
        assert gate.main([str(baseline), str(current), "--threshold", "0.1"]) == 1

    def test_smoke_vs_full_baseline_widens_threshold(self, gate, tmp_path, capsys):
        # -30% would fail the plain 25% gate, but a smoke PR run against
        # a full-profile baseline gets the explicit mismatch margin
        baseline = write(tmp_path, "base.json", {"m": metric(10.0)}, smoke=False)
        current = write(tmp_path, "pr.json", {"m": metric(7.0)}, smoke=True)
        assert gate.main([str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "profile mismatch" in out and "40%" in out

    def test_full_vs_full_keeps_plain_threshold(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", {"m": metric(10.0)}, smoke=False)
        current = write(tmp_path, "pr.json", {"m": metric(7.0)}, smoke=False)
        assert gate.main([str(baseline), str(current)]) == 1
        assert "profile mismatch" not in capsys.readouterr().out

    def test_missing_file_errors(self, gate, tmp_path):
        current = write(tmp_path, "pr.json", {"m": metric(1.0)})
        with pytest.raises(SystemExit):
            gate.main([str(tmp_path / "nope.json"), str(current)])

    def test_malformed_json_errors(self, gate, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        current = write(tmp_path, "pr.json", {"m": metric(1.0)})
        with pytest.raises(SystemExit):
            gate.main([str(bad), str(current)])
