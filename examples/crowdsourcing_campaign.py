"""A live crowdsourcing campaign with the Section VI extensions.

Unlike the replay experiments, this simulation generates posts on demand
(a Mechanical-Turk-style open campaign) and exercises both future-work
extensions the paper sketches:

* **heterogeneous task costs** — complex resources pay 2 reward units per
  post, simple ones 1; the optimal plan uses the weighted-cost DP;
* **tagger preference** — each resource has an acceptance probability;
  offers can be refused, and the preference-aware MU variant learns
  acceptance rates online from refusals.

Run:  python examples/crowdsourcing_campaign.py  [--budget B]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.allocation import (
    CostAwareFewestPosts,
    FewestPostsFirst,
    IncentiveRunner,
    MostUnstableFirst,
    PreferenceAwareMostUnstable,
    popularity_chooser,
)
from repro.experiments.evaluation import GroundTruth, TraceEvaluator
from repro.simulate import TaggerBehavior, generate_post, paper_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=60)
    parser.add_argument("--budget", type=int, default=500)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    corpus = paper_scenario(n=args.resources, seed=args.seed)
    split = corpus.dataset.split(corpus.cutoff)
    truth = GroundTruth.build(corpus.dataset)
    evaluator = TraceEvaluator(split, truth)
    rng = np.random.default_rng(args.seed)

    # --- a generative tagger pool: posts are synthesised on demand -----
    behavior = TaggerBehavior()
    positions = split.initial_counts.astype(int).tolist()

    def factory(index: int):
        positions[index] += 1
        return generate_post(
            corpus.models[index], positions[index] - 1, 999.0, rng, behavior
        )

    weights = corpus.dataset.posts_per_resource().astype(float)
    runner = IncentiveRunner.generative(
        split.initial_counts,
        [split.initial_posts(i) for i in range(split.n)],
        factory,
        popularity_chooser(weights, rng),
    )

    before = evaluator.quality_of_counts(split.initial_counts)
    print(f"{split.n} resources, quality before the campaign: {before:.4f}\n")

    # --- extension 1: heterogeneous task costs --------------------------
    # Multi-aspect (complex) resources take longer to tag well: 2 units.
    costs = np.array(
        [2 if len(model.aspects) > 1 else 1 for model in corpus.models], dtype=np.int64
    )
    print(f"task costs: {int((costs == 2).sum())} resources cost 2 units, rest cost 1")
    for strategy in (FewestPostsFirst(), CostAwareFewestPosts()):
        trace = runner.run(strategy, budget=args.budget, costs=costs)
        expensive = int(sum(trace.x[i] for i in range(split.n) if costs[i] == 2))
        print(
            f"  {strategy.name:8s} delivered {trace.tasks_delivered} tasks for "
            f"{trace.budget_spent} units ({expensive} on 2-unit resources)"
        )

    # --- extension 2: tagger preference ---------------------------------
    # Obscure resources are unpopular jobs: low acceptance probability.
    acceptance = np.clip(0.25 + 0.75 * (weights / weights.max()), 0.05, 1.0)
    print(
        f"\nacceptance probabilities: min {acceptance.min():.2f}, "
        f"median {np.median(acceptance):.2f}"
    )
    for strategy in (
        MostUnstableFirst(omega=5),
        PreferenceAwareMostUnstable(omega=5),
    ):
        trace = runner.run(
            strategy,
            budget=args.budget,
            acceptance=acceptance,
            rng=np.random.default_rng(args.seed + 1),
        )
        print(
            f"  {strategy.name:8s} spent {trace.budget_spent}/{args.budget} units "
            f"with {trace.refusals} refusals along the way"
        )
    print(
        "\nThe preference-aware variant reroutes offers away from "
        "frequently-refusing resources, wasting fewer offers."
    )


if __name__ == "__main__":
    main()
