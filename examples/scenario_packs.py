"""Scenario packs: declarative corpora from the registry to a server job.

Every synthetic corpus in the repo is now a named *pack*: a registered
builder with a declared parameter schema, a deterministic seed, and a
quality pipeline that fingerprints and screens the generated resources.
One JSON blob names the pack and its knobs; the same blob drives
``repro.api.run`` directly or rides inside a campaign job submitted to
the async server.  This walkthrough:

1. lists the registry (the same table ``repro-tagging packs list``
   prints);
2. builds one pack and shows its quality report and corpus fingerprint;
3. runs a campaign over a pack corpus from a single JSON blob;
4. submits the identical blob as a server job and waits for it.

Run:  python examples/scenario_packs.py  [--resources N] [--budget B]
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.api import CampaignSpec, run, spec_from_json
from repro.api.specs import ServerSpec
from repro.packs import PACKS, PackSpec, build_pack
from repro.server import JobStore, Scheduler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=12)
    parser.add_argument("--budget", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    # 1. The registry is the single catalogue of synthetic corpora.
    print(f"registered packs ({len(PACKS)}):")
    for entry in PACKS.entries():
        knobs = ", ".join(entry.params) or "-"
        print(f"  {entry.name:20s} {entry.family:12s} [{knobs}]")
    print()

    # 2. Build one pack.  The quality pipeline fingerprints every
    #    resource, drops duplicates/degenerate ones (when the pack
    #    enforces), and reports what it saw.
    spec = PackSpec(
        name="capped-vocab",
        seed=args.seed,
        params={"n": args.resources, "cap": 4},
    )
    build = build_pack(spec)
    print(f"built {spec.name}: {build.report.kept} resources, "
          f"{build.corpus.dataset.total_posts} posts")
    for line in build.report.render().splitlines():
        print(f"  {line}")
    vocab = max(len(m.distribution) for m in build.corpus.models)
    print(f"  widest per-resource vocabulary: {vocab} tags (cap=4 + noise)\n")

    # 3. The same pack as one JSON blob through the run() front door.
    blob = json.dumps({
        "type": "campaign",
        "corpus": {"type": "corpus", "kind": "pack", "pack": "capped-vocab",
                   "pack_params": {"n": args.resources, "cap": 4},
                   "seed": args.seed},
        "strategy": "FP",
        "budget": args.budget,
        "workers": 3,
        "max_epochs": 4,
    })
    result = run(spec_from_json(blob))
    print(result.summary.splitlines()[0])
    quality = result.details["corpus_quality"]
    print(f"  corpus quality travelled with the result: "
          f"pack={quality['pack']} kept={quality['kept']}\n")

    # 4. The identical blob, submitted as a server job.
    scheduler = Scheduler(ServerSpec(slots=2), store=JobStore(None))
    job_id = scheduler.submit(CampaignSpec.from_json(blob), user="demo")
    asyncio.run(scheduler.run_until_idle())
    record = scheduler.status(job_id)
    print(f"server job {job_id} for {record.user!r}: {record.state}")
    print("\none JSON blob: CLI build, api.run campaign, and a server job")


if __name__ == "__main__":
    main()
