"""The multi-tenant campaign server, driven end to end in one process.

Server-mode sibling of ``incentive_service.py``: instead of running one
campaign inline, several users submit :class:`~repro.api.CampaignSpec`s
to a :class:`~repro.server.Scheduler`, which interleaves them epoch by
epoch under fair round-robin, enforces per-user budgets across
campaigns, checkpoints every few epochs, and survives a simulated
mid-run crash — resuming from the last checkpoint with the exact trace
an uninterrupted run would have produced.

Run:  python examples/campaign_server.py [--root DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import shutil
import tempfile
from pathlib import Path

from repro.api import CampaignSpec, CorpusSpec, JobSpec, ServerSpec
from repro.server import Scheduler


def build_specs() -> list[JobSpec]:
    """Two users, four campaigns, different strategies and backends."""
    corpus = CorpusSpec(kind="paper", resources=20, seed=13)
    return [
        JobSpec(user="alice", campaign=CampaignSpec(
            corpus=corpus, strategy="FP", budget=220, workers=8, seed=5,
            stop_tau=0.99, batch_size=20, max_epochs=40)),
        JobSpec(user="alice", campaign=CampaignSpec(
            corpus=corpus, strategy="MU", params={"omega": 5}, budget=180,
            workers=8, seed=6, stop_tau=0.99, batch_size=20, max_epochs=40,
            stability_backend="engine")),
        JobSpec(user="bob", campaign=CampaignSpec(
            corpus=corpus, strategy="FP", budget=200, workers=6, seed=7,
            stop_tau=0.995, batch_size=15, max_epochs=40,
            stability_backend="engine")),
        JobSpec(user="bob", campaign=CampaignSpec(
            corpus=corpus, strategy="RR", budget=150, workers=6, seed=8,
            stop_tau=0.995, batch_size=15, max_epochs=40)),
    ]


async def drive(root: Path) -> None:
    spec = ServerSpec(
        root=str(root),
        slots=3,
        checkpoint_every=4,
        budgets={"alice": 450, "bob": 400},
    )
    scheduler = Scheduler(spec)
    job_ids = [scheduler.submit(job) for job in build_specs()]
    print(f"submitted {len(job_ids)} campaigns for "
          f"{len({j.user for j in build_specs()})} users: {', '.join(job_ids)}")

    # Over-budget admission is refused up front, budget reserved for none.
    from repro.server import AdmissionError
    try:
        scheduler.submit(CampaignSpec(budget=500), user="alice")
    except AdmissionError as exc:
        print(f"admission control: {exc}")

    # Step everything part-way, then "crash" the server mid-run.
    runner = asyncio.ensure_future(scheduler.run_until_idle())
    while (
        not runner.done()
        and all(scheduler.store.get(j).epochs < 4 for j in job_ids)
    ):
        await asyncio.sleep(0)
    runner.cancel()  # the crash: no goodbye, no checkpoint flush
    try:
        await runner
    except asyncio.CancelledError:
        pass
    states = [scheduler.store.get(j) for j in job_ids]
    print("crashed mid-run at epochs "
          + ", ".join(f"{job.job_id}={job.epochs}" for job in states))

    # A fresh scheduler over the same root replays the journal and
    # resumes every interrupted job from its last checkpoint.
    revived = Scheduler(spec)
    await revived.run_until_idle()
    print("\nafter restart:")
    for record in revived.jobs():
        print(f"  {record.job_id}  user={record.user:<6} state={record.state:<5} "
              f"epochs={record.epochs:<3} spent={record.spent}")
    for user in ("alice", "bob"):
        print(f"  {user}: committed {revived.tenants.committed_for(user)} "
              f"of allowance {revived.tenants.allowance(user)}")
    assert revived.tenants.reconcile(), "tenant ledger must reconcile exactly"
    print("tenant ledger reconciles exactly")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="state directory (default: a temp dir, removed after)")
    args = parser.parse_args()
    root = args.root or Path(tempfile.mkdtemp(prefix="campaign-server-"))
    try:
        asyncio.run(drive(root))
    finally:
        if args.root is None:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
