"""The Tables VI/VII case study: fixing a resource's top-10 neighbours.

A physics-simulation site's early posts describe its Java implementation,
so its January top-10 similar resources are all Java sites.  Directing
post tasks at under-tagged resources (FP) repairs the ranking to match
the ideal year-end list, while free-choice tagging (FC) leaves it wrong.
Three more subjects reproduce Table VII, including the over-popular
"espn" control whose ranking is correct in every column.

Run:  python examples/similarity_case_study.py  [--budget B]
"""

from __future__ import annotations

import argparse

from repro.experiments import figure_7a, figure_7b, run_case_study
from repro.experiments.harness import ExperimentHarness
from repro.experiments.config import TEST_SCALE
from repro.simulate import case_study_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=2500)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = case_study_scenario(seed=args.seed)
    print(
        f"corpus: {len(scenario.corpus.dataset)} resources "
        f"({len(scenario.subjects)} engineered subjects)"
    )
    result = run_case_study(scenario, budget=args.budget)
    print(result.render())

    # Fig 7: does quality buy ranking accuracy in general, not just for
    # engineered subjects?  Run the Kendall-tau sweep on a small corpus.
    print("\n== Fig 7: similarity-ranking accuracy vs budget ==")
    harness = ExperimentHarness.from_scale(TEST_SCALE)
    fig7a = figure_7a(harness=harness, subset_size=30)
    print(fig7a.render())
    fig7b = figure_7b(fig7a)
    print(
        f"\nFig 7(b): correlation between tagging quality and ranking accuracy "
        f"= {fig7b.correlation:.3f} (paper reports > 0.98)"
    )


if __name__ == "__main__":
    main()
