"""Spec-driven runs: the whole system through one declarative API.

Everything the other examples wire up by hand — corpora, strategies,
runners, campaigns, the ingest engine — is reachable through
``repro.api.run(spec)``.  A spec is plain, validated data: it serializes
losslessly to JSON, so a run can be stored next to its result, shipped
over a queue, or replayed bit-for-bit later.  This walkthrough:

1. allocates a budget with FP through an ``AllocateSpec`` (the scalar
   Algorithm 1 loop);
2. re-runs the *identical* allocation with ``batch_size=64`` and the
   engine-backed stability monitor — same trace, batched bookkeeping;
3. round-trips the spec through JSON and replays it from the parsed
   copy, proving reproducibility;
4. runs a small campaign and a streaming ingest through the same
   ``run()`` front door.

Run:  python examples/spec_driven_run.py  [--resources N] [--budget B]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    ExecutionSpec,
    IngestSpec,
    STRATEGIES,
    run,
    spec_from_json,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=40)
    parser.add_argument("--budget", type=int, default=400)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    corpus = CorpusSpec(kind="paper", resources=args.resources, seed=args.seed)

    # 1. One allocation run, declaratively.  Strategy parameters are
    #    validated against the registry's declared schemas — an unknown
    #    name or a misspelt parameter fails *before* anything runs.
    spec = AllocateSpec(
        corpus=corpus,
        strategy="MU",
        params=STRATEGIES.filter_params("MU", omega=5),
        budget=args.budget,
    )
    scalar = run(spec)
    print(scalar.summary)

    # 2. The batched CHOOSE protocol: same decisions, chunked bookkeeping.
    batched = run(spec.replace(batch_size=64, stability="engine"))
    print(batched.summary)
    assert batched.details["order"] == scalar.details["order"], "traces must match"
    print(f"   batched trace identical across {len(batched.details['order'])} tasks\n")

    # 3. Round-trip through JSON and replay — the serialized spec *is*
    #    the full reproduction recipe (results embed it too).
    wire = spec.to_json()
    replay = run(spec_from_json(wire))
    assert replay.details["order"] == scalar.details["order"]
    print(f"replayed from {len(wire)} bytes of JSON: {replay.summary}\n")

    # 4. The same front door runs campaigns and streaming ingestion.
    campaign = run(
        CampaignSpec(
            corpus=CorpusSpec(kind="paper", resources=max(10, args.resources // 3),
                              seed=args.seed),
            strategy="FP",
            budget=args.budget // 2,
            workers=6,
            stability_backend="engine",
        )
    )
    print(campaign.summary.splitlines()[0])
    ingest = run(
        IngestSpec(resources=50, max_events=2_000, execution=ExecutionSpec(shards=2))
    )
    print(ingest.summary.splitlines()[0])
    print("\nevery result above is one JSON-serializable RunResult")


if __name__ == "__main__":
    main()
