"""Corpus analysis: the Section I story on synthetic data.

Reproduces the paper's motivating statistics — rfd convergence of a
popular resource (Fig 1(a)), the MA-score picture (Fig 3), the power-law
posts distribution (Fig 1(b)), the stable-point distribution (50–200,
avg ≈ 112), and the over/under-tagging and wasted-post shares.

Run:  python examples/dataset_analysis.py
"""

from __future__ import annotations

import argparse

from repro.experiments import figure_1a, figure_1b, figure_3, figure_5, intro_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=120)
    parser.add_argument("--universe", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("== Fig 1(a): tag relative frequencies converge with posts ==")
    fig1a = figure_1a(num_posts=500, step=50, seed=args.seed)
    print(fig1a.render())

    print("\n== Fig 1(b): posts-per-resource follows a power law ==")
    print(figure_1b(n=args.universe, seed=args.seed).render())

    print("\n== Fig 3: adjacent similarity, MA score, stable point ==")
    print(figure_3(seed=args.seed).render(step=40))

    print("\n== Fig 5: diminishing returns of additional posts ==")
    print(figure_5(seed=args.seed).render(step=50))

    print("\n== Section I statistics ==")
    print(intro_statistics(n=args.resources, seed=args.seed).render())


if __name__ == "__main__":
    main()
