"""The Section V experiment, end to end, on one corpus.

Reproduces the core of the paper's evaluation: all five practical
strategies plus the optimal DP, scored at budget checkpoints for quality
(Fig 6(a)), over-tagging (6(b)), wasted tasks (6(c)) and under-tagged
fraction (6(d)) — then prints the ω sweep (6(f)) and the budget-to-full-
stability comparison.

Run:  python examples/delicious_replay.py  [--resources N]
(defaults are sized for ~1 minute; pass --resources 1000 for a larger run)
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.experiments import (
    DEFAULT_SCALE,
    ExperimentHarness,
    budget_to_stability,
    figure_6abcd,
    figure_6f,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    factor = args.resources / DEFAULT_SCALE.n_resources
    scale = replace(
        DEFAULT_SCALE,
        n_resources=args.resources,
        seed=args.seed,
        budgets=tuple(sorted({int(round(b * factor)) for b in DEFAULT_SCALE.budgets})),
        dp_budgets=tuple(
            sorted({int(round(b * factor)) for b in DEFAULT_SCALE.dp_budgets})
        ),
        omega_sweep_budget=max(1, int(DEFAULT_SCALE.omega_sweep_budget * factor)),
        resource_counts=tuple(
            sorted({max(5, int(round(n * factor))) for n in DEFAULT_SCALE.resource_counts})
        ),
    )
    print(f"building corpus (n={scale.n_resources}, seed={scale.seed}) ...")
    harness = ExperimentHarness.from_scale(scale)

    comparison = figure_6abcd(harness=harness)
    print("\n== Fig 6(a): tagging quality vs budget ==")
    print(render_figure_6a(comparison))
    print("\n== Fig 6(b): over-tagged resources vs budget ==")
    print(render_figure_6b(comparison))
    print("\n== Fig 6(c): wasted post tasks vs budget ==")
    print(render_figure_6c(comparison))
    print("\n== Fig 6(d): under-tagged fraction vs budget ==")
    print(render_figure_6d(comparison))

    print("\n== Fig 6(f): effect of the window parameter omega ==")
    print(figure_6f(harness=harness).render())

    print("\n== Section V-B: budget to bring EVERY resource to stability ==")
    print(budget_to_stability(harness).render())


if __name__ == "__main__":
    main()
