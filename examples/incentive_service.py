"""The incentive-tagging service prototype (the paper's Fig 2, run live).

Spins up the full service loop: an allocation strategy proposes post
tasks, a job board publishes them, a simulated crowd (with topical
preferences) claims and completes them, a ledger pays rewards — and an
*adaptive stopper* retires resources whose observed rfd has stabilised,
so the budget keeps flowing to resources that still need it.

Run:  python examples/incentive_service.py [--budget B] [--workers W]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.allocation import FewestPostsFirst, StabilityAwareFewestPosts
from repro.core.stability import StabilityTracker
from repro.service import IncentiveCampaign, WorkerPool
from repro.simulate import paper_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=40)
    parser.add_argument("--budget", type=int, default=900)
    parser.add_argument("--workers", type=int, default=12)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    corpus = paper_scenario(n=args.resources, seed=args.seed)
    split = corpus.dataset.split(corpus.cutoff)
    initial_posts = [split.initial_posts(i) for i in range(split.n)]
    print(
        f"corpus: {split.n} resources, "
        f"{int(split.initial_counts.sum())} initial posts, "
        f"budget {args.budget} reward units, {args.workers} workers"
    )

    rng = np.random.default_rng(args.seed)
    pool = WorkerPool.uniform(args.workers, corpus.hierarchy, rng)

    campaign = IncentiveCampaign(
        corpus.models,
        initial_posts,
        FewestPostsFirst(),
        pool,
        budget=args.budget,
        rng=rng,
        stop_tau=0.995,
        batch_size=60,
    )
    result = campaign.run(max_epochs=60)
    print("\n" + result.render())

    # How healthy is the corpus now, judged purely from observed posts?
    stable = 0
    for i in range(split.n):
        tracker = StabilityTracker(5, 0.995)
        tracker.add_posts(initial_posts[i])
        for post in result.bought_posts[i]:
            tracker.add_post(post.tags)
        if tracker.is_stable:
            stable += 1
    print(
        f"\nobservably stable resources after the campaign: {stable}/{split.n} "
        f"(adaptively retired during the run: {len(result.stopped_resources)})"
    )

    top_earner = max(
        {p.worker_id for p in result.ledger.payouts},
        key=result.ledger.balance_of,
        default=None,
    )
    if top_earner is not None:
        print(
            f"top-earning worker: {top_earner} with "
            f"{result.ledger.balance_of(top_earner)} units"
        )


if __name__ == "__main__":
    main()
