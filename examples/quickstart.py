"""Quickstart: the paper's pipeline in ~60 lines.

Generates a small synthetic del.icio.us-style corpus, freezes it at the
"January 31" cutoff, runs the paper's recommended FP strategy against the
status-quo FC baseline, and scores both against ground truth.

Run:  python examples/quickstart.py  [--resources N] [--budget B]
"""

from __future__ import annotations

import argparse

from repro.allocation import FewestPostsFirst, FreeChoice, IncentiveRunner
from repro.experiments.evaluation import GroundTruth, TraceEvaluator
from repro.simulate import paper_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resources", type=int, default=80)
    parser.add_argument("--budget", type=int, default=600)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. A corpus whose resources all reach a practically-stable rfd —
    #    the same selection the paper applies to its del.icio.us dump.
    corpus = paper_scenario(n=args.resources, seed=args.seed)
    print(f"corpus: {len(corpus.dataset)} resources, {corpus.dataset.total_posts} posts")

    # 2. Freeze at the cutoff: earlier posts are the initial state c,
    #    later posts replay as completed post tasks.
    split = corpus.dataset.split(corpus.cutoff)
    print(
        f"at the cutoff: {split.initial_counts.sum()} initial posts "
        f"({(split.initial_counts <= 10).mean():.0%} of resources under-tagged)"
    )

    # 3. Ground truth (stable rfds + quality profiles) for evaluation.
    truth = GroundTruth.build(corpus.dataset)
    evaluator = TraceEvaluator(split, truth)
    before = evaluator.quality_of_counts(split.initial_counts)
    print(f"tagging quality before any incentives: {before:.4f}")

    # 4. Spend the budget through two strategies and compare.
    runner = IncentiveRunner.replay(split)
    for strategy in (FreeChoice(), FewestPostsFirst()):
        trace = runner.run(strategy, budget=args.budget)
        after = evaluator.quality_of_x(trace.x)
        series = evaluator.evaluate_series(trace, [args.budget])
        print(
            f"{strategy.name:3s}: quality {before:.4f} -> {after:.4f} "
            f"(+{after - before:.4f}), wasted tasks: {int(series.wasted[-1])}, "
            f"under-tagged now: {series.under_fraction[-1]:.0%}"
        )


if __name__ == "__main__":
    main()
