"""Fail CI when a hot-path bench metric regresses against the baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_BASELINE.json BENCH_PR.json \
        [--threshold 0.25]

Both files are produced by the benchmark suite's ``BENCH_JSON`` hook
(see ``benchmarks/_metrics.py``).  Every metric the *baseline* marks
``gate: true`` is enforced:

* ``higher_is_better`` metrics fail below ``baseline * (1 - threshold)``;
* lower-is-better metrics fail above ``baseline * (1 + threshold)``;
* a gated metric missing from the PR run fails outright (a silently
  skipped bench must not pass the gate).

Metrics only present in the PR run (new benches) and metrics marked
``gate: false`` (machine-dependent absolutes) are reported but never
fail the check.  Exit code 1 on any regression.

The committed baseline comes from a **full** profile run
(``scripts/update_bench_baseline.py``) while CI measures the quick
smoke profile, which systematically under-measures the vectorized hot
paths (smaller populations, fewer rounds).  When the PR run is smoke
and the baseline is not, the threshold is widened by
``PROFILE_MISMATCH_MARGIN`` — explicitly, and reported in the output —
so the gate watches for real regressions instead of the profile gap.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.25

#: Extra allowed regression when a smoke-profile run is compared against
#: a full-profile baseline (the smoke profile under-measures the
#: vectorized paths by roughly this much).
PROFILE_MISMATCH_MARGIN = 0.15


def load_payload(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: metrics file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(payload.get("metrics"), dict):
        raise SystemExit(f"error: {path} has no 'metrics' object")
    return payload


def compare(
    baseline: dict[str, dict],
    current: dict[str, dict],
    threshold: float,
) -> tuple[list[str], list[str]]:
    """Compare runs; return ``(report_lines, failures)``."""
    lines: list[str] = []
    failures: list[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        gated = bool(base.get("gate", True))
        base_value = float(base["value"])
        if name not in current:
            line = f"  {name:40s} baseline={base_value:10.3f}  MISSING from PR run"
            if gated:
                failures.append(f"{name}: gated metric missing from PR run")
                line += "  ** FAIL"
            lines.append(line)
            continue
        value = float(current[name]["value"])
        higher = bool(base.get("higher_is_better", True))
        if higher:
            floor = base_value * (1.0 - threshold)
            regressed = value < floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = base_value * (1.0 + threshold)
            regressed = value > ceiling
            bound = f"<= {ceiling:.3f}"
        change = (value - base_value) / base_value if base_value else 0.0
        status = "ungated" if not gated else ("FAIL" if regressed else "ok")
        lines.append(
            f"  {name:40s} baseline={base_value:10.3f}  pr={value:10.3f}  "
            f"({change:+.1%}, need {bound})  {status}"
        )
        if gated and regressed:
            failures.append(
                f"{name}: {value:.3f} vs baseline {base_value:.3f} "
                f"({change:+.1%}, threshold {threshold:.0%})"
            )
    for name in sorted(set(current) - set(baseline)):
        lines.append(
            f"  {name:40s} new metric (pr={float(current[name]['value']):10.3f}); "
            "add it to BENCH_BASELINE.json to gate it"
        )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_BASELINE.json")
    parser.add_argument("current", type=Path, help="this run's BENCH_PR.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression on gated metrics (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error(f"--threshold must lie in [0, 1), got {args.threshold}")

    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    threshold = args.threshold
    if current_payload.get("smoke") and not baseline_payload.get("smoke"):
        threshold = min(0.95, threshold + PROFILE_MISMATCH_MARGIN)
        print(
            f"profile mismatch: PR run is smoke, baseline is full — "
            f"threshold widened to {threshold:.0%} "
            f"(+{PROFILE_MISMATCH_MARGIN:.0%})"
        )
    lines, failures = compare(
        baseline_payload["metrics"], current_payload["metrics"], threshold
    )
    print(f"bench regression check ({args.current} vs {args.baseline}):")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} hot-path regression(s) beyond {threshold:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno hot-path regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
