#!/usr/bin/env python
"""Regenerate ``tests/fixtures/pack_fingerprints.json``.

The fixture pins, for every registered scenario pack, one small
deterministic build: the (seed, params) used and the resulting corpus
fingerprint (a SHA-256 over canonical post content — see
:func:`repro.packs.quality.corpus_fingerprint`).  The pack test suite
rebuilds each entry and compares fingerprints, in-process and across
subprocesses with different ``PYTHONHASHSEED`` values, so any
accidental rng or iteration-order change in a builder shows up as a
pinned-fingerprint mismatch.

Run from the repo root after intentionally changing a builder:

    PYTHONPATH=src python scripts/generate_pack_fingerprints.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.packs import PACKS, PackSpec, build_pack  # noqa: E402

FIXTURE = REPO / "tests" / "fixtures" / "pack_fingerprints.json"

# Small parameterisations: every pack builds in well under a second so
# the fixture check can run on every registered pack in tier-1 CI.
SMALL_PARAMS: dict[str, dict] = {
    "paper-default": {"n": 12, "overgeneration": 3.0},
    "small": {"n": 12},
    "tiny": {},
    "universe": {"n": 25},
    "figure1a": {"num_posts": 80},
    "capped-vocab": {"n": 12, "cap": 4},
    "adverse-selection": {"n": 12, "incentive": 0.5},
    "incentive-framing": {"n": 12, "framing": "lottery"},
    "budget-seeded": {"n": 12, "seeds": 4},
}

SEED = 1


def main() -> int:
    missing = sorted(set(PACKS.names()) - set(SMALL_PARAMS))
    if missing:
        raise SystemExit(
            f"no small parameterisation declared for pack(s): {', '.join(missing)}; "
            f"add them to SMALL_PARAMS in {__file__}"
        )
    entries: dict[str, dict] = {}
    for name in PACKS.names():
        spec = PackSpec(name=name, seed=SEED, params=SMALL_PARAMS[name])
        build = build_pack(spec)
        entries[name] = {
            "seed": spec.seed,
            "params": SMALL_PARAMS[name],
            "fingerprint": build.report.fingerprint,
            "resources": build.report.kept,
            "posts": build.corpus.dataset.total_posts,
        }
        print(f"{name}: {build.report.fingerprint[:16]} "
              f"({build.report.kept} resources)")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
