"""Regenerate ``BENCH_BASELINE.json`` from a full (non-smoke) bench run.

Usage::

    python scripts/update_bench_baseline.py            # full profile
    python scripts/update_bench_baseline.py --smoke    # quick CI profile
    python scripts/update_bench_baseline.py --dry-run  # measure, don't write

Runs the hot-path benchmark files (the same set CI's ``bench-smoke`` job
gates on) with the ``BENCH_JSON`` hook, compares the fresh numbers
against the committed baseline for review, and rewrites the baseline
file.  Refresh the baseline only after an *intended* perf change, on a
quiet machine, and commit the result together with the change that
motivated it; the full profile is the honest one — a ``"smoke": true``
baseline under-measures the hot paths (smaller populations, fewer
rounds) and makes the 25% CI gate looser than it looks.

Gate flags travel with the metrics themselves (each bench declares
``gate=`` when recording), so regenerating never silently un-gates a
metric.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The hot-path benches CI gates on (keep in sync with ci.yml bench-smoke).
HOT_PATH_BENCHES = (
    "benchmarks/bench_engine_throughput.py",
    "benchmarks/bench_batched_runner.py",
    "benchmarks/bench_campaign_backends.py",
    "benchmarks/bench_load_replay.py",
    "benchmarks/bench_server_replay.py",
    "benchmarks/bench_corpus_packs.py",
    "benchmarks/bench_fault_recovery.py",
)


def run_benches(bench_files: list[str], smoke: bool) -> dict:
    """Run the benches with ``BENCH_JSON`` set; return the metrics payload."""
    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["BENCH_JSON"] = str(metrics_path)
        env["BENCH_SMOKE"] = "1" if smoke else "0"
        env["PYTHONHASHSEED"] = "0"
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [sys.executable, "-m", "pytest", "-q", "-s", *bench_files]
        print(f"running: {' '.join(command)}  (smoke={smoke})")
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(
                f"error: benchmark run failed (exit {completed.returncode}); "
                "baseline left untouched"
            )
        if not metrics_path.exists():
            raise SystemExit(
                "error: benchmark run recorded no metrics "
                "(did every bench file import benchmarks/_metrics.py?)"
            )
        return json.loads(metrics_path.read_text())


def summarize(old_path: Path, payload: dict) -> None:
    """Print old-vs-new per metric so the refresh is reviewable."""
    old_metrics = {}
    if old_path.exists():
        old_metrics = json.loads(old_path.read_text()).get("metrics", {})
    print(f"\n{'metric':42s} {'old':>12s} {'new':>12s}")
    for name, metric in sorted(payload["metrics"].items()):
        value = metric["value"]
        gated = " [gated]" if metric.get("gate") else ""
        if name in old_metrics:
            old_value = float(old_metrics[name]["value"])
            change = (value - old_value) / old_value if old_value else 0.0
            print(f"{name:42s} {old_value:12.3f} {value:12.3f}  ({change:+.1%}){gated}")
        else:
            print(f"{name:42s} {'—':>12s} {value:12.3f}  (new){gated}")
    dropped = sorted(set(old_metrics) - set(payload["metrics"]))
    for name in dropped:
        print(f"{name:42s}  DROPPED (bench no longer records it)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_files",
        nargs="*",
        default=list(HOT_PATH_BENCHES),
        help="bench files to run (default: the CI-gated hot-path set)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the quick smoke profile (the committed baseline should "
        "normally come from a full run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_BASELINE.json",
        help="baseline file to rewrite (default: BENCH_BASELINE.json)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="run and report, but do not rewrite the baseline",
    )
    args = parser.parse_args(argv)

    payload = run_benches(list(args.bench_files), smoke=args.smoke)
    summarize(args.output, payload)
    if args.dry_run:
        print("\ndry run: baseline left untouched")
        return 0
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output} (smoke={payload.get('smoke', False)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
