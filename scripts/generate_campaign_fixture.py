"""Regenerate the pinned campaign traces in ``tests/fixtures/``.

The fixture freezes the exact per-epoch behaviour of
:class:`~repro.service.campaign.IncentiveCampaign` for every stability
backend on a handful of small specs.  The monitor-unification refactor
(and any future change to the campaign hot path) must keep these traces
byte-identical: the test ``tests/service/test_campaign_pinned.py``
replays the specs and compares against this file.

Run from the repo root::

    PYTHONPATH=src python scripts/generate_campaign_fixture.py

Only regenerate the fixture when a trace change is *intended* (e.g. a
deliberate semantic change to adaptive stopping), and say so in the
commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

FIXTURE_PATH = Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "campaign_traces.json"

PINNED_SPECS: list[dict] = [
    {
        "type": "campaign",
        "corpus": {"type": "corpus", "kind": "paper", "resources": 20, "seed": 13},
        "strategy": "FP",
        "budget": 250,
        "workers": 8,
        "seed": 5,
        "omega": 5,
        "stop_tau": 0.99,
        "stability_backend": "tracker",
        "batch_size": 20,
        "max_epochs": 60,
    },
    {
        "type": "campaign",
        "corpus": {"type": "corpus", "kind": "paper", "resources": 20, "seed": 13},
        "strategy": "FP",
        "budget": 250,
        "workers": 8,
        "seed": 5,
        "omega": 5,
        "stop_tau": 0.99,
        "stability_backend": "engine",
        "batch_size": 20,
        "max_epochs": 60,
    },
    {
        "type": "campaign",
        "corpus": {"type": "corpus", "kind": "paper", "resources": 15, "seed": 7},
        "strategy": "MU",
        "params": {"omega": 5},
        "budget": 180,
        "workers": 6,
        "seed": 11,
        "omega": 5,
        "stop_tau": 0.995,
        "stability_backend": "tracker",
        "batch_size": 15,
        "max_epochs": 50,
    },
    {
        "type": "campaign",
        "corpus": {"type": "corpus", "kind": "paper", "resources": 15, "seed": 7},
        "strategy": "MU",
        "params": {"omega": 5},
        "budget": 180,
        "workers": 6,
        "seed": 11,
        "omega": 5,
        "stop_tau": 0.995,
        "stability_backend": "engine",
        "batch_size": 15,
        "max_epochs": 50,
    },
]


def campaign_trace(spec_payload: dict) -> dict:
    """Run one campaign spec and canonicalize everything trace-visible.

    Canonicalization lives in
    :meth:`~repro.service.campaign.CampaignResult.trace_payload` so the
    fixture, the pinned tests and the campaign server all compare the
    same bytes.
    """
    import repro.api as api
    from repro.api.specs import CampaignSpec
    from repro.service import IncentiveCampaign

    spec = CampaignSpec.from_dict(spec_payload)
    corpus = api.materialize(spec.corpus)
    campaign = IncentiveCampaign.from_spec(spec, corpus)
    try:
        result = campaign.run(max_epochs=spec.max_epochs)
    finally:
        campaign.close()  # release pooled shard executors
    return result.trace_payload()


def main() -> int:
    entries = [
        {"spec": payload, "trace": campaign_trace(payload)} for payload in PINNED_SPECS
    ]
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps({"traces": entries}, indent=2, sort_keys=True) + "\n")
    print(f"pinned {len(entries)} campaign traces to {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
