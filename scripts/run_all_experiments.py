"""Regenerate every figure/table at the default scale and save the output.

Writes ``results/<item>.txt`` for each experiment; EXPERIMENTS.md quotes
these.  Takes a few minutes at the default scale.

Run:  python scripts/run_all_experiments.py [outdir]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import (
    DEFAULT_SCALE,
    ExperimentHarness,
    budget_to_stability,
    figure_1a,
    figure_1b,
    figure_3,
    figure_5,
    figure_6abcd,
    figure_6e,
    figure_6f,
    figure_7a,
    figure_7b,
    intro_statistics,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
    run_case_study,
    running_example,
    runtime_vs_budget,
    runtime_vs_resources,
)
from repro.simulate import case_study_scenario


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    outdir.mkdir(exist_ok=True)

    def save(name: str, text: str, started: float) -> None:
        (outdir / f"{name}.txt").write_text(text + "\n")
        print(f"[{time.time() - started:7.1f}s] wrote {name}", flush=True)

    t0 = time.time()
    save("table2_running_example", running_example().render(), t0)
    save("fig1a", figure_1a(num_posts=500, step=50).render(), t0)
    save("fig1b", figure_1b(n=5000, seed=7).render(), t0)
    save("fig3", figure_3(seed=7).render(step=40), t0)
    save("fig5", figure_5(seed=7).render(step=50), t0)

    print("building default-scale harness ...", flush=True)
    harness = ExperimentHarness.from_scale(DEFAULT_SCALE)
    save("intro_stats", intro_statistics(corpus=harness.corpus).render(), t0)

    comparison = figure_6abcd(harness=harness)
    save("fig6a_quality", render_figure_6a(comparison), t0)
    save("fig6b_overtagged", render_figure_6b(comparison), t0)
    save("fig6c_wasted", render_figure_6c(comparison), t0)
    save("fig6d_undertagged", render_figure_6d(comparison), t0)
    save("fig6e_resources", figure_6e(harness=harness).render(), t0)
    save("fig6f_omega", figure_6f(harness=harness).render(), t0)
    save(
        "fig6g_runtime_budget",
        runtime_vs_budget(harness=harness, budgets=(500, 1000, 1500, 2000, 2500)).render(),
        t0,
    )
    save("fig6h_runtime_n", runtime_vs_resources(harness=harness, budget=600).render(), t0)

    fig7a = figure_7a(harness=harness, subset_size=100)
    save("fig7a_accuracy", fig7a.render(), t0)
    fig7b = figure_7b(fig7a)
    save(
        "fig7b_correlation",
        f"correlation (Eq. 15) = {fig7b.correlation:.4f}\n" + fig7b.render(),
        t0,
    )

    save("stability_budget", budget_to_stability(harness).render(), t0)

    scenario = case_study_scenario(seed=1)
    save("table6_7_case_study", run_case_study(scenario, budget=2500).render(), t0)

    print(f"done in {time.time() - t0:.1f}s", flush=True)


if __name__ == "__main__":
    main()
