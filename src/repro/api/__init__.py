"""repro.api — the declarative front door of the reproduction.

One way in, for everything::

    from repro.api import AllocateSpec, CorpusSpec, run

    result = run(AllocateSpec(
        corpus=CorpusSpec(kind="paper", resources=150, seed=7),
        strategy="FP",
        budget=500,
        batch_size=64,
        stability="engine",
    ))
    print(result.summary)          # what the CLI would print
    result.to_json()               # store / queue / replay it

The pieces:

* **Specs** (:mod:`repro.api.specs`) — frozen, validated descriptions of
  a run (:class:`CorpusSpec`, :class:`AllocateSpec`,
  :class:`CampaignSpec`, :class:`IngestSpec`) with lossless JSON
  round-tripping.
* **Registry** (:mod:`repro.api.registry`) — strategies register
  themselves with declared parameter schemas; nothing guesses
  constructor signatures anymore.
* **Dispatch** (:func:`run`) — turns any runnable spec into a
  :class:`RunResult`, the single JSON-serializable result type.

The CLI is a thin argv→spec translator over this module, and the
experiment harness builds its strategy lineups from the same registry.

Implementation note: :func:`run` and the corpus materializer are loaded
lazily (PEP 562) because they import the allocation/service layers,
which themselves import :mod:`repro.api.registry` to register strategies
— eager imports here would be circular.
"""

from __future__ import annotations

from typing import Any

from repro.api.registry import (
    STRATEGIES,
    Param,
    RegisteredStrategy,
    StrategyRegistry,
    register_strategy,
)
from repro.api.results import JobRecord, RunResult
from repro.api.specs import (
    ALLOCATION_MODES,
    CORPUS_KINDS,
    EXECUTOR_BACKENDS,
    STABILITY_BACKENDS,
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    ExecutionSpec,
    IngestSpec,
    JobSpec,
    RetryPolicy,
    ServerSpec,
    Spec,
    TelemetrySpec,
    spec_from_dict,
    spec_from_json,
)

__all__ = [
    "ALLOCATION_MODES",
    "AllocateSpec",
    "CORPUS_KINDS",
    "CampaignSpec",
    "CorpusSpec",
    "EXECUTOR_BACKENDS",
    "ExecutionSpec",
    "IngestSpec",
    "JobRecord",
    "JobSpec",
    "MaterializedCorpus",
    "Param",
    "RegisteredStrategy",
    "RetryPolicy",
    "RunResult",
    "STABILITY_BACKENDS",
    "STRATEGIES",
    "ServerSpec",
    "Spec",
    "StrategyRegistry",
    "TelemetrySpec",
    "materialize",
    "register_strategy",
    "run",
    "spec_from_dict",
    "spec_from_json",
]

_LAZY = {
    "run": ("repro.api.dispatch", "run"),
    "materialize": ("repro.api.corpus", "materialize"),
    "MaterializedCorpus": ("repro.api.corpus", "MaterializedCorpus"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
