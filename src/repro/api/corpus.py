"""Materializing a :class:`~repro.api.specs.CorpusSpec` into data.

One function, :func:`materialize`, turns the declarative corpus
description into a :class:`MaterializedCorpus` — the dataset plus
whatever ground truth the source provides (generated scenarios carry
latent models and a taxonomy; JSONL corpora carry only posts).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.dataset import TaggingDataset
from repro.core.errors import SpecError
from repro.api.specs import CORPUS_KINDS, CorpusSpec

__all__ = ["MaterializedCorpus", "materialize"]


@dataclass(frozen=True)
class MaterializedCorpus:
    """A corpus plus as much ground truth as its source provides.

    Attributes:
        spec: The spec this corpus came from.
        dataset: The posts.
        cutoff: Split cutoff (spec override, else the generated corpus'
            own; ``None`` when a ``jsonl`` spec omitted it).
        models: Latent resource models (generated kinds only).
        hierarchy: Topic taxonomy (generated kinds only).
    """

    spec: CorpusSpec
    dataset: TaggingDataset
    cutoff: float | None
    models: list | None = None
    hierarchy: object | None = None
    generated: object | None = None
    """The underlying :class:`~repro.simulate.generator.GeneratedCorpus`
    for generated kinds (``None`` for ``jsonl``); consumers that need the
    full generation provenance (e.g. the experiment harness) use this."""
    quality: dict | None = None
    """The pack build's :class:`~repro.packs.quality.QualityReport` as a
    dict (``kind="pack"`` only) — embedded in run results for
    provenance."""

    @property
    def n(self) -> int:
        """Number of resources."""
        return len(self.dataset)

    def require_cutoff(self) -> float:
        """The cutoff, or a :class:`SpecError` explaining how to set one."""
        if self.cutoff is None:
            raise SpecError(
                f"corpus kind {self.spec.kind!r} needs an explicit cutoff to split "
                "initial from future posts; set CorpusSpec.cutoff"
            )
        return float(self.cutoff)

    def require_models(self) -> list:
        """The latent models, or a :class:`SpecError` for model-less corpora."""
        if self.models is None:
            raise SpecError(
                f"corpus kind {self.spec.kind!r} has no latent models; generative "
                "and campaign runs need a generated corpus (paper/universe/tiny/small)"
            )
        return self.models


def materialize(spec: CorpusSpec) -> MaterializedCorpus:
    """Build the corpus a spec describes.

    Generated kinds call the :mod:`repro.simulate` scenario constructors;
    ``jsonl`` loads a dataset from disk.

    Raises:
        SpecError: For a missing JSONL file.
    """
    if spec.kind == "jsonl":
        assert spec.path is not None  # guaranteed by CorpusSpec validation
        path = Path(spec.path)
        if not path.exists():
            raise SpecError(f"corpus file does not exist: {path}")
        dataset = TaggingDataset.from_jsonl(path)
        return MaterializedCorpus(spec=spec, dataset=dataset, cutoff=spec.cutoff)

    if spec.kind == "pack":
        from repro.packs import PackSpec, build_pack

        build = build_pack(
            PackSpec(name=spec.pack, seed=spec.seed, params=spec.pack_params)
        )
        corpus = build.corpus
        cutoff = spec.cutoff if spec.cutoff is not None else corpus.cutoff
        return MaterializedCorpus(
            spec=spec,
            dataset=corpus.dataset,
            cutoff=float(cutoff),
            models=corpus.models,
            hierarchy=corpus.hierarchy,
            generated=corpus,
            quality=build.report.to_dict(),
        )

    from repro.simulate import (
        paper_scenario,
        small_scenario,
        tiny_scenario,
        universe_scenario,
    )

    if spec.kind == "paper":
        corpus = paper_scenario(n=spec.resources, seed=spec.seed)
    elif spec.kind == "universe":
        corpus = universe_scenario(seed=spec.seed, n=spec.resources)
    elif spec.kind == "small":
        corpus = small_scenario(seed=spec.seed, n=spec.resources)
    elif spec.kind == "tiny":  # fixed-size by construction
        corpus = tiny_scenario(seed=spec.seed)
    else:
        from repro.packs import PACKS

        raise SpecError(
            f"cannot materialize corpus kind {spec.kind!r}; known kinds: "
            f"{', '.join(sorted(CORPUS_KINDS))} "
            f"(registered packs: {', '.join(PACKS.names()) or '(none)'})"
        )
    cutoff = spec.cutoff if spec.cutoff is not None else corpus.cutoff
    return MaterializedCorpus(
        spec=spec,
        dataset=corpus.dataset,
        cutoff=float(cutoff),
        models=corpus.models,
        hierarchy=corpus.hierarchy,
        generated=corpus,
    )
