"""Frozen, validated run specs — the declarative surface of :mod:`repro.api`.

A spec is a frozen dataclass that fully describes one run: which corpus,
which strategy with which parameters, how much budget, which backends.
Specs are **plain data**: they round-trip losslessly through
``to_dict``/``from_dict`` (and ``to_json``/``from_json``), so a campaign
can be submitted over a queue, stored next to its results, sharded
across workers, and replayed later — none of which the old trio of
ad-hoc entry points (`IncentiveRunner`, `IncentiveCampaign`,
`IngestEngine`) could express.

Validation happens at construction (``__post_init__``), so a spec that
exists is a spec that can run; ``from_dict`` additionally rejects
unknown keys and mismatched ``type`` tags with a
:class:`~repro.core.errors.SpecError`.
"""

from __future__ import annotations

import dataclasses
import json
import random
import warnings
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.core.errors import SpecError
from repro.engine.executor import EXECUTOR_BACKENDS

__all__ = [
    "EXECUTOR_BACKENDS",
    "Spec",
    "CorpusSpec",
    "ExecutionSpec",
    "TelemetrySpec",
    "AllocateSpec",
    "CampaignSpec",
    "IngestSpec",
    "RetryPolicy",
    "JobSpec",
    "ServerSpec",
    "spec_from_dict",
    "spec_from_json",
]

CORPUS_KINDS = ("paper", "universe", "tiny", "small", "jsonl", "pack")
"""Recognised corpus sources: legacy generated scenarios, JSONL files on
disk, and registered scenario packs (``kind="pack"`` + a pack name)."""

STABILITY_BACKENDS = ("tracker", "engine", "sharded")
"""Per-post scalar trackers, the batched columnar ``StabilityBank``, or
the sharded bank behind the CRC32 hash router (large populations)."""

ALLOCATION_MODES = ("replay", "generative")
"""Replay the corpus' future posts, or synthesise posts from its models."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool))


@dataclass(frozen=True)
class Spec:
    """Base class: dict/JSON round-tripping shared by every spec type.

    Class attributes:
        TYPE: The tag written into ``to_dict()['type']`` and dispatched
            on by :func:`spec_from_dict`.
        _NESTED: Field name -> spec class, for fields holding sub-specs.
        _NESTED_DEFAULTS: Field name -> default overrides merged *under*
            a nested dict payload (so a partial nested dict inherits the
            **embedding** spec's defaults, not the nested class' own —
            e.g. ``IngestSpec`` defaults its execution block to one
            shard).
        _EXEC_ALIASES: Deprecated flat key -> ``execution`` field name.
            ``from_dict`` folds these into the ``execution`` block with
            a :class:`DeprecationWarning`, so every spec JSON written
            before :class:`ExecutionSpec` existed still loads and runs
            identically.
    """

    TYPE: ClassVar[str] = ""
    _NESTED: ClassVar[dict[str, type[Spec]]] = {}
    _NESTED_DEFAULTS: ClassVar[dict[str, dict[str, Any]]] = {}
    _EXEC_ALIASES: ClassVar[dict[str, str]] = {}

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict; ``from_dict`` inverts it losslessly."""
        payload: dict[str, Any] = {"type": self.TYPE}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Spec):
                value = value.to_dict()
            elif isinstance(value, dict):
                value = dict(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> Spec:
        """Rebuild a spec, rejecting unknown keys and bad values.

        Raises:
            SpecError: On a non-dict payload, a mismatched ``type`` tag,
                unknown keys, or any value the constructor rejects.
        """
        if not isinstance(payload, dict):
            raise SpecError(f"{cls.__name__}.from_dict expects a dict, got {type(payload).__name__}")
        data = dict(payload)
        tag = data.pop("type", cls.TYPE)
        if tag != cls.TYPE:
            raise SpecError(f"{cls.__name__}.from_dict got type tag {tag!r}, expected {cls.TYPE!r}")
        if cls._EXEC_ALIASES:
            data = cls._fold_exec_aliases(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"{cls.__name__} does not define field(s) "
                f"{', '.join(repr(u) for u in unknown)}; known: {', '.join(sorted(known))}"
            )
        for name, nested_cls in cls._NESTED.items():
            if name in data and isinstance(data[name], dict):
                nested = data[name]
                defaults = cls._NESTED_DEFAULTS.get(name)
                if defaults:
                    merged = dict(defaults)
                    merged.update(nested)
                    nested = merged
                data[name] = nested_cls.from_dict(nested)
        return cls(**data)

    @classmethod
    def _fold_exec_aliases(cls, data: dict[str, Any]) -> dict[str, Any]:
        """Fold deprecated flat execution keys into the nested block."""
        folded: dict[str, Any] = {}
        for old_key, new_key in cls._EXEC_ALIASES.items():
            if old_key not in data:
                continue
            warnings.warn(
                f"{cls.__name__} key {old_key!r} is deprecated; "
                f"use execution.{new_key} (ExecutionSpec) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            folded[new_key] = data.pop(old_key)
        if not folded:
            return data
        target = data.get("execution")
        if target is None:
            data["execution"] = folded
        elif isinstance(target, dict):
            target = dict(target)
            for key, value in folded.items():
                if key in target and target[key] != value:
                    raise SpecError(
                        f"{cls.__name__}: deprecated key for execution.{key} "
                        f"({value!r}) conflicts with the execution block "
                        f"({target[key]!r}); drop the deprecated key"
                    )
                target[key] = value
            data["execution"] = target
        else:
            for key, value in folded.items():
                if getattr(target, key) != value:
                    raise SpecError(
                        f"{cls.__name__}: deprecated key for execution.{key} "
                        f"({value!r}) conflicts with the execution spec "
                        f"({getattr(target, key)!r}); drop the deprecated key"
                    )
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The spec as a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> Spec:
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{cls.__name__}.from_json: invalid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def replace(self, **changes: Any) -> Spec:
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CorpusSpec(Spec):
    """Where the resources come from.

    Attributes:
        kind: One of :data:`CORPUS_KINDS` — a generated scenario
            (``paper``/``universe``/``tiny``/``small``), a ``jsonl``
            corpus on disk, or a registered scenario ``pack``.
        resources: Resource count for generated kinds (ignored for
            ``jsonl`` and ``pack``; ``tiny`` is fixed-size by
            definition — packs size themselves through ``pack_params``).
        seed: Generation seed (generated kinds and packs).
        path: JSONL file path (required iff ``kind == 'jsonl'``).
        cutoff: Optional split cutoff override.  Generated corpora carry
            their own cutoff; a ``jsonl`` corpus needs one whenever the
            run splits initial from future posts.
        pack: Registered pack name (required iff ``kind == 'pack'``);
            validated against :data:`repro.packs.PACKS`, so an unknown
            name raises at construction listing the registered packs.
        pack_params: Pack parameter overrides, checked against the
            pack's declared schema at construction.
    """

    TYPE: ClassVar[str] = "corpus"

    kind: str = "paper"
    resources: int = 150
    seed: int = 7
    path: str | None = None
    cutoff: float | None = None
    pack: str | None = None
    pack_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check(self.kind in CORPUS_KINDS, f"corpus kind must be one of {CORPUS_KINDS}, got {self.kind!r}")
        _check(_is_int(self.resources) and self.resources >= 1,
               f"corpus resources must be a positive int, got {self.resources!r}")
        _check(_is_int(self.seed), f"corpus seed must be an int, got {self.seed!r}")
        _check(self.path is None or isinstance(self.path, str),
               f"corpus path must be a string or None, got {self.path!r}")
        if self.kind == "jsonl":
            _check(self.path is not None, "corpus kind 'jsonl' requires a path")
        else:
            _check(self.path is None, f"corpus kind {self.kind!r} does not take a path")
        _check(self.cutoff is None or _is_number(self.cutoff),
               f"corpus cutoff must be a number or None, got {self.cutoff!r}")
        _check(isinstance(self.pack_params, dict),
               f"corpus pack_params must be a dict, got {self.pack_params!r}")
        _check(all(isinstance(k, str) for k in self.pack_params),
               "corpus pack_params keys must be strings")
        if self.kind == "pack":
            _check(isinstance(self.pack, str) and bool(self.pack),
                   "corpus kind 'pack' requires a pack name; "
                   "list the registered packs with `repro packs list`")
            # Validate eagerly against the registry (lazy import: the
            # pack families pull in the simulate layer) so an unknown
            # name or undeclared parameter fails at spec construction
            # with the full registered-pack listing, not mid-run.
            from repro.packs import PACKS

            PACKS.get(self.pack).validate_params(self.pack_params)
        else:
            _check(self.pack is None,
                   f"corpus kind {self.kind!r} does not take a pack name "
                   f"(got pack={self.pack!r}); use kind='pack'")
            _check(not self.pack_params,
                   f"corpus kind {self.kind!r} does not take pack_params; use kind='pack'")


@dataclass(frozen=True)
class TelemetrySpec(Spec):
    """Telemetry configuration for one run (see :mod:`repro.obs`).

    Attach one to a runnable spec and :func:`repro.api.run` activates a
    fresh :class:`~repro.obs.Telemetry` for the run's duration, embeds
    its snapshot in ``RunResult.telemetry``, and (optionally) streams
    span/instant events to a JSONL trace file.

    Attributes:
        enabled: Whether to record at all (``False`` keeps the shared
            no-op singleton active — useful for toggling a stored spec
            without deleting its telemetry block).
        trace_path: Optional JSONL trace sink (Chrome trace-event lines).
        snapshot_path: Optional path the final snapshot is written to as
            pretty JSON (it is embedded in the result either way).
    """

    TYPE: ClassVar[str] = "telemetry"

    enabled: bool = True
    trace_path: str | None = None
    snapshot_path: str | None = None

    def __post_init__(self) -> None:
        _check(isinstance(self.enabled, bool),
               f"telemetry enabled must be a bool, got {self.enabled!r}")
        _check(self.trace_path is None or isinstance(self.trace_path, str),
               f"telemetry trace_path must be a path string or None, got {self.trace_path!r}")
        _check(self.snapshot_path is None or isinstance(self.snapshot_path, str),
               f"telemetry snapshot_path must be a path string or None, got {self.snapshot_path!r}")


@dataclass(frozen=True)
class ExecutionSpec(Spec):
    """How a run's sharded stability kernels execute.

    One frozen block replacing the flat knob trio that used to be
    copy-pasted across :class:`AllocateSpec`, :class:`CampaignSpec` and
    :class:`IngestSpec`.  Execution is *mechanism, not meaning*: every
    backend × shards × workers combination produces byte-identical
    traces; this spec only decides how fast they arrive.

    Attributes:
        backend: One of :data:`EXECUTOR_BACKENDS` — ``serial`` (inline),
            ``thread`` (pooled GIL-releasing kernels) or ``process``
            (long-lived workers owning their shards' banks, fed through
            shared memory; the only backend that scales past the GIL).
        shards: Shard count of the sharded stability bank.
        workers: Pool size for pooled backends (``0`` = one per core,
            capped).
        min_parallel_events: Optional override of the inline-dispatch
            cutoff (batches below it skip the pool); ``None`` keeps
            the engine default.  State-owning backends ignore it.
    """

    TYPE: ClassVar[str] = "execution"

    backend: str = "serial"
    shards: int = 4
    workers: int = 0
    min_parallel_events: int | None = None

    def __post_init__(self) -> None:
        _check(self.backend in EXECUTOR_BACKENDS,
               f"execution backend must be one of {EXECUTOR_BACKENDS}, got {self.backend!r}")
        _check(_is_int(self.shards) and self.shards >= 1,
               f"execution shards must be a positive int, got {self.shards!r}")
        _check(_is_int(self.workers) and self.workers >= 0,
               f"execution workers must be a non-negative int, got {self.workers!r}")
        _check(self.min_parallel_events is None
               or (_is_int(self.min_parallel_events) and self.min_parallel_events >= 0),
               f"execution min_parallel_events must be a non-negative int or None, "
               f"got {self.min_parallel_events!r}")


@dataclass(frozen=True)
class AllocateSpec(Spec):
    """One allocation run: a strategy spending a budget on a corpus.

    Attributes:
        corpus: The corpus to allocate over.
        strategy: Registered strategy name (validated at run time against
            :data:`repro.api.registry.STRATEGIES`).
        params: Strategy parameters; must match the declared schema.
        budget: Reward units to spend.
        batch_size: CHOOSE() chunk size — 1 reproduces the scalar
            Algorithm 1 loop; larger values use the batched protocol
            (byte-identical traces, amortized bookkeeping).
        mode: ``replay`` (the paper's evaluation setup) or
            ``generative`` (posts synthesised from the corpus models).
        stability: Optional online stability monitoring backend
            (:data:`STABILITY_BACKENDS`); ``None`` disables monitoring.
        stability_tau: Observed-MA threshold the monitor watches for.
            (The monitor's window is ``params['omega']`` when the
            strategy declares one, so strategy and monitor never
            silently disagree.)
        execution: How the ``sharded`` monitor's kernels run
            (:class:`ExecutionSpec`).  The flat keys
            ``stability_shards``/``stability_executor``/
            ``stability_workers`` are accepted by ``from_dict`` as
            deprecated aliases.
        seed: Run-time randomness seed (generative post synthesis).
        telemetry: Optional :class:`TelemetrySpec`; when present and
            enabled, :func:`repro.api.run` records counters/latency
            histograms for the run and embeds the snapshot in
            ``RunResult.telemetry``.
    """

    TYPE: ClassVar[str] = "allocate"
    _NESTED: ClassVar[dict[str, type[Spec]]] = {
        "corpus": CorpusSpec, "execution": ExecutionSpec, "telemetry": TelemetrySpec
    }
    _EXEC_ALIASES: ClassVar[dict[str, str]] = {
        "stability_shards": "shards",
        "stability_executor": "backend",
        "stability_workers": "workers",
    }

    corpus: CorpusSpec = field(default_factory=CorpusSpec)
    strategy: str = "FP"
    params: dict[str, Any] = field(default_factory=dict)
    budget: int = 500
    batch_size: int = 1
    mode: str = "replay"
    stability: str | None = None
    stability_tau: float = 0.99
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    seed: int = 0
    telemetry: TelemetrySpec | None = None

    # Deprecated flat views of the execution block (kept so existing
    # call sites read the same values they always did).
    @property
    def stability_shards(self) -> int:
        return self.execution.shards

    @property
    def stability_executor(self) -> str:
        return self.execution.backend

    @property
    def stability_workers(self) -> int:
        return self.execution.workers

    def __post_init__(self) -> None:
        _check(isinstance(self.corpus, CorpusSpec),
               f"allocate corpus must be a CorpusSpec, got {type(self.corpus).__name__}")
        _check(isinstance(self.strategy, str) and bool(self.strategy),
               f"allocate strategy must be a non-empty string, got {self.strategy!r}")
        _check(isinstance(self.params, dict), f"allocate params must be a dict, got {self.params!r}")
        _check(all(isinstance(k, str) for k in self.params), "allocate params keys must be strings")
        _check(_is_int(self.budget) and self.budget >= 0,
               f"allocate budget must be a non-negative int, got {self.budget!r}")
        _check(_is_int(self.batch_size) and self.batch_size >= 1,
               f"allocate batch_size must be a positive int, got {self.batch_size!r}")
        _check(self.mode in ALLOCATION_MODES,
               f"allocate mode must be one of {ALLOCATION_MODES}, got {self.mode!r}")
        _check(self.stability is None or self.stability in STABILITY_BACKENDS,
               f"allocate stability must be None or one of {STABILITY_BACKENDS}, got {self.stability!r}")
        _check(_is_number(self.stability_tau) and 0.0 <= self.stability_tau <= 1.0,
               f"allocate stability_tau must lie in [0, 1], got {self.stability_tau!r}")
        _check(isinstance(self.execution, ExecutionSpec),
               f"allocate execution must be an ExecutionSpec, got {type(self.execution).__name__}")
        _check(_is_int(self.seed), f"allocate seed must be an int, got {self.seed!r}")
        _check(self.telemetry is None or isinstance(self.telemetry, TelemetrySpec),
               f"allocate telemetry must be a TelemetrySpec or None, got {self.telemetry!r}")


@dataclass(frozen=True)
class CampaignSpec(Spec):
    """One service campaign: the Fig 2 loop with a worker pool.

    Attributes:
        corpus: Corpus to run the campaign on (must be a generated kind —
            the worker pool tags from the corpus' latent models).
        strategy: Registered strategy name.
        params: Strategy parameters (declared schema).
        budget: Total reward units.
        workers: Simulated crowd size.
        seed: Worker-pool / free-choice randomness seed.
        omega: MA window of the adaptive stopper.
        stop_tau: Observed-MA retirement threshold (``None`` disables
            adaptive stopping).
        stability_backend: ``tracker`` (per-post stopping), ``engine``
            (epoch-batched ``StabilityBank``) or ``sharded`` (the bank
            behind the hash router, for large resource populations).
        execution: How the ``sharded`` backend's kernels run
            (:class:`ExecutionSpec`) — traces are byte-identical for
            every choice.  ``stability_shards``/``stability_executor``/
            ``stability_workers`` are accepted by ``from_dict`` as
            deprecated aliases.
        batch_size: Task offers attempted per epoch.
        max_epochs: Hard stop on campaign length.
        max_offers: Worker draws attempted per published task before the
            task is abandoned as unfilled.
        reward_per_task: Units paid per completed task.
        telemetry: Optional :class:`TelemetrySpec` (see
            :class:`AllocateSpec`); telemetry only observes, so campaign
            traces are byte-identical with it on or off.
    """

    TYPE: ClassVar[str] = "campaign"
    _NESTED: ClassVar[dict[str, type[Spec]]] = {
        "corpus": CorpusSpec, "execution": ExecutionSpec, "telemetry": TelemetrySpec
    }
    _EXEC_ALIASES: ClassVar[dict[str, str]] = {
        "stability_shards": "shards",
        "stability_executor": "backend",
        "stability_workers": "workers",
    }

    corpus: CorpusSpec = field(default_factory=lambda: CorpusSpec(resources=40))
    strategy: str = "FP"
    params: dict[str, Any] = field(default_factory=dict)
    budget: int = 600
    workers: int = 10
    seed: int = 7
    omega: int = 5
    stop_tau: float | None = 0.995
    stability_backend: str = "tracker"
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    batch_size: int = 25
    max_epochs: int = 100
    max_offers: int = 10
    reward_per_task: int = 1
    telemetry: TelemetrySpec | None = None

    # Deprecated flat views of the execution block.  (``workers`` is the
    # simulated crowd size — a campaign concept — and stays a real
    # field; only the stability-execution knobs moved.)
    @property
    def stability_shards(self) -> int:
        return self.execution.shards

    @property
    def stability_executor(self) -> str:
        return self.execution.backend

    @property
    def stability_workers(self) -> int:
        return self.execution.workers

    def __post_init__(self) -> None:
        _check(isinstance(self.corpus, CorpusSpec),
               f"campaign corpus must be a CorpusSpec, got {type(self.corpus).__name__}")
        _check(self.corpus.kind != "jsonl",
               "campaign corpus must be a generated kind (workers tag from latent models)")
        _check(isinstance(self.strategy, str) and bool(self.strategy),
               f"campaign strategy must be a non-empty string, got {self.strategy!r}")
        _check(isinstance(self.params, dict), f"campaign params must be a dict, got {self.params!r}")
        _check(_is_int(self.budget) and self.budget >= 0,
               f"campaign budget must be a non-negative int, got {self.budget!r}")
        _check(_is_int(self.workers) and self.workers >= 1,
               f"campaign workers must be a positive int, got {self.workers!r}")
        _check(_is_int(self.seed), f"campaign seed must be an int, got {self.seed!r}")
        _check(_is_int(self.omega) and self.omega >= 2,
               f"campaign omega must be an int >= 2, got {self.omega!r}")
        _check(self.stop_tau is None or (_is_number(self.stop_tau) and 0.0 <= self.stop_tau <= 1.0),
               f"campaign stop_tau must be None or in [0, 1], got {self.stop_tau!r}")
        _check(self.stability_backend in STABILITY_BACKENDS,
               f"campaign stability_backend must be one of {STABILITY_BACKENDS}, "
               f"got {self.stability_backend!r}")
        _check(isinstance(self.execution, ExecutionSpec),
               f"campaign execution must be an ExecutionSpec, got {type(self.execution).__name__}")
        _check(_is_int(self.batch_size) and self.batch_size >= 1,
               f"campaign batch_size must be a positive int, got {self.batch_size!r}")
        _check(_is_int(self.max_epochs) and self.max_epochs >= 1,
               f"campaign max_epochs must be a positive int, got {self.max_epochs!r}")
        _check(_is_int(self.max_offers) and self.max_offers >= 1,
               f"campaign max_offers must be a positive int, got {self.max_offers!r}")
        _check(_is_int(self.reward_per_task) and self.reward_per_task >= 1,
               f"campaign reward_per_task must be a positive int, got {self.reward_per_task!r}")
        _check(self.telemetry is None or isinstance(self.telemetry, TelemetrySpec),
               f"campaign telemetry must be a TelemetrySpec or None, got {self.telemetry!r}")


@dataclass(frozen=True)
class IngestSpec(Spec):
    """One streaming-ingestion run through the vectorized engine.

    Attributes:
        dataset: JSONL corpus to replay as an event stream, or ``None``
            for the deterministic synthetic interleaved stream.
        resources: Synthetic-stream resource count.
        seed: Synthetic-stream seed.
        execution: Bank sharding and kernel execution
            (:class:`ExecutionSpec`; defaults to one shard here —
            results are identical for every choice).  The flat keys
            ``shards``/``executor``/``workers`` are accepted by
            ``from_dict`` as deprecated aliases.
        batch_size: Events per engine batch (the vectorization grain).
        omega: MA window.
        tau: Stability threshold.
        max_events: Optional cap on the synthetic stream length.
        checkpoint: Directory to write a final checkpoint to.
        resume: Checkpoint directory to resume from (its bank parameters
            override ``omega``/``tau``/shard count; the execution knobs
            still apply).
        telemetry: Optional :class:`TelemetrySpec` (see
            :class:`AllocateSpec`).
    """

    TYPE: ClassVar[str] = "ingest"
    _NESTED: ClassVar[dict[str, type[Spec]]] = {
        "execution": ExecutionSpec, "telemetry": TelemetrySpec
    }
    _NESTED_DEFAULTS: ClassVar[dict[str, dict[str, Any]]] = {
        "execution": {"shards": 1}
    }
    _EXEC_ALIASES: ClassVar[dict[str, str]] = {
        "shards": "shards",
        "executor": "backend",
        "workers": "workers",
    }

    dataset: str | None = None
    resources: int = 500
    seed: int = 7
    execution: ExecutionSpec = field(default_factory=lambda: ExecutionSpec(shards=1))
    batch_size: int = 4096
    omega: int = 5
    tau: float = 0.99
    max_events: int | None = None
    checkpoint: str | None = None
    resume: str | None = None
    telemetry: TelemetrySpec | None = None

    # Deprecated flat views of the execution block.
    @property
    def shards(self) -> int:
        return self.execution.shards

    @property
    def executor(self) -> str:
        return self.execution.backend

    @property
    def workers(self) -> int:
        return self.execution.workers

    def __post_init__(self) -> None:
        _check(self.dataset is None or isinstance(self.dataset, str),
               f"ingest dataset must be a path string or None, got {self.dataset!r}")
        _check(_is_int(self.resources) and self.resources >= 1,
               f"ingest resources must be a positive int, got {self.resources!r}")
        _check(_is_int(self.seed), f"ingest seed must be an int, got {self.seed!r}")
        _check(isinstance(self.execution, ExecutionSpec),
               f"ingest execution must be an ExecutionSpec, got {type(self.execution).__name__}")
        _check(_is_int(self.batch_size) and self.batch_size >= 1,
               f"ingest batch_size must be a positive int, got {self.batch_size!r}")
        _check(_is_int(self.omega) and self.omega >= 2,
               f"ingest omega must be an int >= 2, got {self.omega!r}")
        _check(_is_number(self.tau) and 0.0 <= self.tau <= 1.0,
               f"ingest tau must lie in [0, 1], got {self.tau!r}")
        _check(self.max_events is None or (_is_int(self.max_events) and self.max_events >= 0),
               f"ingest max_events must be a non-negative int or None, got {self.max_events!r}")
        _check(self.checkpoint is None or isinstance(self.checkpoint, str),
               f"ingest checkpoint must be a path string or None, got {self.checkpoint!r}")
        _check(self.resume is None or isinstance(self.resume, str),
               f"ingest resume must be a path string or None, got {self.resume!r}")
        _check(self.telemetry is None or isinstance(self.telemetry, TelemetrySpec),
               f"ingest telemetry must be a TelemetrySpec or None, got {self.telemetry!r}")


@dataclass(frozen=True)
class RetryPolicy(Spec):
    """How the scheduler retries a job whose slice raised an error.

    Deterministic by construction: the backoff schedule is a pure
    function of ``(policy, attempt)`` — exponential growth from
    ``backoff_base``, capped at ``backoff_cap``, jittered by a factor in
    ``[0.5, 1.0)`` drawn from a generator seeded with
    ``jitter_seed`` and the attempt number.  Two schedulers given the
    same policy produce the same schedule, so retried campaign traces
    stay pinned.

    Attributes:
        max_attempts: Total tries a job gets before ``FAILED`` (``1`` =
            today's fail-fast behaviour, the default).
        backoff_base: First-retry delay in seconds (``0`` retries
            immediately — what tests use).
        backoff_cap: Upper bound on any single delay, in seconds.
        jitter_seed: Seed for the deterministic jitter factor.
    """

    TYPE: ClassVar[str] = "retry"

    max_attempts: int = 1
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        _check(_is_int(self.max_attempts) and self.max_attempts >= 1,
               f"retry max_attempts must be a positive int, got {self.max_attempts!r}")
        _check(_is_number(self.backoff_base) and self.backoff_base >= 0,
               f"retry backoff_base must be a non-negative number, got {self.backoff_base!r}")
        _check(_is_number(self.backoff_cap) and self.backoff_cap >= 0,
               f"retry backoff_cap must be a non-negative number, got {self.backoff_cap!r}")
        _check(_is_int(self.jitter_seed) and self.jitter_seed >= 0,
               f"retry jitter_seed must be a non-negative int, got {self.jitter_seed!r}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after the ``attempt``-th failure (1-based)."""
        _check(_is_int(attempt) and attempt >= 1,
               f"retry delay attempt must be a positive int, got {attempt!r}")
        if self.backoff_base <= 0:
            return 0.0
        raw = min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
        # ints hash to themselves, so this seed (and hence the schedule)
        # is stable across processes and PYTHONHASHSEED values
        jitter = random.Random(self.jitter_seed * 1_000_003 + attempt).random()
        return raw * (0.5 + 0.5 * jitter)

    def schedule(self) -> list[float]:
        """The full delay schedule (one entry per possible retry)."""
        return [self.delay(attempt) for attempt in range(1, self.max_attempts)]


@dataclass(frozen=True)
class JobSpec(Spec):
    """One campaign submission to the :mod:`repro.server` scheduler.

    A job is a :class:`CampaignSpec` plus the service envelope: who owns
    it (for fair scheduling and cross-campaign budget enforcement), how
    often the driver checkpoints it, and how failures are retried.

    Attributes:
        campaign: The campaign to run.
        user: Owning tenant; admission reserves the campaign budget
            against this user's :class:`~repro.server.TenantLedger`
            allowance.
        checkpoint_every: Epoch interval between durable checkpoints
            (``0`` inherits the server default).
        retry: The job's :class:`RetryPolicy`; the default is fail-fast
            (one attempt), matching the scheduler's historic behaviour.
    """

    TYPE: ClassVar[str] = "job"
    _NESTED: ClassVar[dict[str, type[Spec]]] = {
        "campaign": CampaignSpec, "retry": RetryPolicy,
    }

    campaign: CampaignSpec = field(default_factory=CampaignSpec)
    user: str = "anonymous"
    checkpoint_every: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        _check(isinstance(self.campaign, CampaignSpec),
               f"job campaign must be a CampaignSpec, got {type(self.campaign).__name__}")
        _check(isinstance(self.user, str) and bool(self.user),
               f"job user must be a non-empty string, got {self.user!r}")
        _check(_is_int(self.checkpoint_every) and self.checkpoint_every >= 0,
               f"job checkpoint_every must be a non-negative int, got {self.checkpoint_every!r}")
        _check(isinstance(self.retry, RetryPolicy),
               f"job retry must be a RetryPolicy, got {type(self.retry).__name__}")


@dataclass(frozen=True)
class ServerSpec(Spec):
    """Configuration of one :mod:`repro.server` scheduler instance.

    Attributes:
        root: Durable state directory (job journal, checkpoints, CLI
            inbox/control files).
        slots: Concurrent jobs stepped per scheduling round.
        max_queued: Bounded admission queue — submissions beyond this
            many waiting jobs are rejected.
        checkpoint_every: Default epoch interval between job checkpoints
            (``0`` disables periodic checkpoints; jobs still checkpoint
            on pause/shutdown).
        budgets: Per-user cross-campaign budget caps
            (``user -> reward units``), overriding ``default_budget``.
        default_budget: Budget cap for users absent from ``budgets``
            (``None`` = uncapped).
        telemetry: Optional :class:`TelemetrySpec` (see
            :class:`AllocateSpec`); telemetry only observes, so job
            traces are byte-identical with it on or off.
    """

    TYPE: ClassVar[str] = "server"
    _NESTED: ClassVar[dict[str, type[Spec]]] = {"telemetry": TelemetrySpec}

    root: str = "server-state"
    slots: int = 4
    max_queued: int = 64
    checkpoint_every: int = 5
    budgets: dict[str, int] = field(default_factory=dict)
    default_budget: int | None = None
    telemetry: TelemetrySpec | None = None

    def __post_init__(self) -> None:
        _check(isinstance(self.root, str) and bool(self.root),
               f"server root must be a non-empty path string, got {self.root!r}")
        _check(_is_int(self.slots) and self.slots >= 1,
               f"server slots must be a positive int, got {self.slots!r}")
        _check(_is_int(self.max_queued) and self.max_queued >= 1,
               f"server max_queued must be a positive int, got {self.max_queued!r}")
        _check(_is_int(self.checkpoint_every) and self.checkpoint_every >= 0,
               f"server checkpoint_every must be a non-negative int, "
               f"got {self.checkpoint_every!r}")
        _check(isinstance(self.budgets, dict), f"server budgets must be a dict, got {self.budgets!r}")
        for user, cap in (self.budgets or {}).items():
            _check(isinstance(user, str) and bool(user),
                   f"server budgets keys must be non-empty user strings, got {user!r}")
            _check(_is_int(cap) and cap >= 0,
                   f"server budget for {user!r} must be a non-negative int, got {cap!r}")
        _check(self.default_budget is None
               or (_is_int(self.default_budget) and self.default_budget >= 0),
               f"server default_budget must be a non-negative int or None, "
               f"got {self.default_budget!r}")
        _check(self.telemetry is None or isinstance(self.telemetry, TelemetrySpec),
               f"server telemetry must be a TelemetrySpec or None, got {self.telemetry!r}")


_SPEC_TYPES: dict[str, type[Spec]] = {
    cls.TYPE: cls
    for cls in (
        CorpusSpec, ExecutionSpec, TelemetrySpec, AllocateSpec, CampaignSpec,
        IngestSpec, RetryPolicy, JobSpec, ServerSpec,
    )
}


def spec_from_dict(payload: dict[str, Any]) -> Spec:
    """Rebuild any spec from its ``to_dict`` payload (dispatch on ``type``)."""
    if not isinstance(payload, dict):
        raise SpecError(f"spec_from_dict expects a dict, got {type(payload).__name__}")
    tag = payload.get("type")
    cls = _SPEC_TYPES.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise SpecError(
            f"unknown spec type tag {tag!r}; known: {', '.join(sorted(_SPEC_TYPES))}"
        )
    return cls.from_dict(payload)


def spec_from_json(text: str) -> Spec:
    """Rebuild any spec from its ``to_json`` string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec_from_json: invalid JSON: {exc}") from exc
    return spec_from_dict(payload)
