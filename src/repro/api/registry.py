"""The strategy registry: declared constructors instead of guessed ones.

Before this module existed the CLI (and anything else that wanted to
build a strategy from its name) had to guess constructor signatures::

    try:
        strategy = strategy_class(omega=args.omega)   # maybe?
    except TypeError:
        strategy = strategy_class()                   # shrug

That pattern broke the moment a constructor raised ``TypeError`` for any
other reason, and in one code path it silently assigned the *class*
instead of an instance.  Here every strategy instead **declares** its
constructor parameters when it registers::

    @register_strategy("MU", params={"omega": Param(int, DEFAULT_OMEGA, "MA window")})
    @dataclass
    class MostUnstableFirst(AllocationStrategy):
        ...

so :meth:`StrategyRegistry.create` can validate names, parameter names
and parameter types up front and raise one precise
:class:`~repro.core.errors.SpecError` instead of failing downstream.

The process-global default registry is :data:`STRATEGIES`; it is fully
populated as a side effect of importing :mod:`repro.allocation` (each
strategy module registers itself at class-definition time).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import SpecError

__all__ = ["Param", "RegisteredStrategy", "StrategyRegistry", "STRATEGIES", "register_strategy"]


@dataclass(frozen=True)
class Param:
    """One declared constructor parameter of a registered strategy.

    Attributes:
        type: Expected Python type.  ``float`` parameters accept ints;
            ``bool`` is *not* accepted where ``int`` is declared.
        default: Value used when the caller does not supply the
            parameter.  ``None`` marks the parameter as optional-nullable
            (the caller may also pass ``None`` explicitly).
        doc: One-line description, surfaced in error messages and docs.
    """

    type: type
    default: Any = None
    doc: str = ""

    def validate(self, name: str, value: Any, strategy: str) -> Any:
        """Type-check ``value`` for this parameter; return it (coerced)."""
        if value is None:
            if self.default is None:
                return None
            raise SpecError(f"strategy {strategy!r}: parameter {name!r} must not be None")
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if not isinstance(value, self.type) or (
            self.type in (int, float) and isinstance(value, bool)
        ):
            raise SpecError(
                f"strategy {strategy!r}: parameter {name!r} expects "
                f"{self.type.__name__}, got {type(value).__name__} ({value!r})"
            )
        return value


@dataclass(frozen=True)
class RegisteredStrategy:
    """A registry entry: the class plus its declared parameter schema."""

    name: str
    cls: type
    params: Mapping[str, Param] = field(default_factory=dict)

    def build(self, **overrides: Any) -> Any:
        """Instantiate with validated parameters (defaults filled in)."""
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            declared = ", ".join(sorted(self.params)) or "(none)"
            raise SpecError(
                f"strategy {self.name!r} does not declare parameter(s) "
                f"{', '.join(repr(u) for u in unknown)}; declared: {declared}"
            )
        kwargs: dict[str, Any] = {}
        for pname, spec in self.params.items():
            value = overrides.get(pname, spec.default)
            kwargs[pname] = spec.validate(pname, value, self.name)
        return self.cls(**kwargs)


class StrategyRegistry:
    """Name -> strategy mapping with declared parameter schemas.

    The registry is the single source of truth for "which strategies
    exist and how are they constructed": the CLI derives its ``choices``
    from :meth:`names`, specs are validated against :meth:`get`, and the
    experiment harness builds its default lineup through :meth:`create`.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredStrategy] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        cls: type,
        params: Mapping[str, Param] | None = None,
    ) -> None:
        """Register ``cls`` under ``name``.

        Raises:
            SpecError: On a duplicate name (two strategies competing for
                one name is always a programming error) or a blank name.
        """
        if not name or not isinstance(name, str):
            raise SpecError(f"strategy name must be a non-empty string, got {name!r}")
        existing = self._entries.get(name)
        if existing is not None:
            raise SpecError(
                f"strategy name {name!r} already registered by "
                f"{existing.cls.__module__}.{existing.cls.__qualname__}"
            )
        self._entries[name] = RegisteredStrategy(name=name, cls=cls, params=dict(params or {}))

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> RegisteredStrategy:
        """The entry for ``name``.

        Raises:
            SpecError: On an unknown name, listing the known ones.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise SpecError(
                f"unknown strategy {name!r}; registered strategies: "
                f"{', '.join(sorted(self._entries)) or '(none)'}"
            )
        return entry

    def create(self, name: str, **params: Any) -> Any:
        """Build a validated instance of the strategy named ``name``."""
        return self.get(name).build(**params)

    def filter_params(self, name: str, **candidates: Any) -> dict[str, Any]:
        """The subset of ``candidates`` that ``name`` declares.

        This is how a generic front end (the CLI's single ``--omega``
        flag, for instance) passes a parameter only to the strategies
        that actually take it — schema-driven, no ``TypeError`` probing.
        """
        declared = self.get(name).params
        return {k: v for k, v in candidates.items() if k in declared}

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def classes(self) -> dict[str, type]:
        """A name -> class snapshot (legacy ``STRATEGY_REGISTRY`` shape)."""
        return {name: entry.cls for name, entry in self._entries.items()}

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


STRATEGIES = StrategyRegistry()
"""The process-global registry; populated by importing :mod:`repro.allocation`."""


def register_strategy(
    name: str,
    *,
    params: Mapping[str, Param] | None = None,
    registry: StrategyRegistry | None = None,
):
    """Class decorator: register a strategy under ``name`` with its schema.

    Args:
        name: Public strategy name ("FP", "MU", ...).
        params: Declared constructor parameters (name -> :class:`Param`).
            Parameters *not* declared here cannot be set through the
            registry / spec path (they remain available to direct Python
            construction).
        registry: Target registry (default: the global :data:`STRATEGIES`).
    """

    def decorate(cls: type) -> type:
        (registry if registry is not None else STRATEGIES).register(name, cls, params)
        return cls

    return decorate
