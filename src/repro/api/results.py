"""The one result type every :func:`repro.api.run` call returns.

A :class:`RunResult` is deliberately boring: a kind tag, the spec that
produced it, scalar metrics, a human-readable summary (exactly what the
CLI prints), and a JSON-serializable details payload.  Boring is the
point — results can be stored, diffed, queued and aggregated without
knowing which subsystem produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import SpecError

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`repro.api.run` call.

    Attributes:
        kind: Which runner produced it (``allocate``/``campaign``/``ingest``).
        spec: The originating spec as its ``to_dict`` payload, so every
            result carries its own full reproduction recipe.
        metrics: Flat name -> scalar map (JSON numbers only).
        summary: Human-readable report; the CLI prints this verbatim.
        details: Structured, JSON-serializable extras (assignment
            vectors, per-epoch reports, stable points, ...).
        telemetry: The run's telemetry snapshot (see
            :meth:`repro.obs.Telemetry.snapshot`) when the spec carried
            an enabled :class:`~repro.api.specs.TelemetrySpec` or
            ambient telemetry was active; ``{}`` otherwise.
    """

    kind: str
    spec: dict[str, Any]
    metrics: dict[str, Any] = field(default_factory=dict)
    summary: str = ""
    details: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError(f"RunResult kind must be a non-empty string, got {self.kind!r}")
        for label, payload in (("spec", self.spec), ("metrics", self.metrics),
                               ("details", self.details), ("telemetry", self.telemetry)):
            if not isinstance(payload, dict):
                raise SpecError(f"RunResult {label} must be a dict, got {type(payload).__name__}")
        for name, value in self.metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"RunResult metric {name!r} must be an int or float, got {value!r}"
                )
        for label, payload in (("details", self.details), ("telemetry", self.telemetry)):
            try:
                json.dumps(payload)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"RunResult {label} are not JSON-serializable: {exc}"
                ) from exc

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict; :meth:`from_dict` inverts it."""
        return {
            "kind": self.kind,
            "spec": dict(self.spec),
            "metrics": dict(self.metrics),
            "summary": self.summary,
            "details": dict(self.details),
            "telemetry": dict(self.telemetry),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> RunResult:
        """Rebuild a result, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise SpecError(f"RunResult.from_dict expects a dict, got {type(payload).__name__}")
        known = {"kind", "spec", "metrics", "summary", "details", "telemetry"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"RunResult does not define field(s) {', '.join(repr(u) for u in unknown)}"
            )
        return cls(
            kind=payload.get("kind", ""),
            spec=payload.get("spec", {}),
            metrics=payload.get("metrics", {}),
            summary=payload.get("summary", ""),
            details=payload.get("details", {}),
            telemetry=payload.get("telemetry", {}),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The result as a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> RunResult:
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"RunResult.from_json: invalid JSON: {exc}") from exc
        return cls.from_dict(payload)
