"""The one result type every :func:`repro.api.run` call returns.

A :class:`RunResult` is deliberately boring: a kind tag, the spec that
produced it, scalar metrics, a human-readable summary (exactly what the
CLI prints), and a JSON-serializable details payload.  Boring is the
point — results can be stored, diffed, queued and aggregated without
knowing which subsystem produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import SpecError

__all__ = ["RunResult", "JobRecord"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`repro.api.run` call.

    Attributes:
        kind: Which runner produced it (``allocate``/``campaign``/``ingest``).
        spec: The originating spec as its ``to_dict`` payload, so every
            result carries its own full reproduction recipe.
        metrics: Flat name -> scalar map (JSON numbers only).
        summary: Human-readable report; the CLI prints this verbatim.
        details: Structured, JSON-serializable extras (assignment
            vectors, per-epoch reports, stable points, ...).
        telemetry: The run's telemetry snapshot (see
            :meth:`repro.obs.Telemetry.snapshot`) when the spec carried
            an enabled :class:`~repro.api.specs.TelemetrySpec` or
            ambient telemetry was active; ``{}`` otherwise.
    """

    kind: str
    spec: dict[str, Any]
    metrics: dict[str, Any] = field(default_factory=dict)
    summary: str = ""
    details: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError(f"RunResult kind must be a non-empty string, got {self.kind!r}")
        for label, payload in (("spec", self.spec), ("metrics", self.metrics),
                               ("details", self.details), ("telemetry", self.telemetry)):
            if not isinstance(payload, dict):
                raise SpecError(f"RunResult {label} must be a dict, got {type(payload).__name__}")
        for name, value in self.metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"RunResult metric {name!r} must be an int or float, got {value!r}"
                )
        for label, payload in (("details", self.details), ("telemetry", self.telemetry)):
            try:
                json.dumps(payload)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"RunResult {label} are not JSON-serializable: {exc}"
                ) from exc

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict; :meth:`from_dict` inverts it."""
        return {
            "kind": self.kind,
            "spec": dict(self.spec),
            "metrics": dict(self.metrics),
            "summary": self.summary,
            "details": dict(self.details),
            "telemetry": dict(self.telemetry),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> RunResult:
        """Rebuild a result, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise SpecError(f"RunResult.from_dict expects a dict, got {type(payload).__name__}")
        known = {"kind", "spec", "metrics", "summary", "details", "telemetry"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"RunResult does not define field(s) {', '.join(repr(u) for u in unknown)}"
            )
        return cls(
            kind=payload.get("kind", ""),
            spec=payload.get("spec", {}),
            metrics=payload.get("metrics", {}),
            summary=payload.get("summary", ""),
            details=payload.get("details", {}),
            telemetry=payload.get("telemetry", {}),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The result as a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> RunResult:
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"RunResult.from_json: invalid JSON: {exc}") from exc
        return cls.from_dict(payload)


@dataclass(frozen=True)
class JobRecord:
    """Externally visible snapshot of one campaign-server job.

    The server's answer to "what is job X doing?" — returned by
    ``Scheduler.status`` and printed by ``repro-tagging jobs``.  Like
    :class:`RunResult` it is deliberately plain data: every field is
    JSON-safe, and :meth:`to_dict`/:meth:`from_dict` round-trip it
    losslessly (rejecting unknown keys), so job state can be shipped
    over a queue or stored next to its checkpoints.

    Attributes:
        job_id: Store-unique identifier.
        user: Owning tenant.
        state: Lifecycle state value (see :class:`repro.server.JobState`).
        spec: The submitted :class:`~repro.api.specs.JobSpec` payload —
            every record carries its full reproduction recipe.
        epochs: Campaign epochs completed so far.
        spent: Reward units the job's campaign has paid out so far.
        checkpoint_epoch: Epoch of the latest durable checkpoint
            (``-1`` = never checkpointed).
        attempts: Execution attempts consumed (bounded by the job's
            :class:`~repro.api.specs.RetryPolicy`).
        metrics: Flat name -> scalar map (JSON numbers only).
        trace: The final canonical trace payload once the job is done
            (see ``CampaignResult.trace_payload``); ``{}`` while running.
        error: Latest captured failure traceback, else ``""``.
    """

    job_id: str
    user: str
    state: str
    spec: dict[str, Any] = field(default_factory=dict)
    epochs: int = 0
    spent: int = 0
    checkpoint_epoch: int = -1
    attempts: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] = field(default_factory=dict)
    error: str = ""

    def __post_init__(self) -> None:
        for label, value in (("job_id", self.job_id), ("user", self.user),
                             ("state", self.state)):
            if not isinstance(value, str) or not value:
                raise SpecError(f"JobRecord {label} must be a non-empty string, got {value!r}")
        for label, payload in (("spec", self.spec), ("metrics", self.metrics),
                               ("trace", self.trace)):
            if not isinstance(payload, dict):
                raise SpecError(f"JobRecord {label} must be a dict, got {type(payload).__name__}")
        for label, value in (("epochs", self.epochs), ("spent", self.spent),
                             ("checkpoint_epoch", self.checkpoint_epoch),
                             ("attempts", self.attempts)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"JobRecord {label} must be an int, got {value!r}")
        for name, value in self.metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"JobRecord metric {name!r} must be an int or float, got {value!r}"
                )
        if not isinstance(self.error, str):
            raise SpecError(f"JobRecord error must be a string, got {self.error!r}")
        try:
            json.dumps(self.trace)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"JobRecord trace is not JSON-serializable: {exc}") from exc

    _FIELDS = ("job_id", "user", "state", "spec", "epochs", "spent",
               "checkpoint_epoch", "attempts", "metrics", "trace", "error")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict; :meth:`from_dict` inverts it."""
        return {
            "job_id": self.job_id,
            "user": self.user,
            "state": self.state,
            "spec": dict(self.spec),
            "epochs": self.epochs,
            "spent": self.spent,
            "checkpoint_epoch": self.checkpoint_epoch,
            "attempts": self.attempts,
            "metrics": dict(self.metrics),
            "trace": dict(self.trace),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> JobRecord:
        """Rebuild a record, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise SpecError(f"JobRecord.from_dict expects a dict, got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise SpecError(
                f"JobRecord does not define field(s) {', '.join(repr(u) for u in unknown)}"
            )
        return cls(
            job_id=payload.get("job_id", ""),
            user=payload.get("user", ""),
            state=payload.get("state", ""),
            spec=payload.get("spec", {}),
            epochs=payload.get("epochs", 0),
            spent=payload.get("spent", 0),
            checkpoint_epoch=payload.get("checkpoint_epoch", -1),
            attempts=payload.get("attempts", 0),
            metrics=payload.get("metrics", {}),
            trace=payload.get("trace", {}),
            error=payload.get("error", ""),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The record as a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> JobRecord:
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"JobRecord.from_json: invalid JSON: {exc}") from exc
        return cls.from_dict(payload)
