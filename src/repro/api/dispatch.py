"""``repro.api.run``: one dispatcher from spec to :class:`RunResult`.

Each runnable spec type has a private executor; :func:`run` dispatches on
the spec's class.  Executors build everything from the spec alone — no
hidden state — so the same spec always reproduces the same run, and the
returned result embeds the spec for provenance.

Telemetry rides on top, not inside: :func:`run` activates the spec's
:class:`~repro.api.specs.TelemetrySpec` (if any) *before* the executor
builds its components — the capture-at-construction pattern in
:mod:`repro.obs` depends on that ordering — wraps the execution in one
``api.run`` span, and embeds the final snapshot in
``RunResult.telemetry``.  With no spec telemetry, an ambient enabled
telemetry (``REPRO_TELEMETRY=1`` or :func:`repro.obs.set_active`) is
still embedded, so environment-driven runs get their numbers for free.
"""

from __future__ import annotations

import dataclasses
from functools import singledispatch
from itertools import islice
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.dataset import TaggingDataset
from repro.core.errors import SpecError
from repro.core.stability import DEFAULT_OMEGA
from repro.allocation import IncentiveRunner
from repro.allocation.monitor import make_monitor
from repro.api.corpus import MaterializedCorpus, materialize
from repro.api.registry import STRATEGIES
from repro.api.results import RunResult
from repro.api.specs import AllocateSpec, CampaignSpec, IngestSpec, Spec

__all__ = ["run"]


def run(spec: Spec) -> RunResult:
    """Execute any runnable spec and return its :class:`RunResult`.

    Dispatches on the spec type: :class:`AllocateSpec`,
    :class:`CampaignSpec` and :class:`IngestSpec` are runnable;
    :class:`CorpusSpec` is a component (materialize it with
    :func:`repro.api.materialize`).

    When the spec carries an enabled
    :class:`~repro.api.specs.TelemetrySpec`, a fresh
    :class:`~repro.obs.Telemetry` is active for the run's duration and
    its snapshot lands in ``RunResult.telemetry`` (plus the spec's
    ``trace_path``/``snapshot_path`` sinks).  Telemetry only observes:
    results are identical with it on or off.

    Raises:
        SpecError: For non-runnable spec types and any invalid spec
            content discovered at run time (unknown strategy, undeclared
            parameter, model-less corpus for a generative run, ...).
    """
    telemetry_spec = getattr(spec, "telemetry", None)
    if telemetry_spec is not None and telemetry_spec.enabled:
        telemetry = obs.Telemetry(trace_path=telemetry_spec.trace_path)
        try:
            with obs.activated(telemetry):
                with telemetry.span("api.run", kind=type(spec).TYPE):
                    result = _execute(spec)
            snapshot = telemetry.snapshot()
            if telemetry_spec.snapshot_path is not None:
                telemetry.write_snapshot(telemetry_spec.snapshot_path)
        finally:
            telemetry.close()
        return dataclasses.replace(result, telemetry=snapshot)
    ambient = obs.get()
    if ambient.enabled:
        with ambient.span("api.run", kind=type(spec).TYPE):
            result = _execute(spec)
        return dataclasses.replace(result, telemetry=ambient.snapshot())
    return _execute(spec)


@singledispatch
def _execute(spec: Spec) -> RunResult:
    raise SpecError(
        f"{type(spec).__name__} is not runnable; "
        "pass an AllocateSpec, CampaignSpec or IngestSpec"
    )


# ----------------------------------------------------------------------
# allocate
# ----------------------------------------------------------------------


def _generative_runner(
    spec: AllocateSpec, corpus: MaterializedCorpus, split
) -> IncentiveRunner:
    """A runner that synthesises posts from the corpus' latent models."""
    from repro.allocation import popularity_chooser
    from repro.simulate import TaggerBehavior, generate_post

    models = corpus.require_models()
    rng = np.random.default_rng(spec.seed)
    behavior = TaggerBehavior()
    positions = split.initial_counts.astype(int).tolist()

    def factory(index: int):
        positions[index] += 1
        return generate_post(models[index], positions[index] - 1, 999.0, rng, behavior)

    weights = corpus.dataset.posts_per_resource().astype(np.float64) + 1.0
    return IncentiveRunner.generative(
        split.initial_counts,
        [split.initial_posts(i) for i in range(split.n)],
        factory,
        popularity_chooser(weights, rng),
    )


@_execute.register
def _run_allocate(spec: AllocateSpec) -> RunResult:
    from repro.experiments.evaluation import GroundTruth, TraceEvaluator

    corpus = materialize(spec.corpus)
    split = corpus.dataset.split(corpus.require_cutoff())
    truth = GroundTruth.build(corpus.dataset)
    evaluator = TraceEvaluator(split, truth)
    if spec.mode == "generative":
        runner = _generative_runner(spec, corpus, split)
    else:
        runner = IncentiveRunner.replay(split)
    strategy = STRATEGIES.create(spec.strategy, **spec.params)
    # The monitor shares the strategy's declared MA window (when it has
    # one) so "observed stable" is judged on the window the user chose.
    before = evaluator.quality_of_counts(split.initial_counts)
    monitor_omega = spec.params.get("omega", DEFAULT_OMEGA)
    # nothing fallible between monitor creation and the try below, so
    # the finally covers the monitor's pool for the whole run
    monitor = make_monitor(
        spec.stability,
        omega=monitor_omega,
        tau=spec.stability_tau,
        n_shards=spec.execution.shards,
        executor=spec.execution.backend,
        workers=spec.execution.workers,
        parallel_min_events=spec.execution.min_parallel_events,
    )
    try:
        trace = runner.run(
            strategy, spec.budget, batch_size=spec.batch_size, monitor=monitor
        )
        if monitor is not None:
            stable = monitor.stable_indices()
    finally:
        if monitor is not None:
            monitor.close()  # release pooled shard-executor threads

    metrics = {
        "budget": spec.budget,
        "delivered": trace.tasks_delivered,
        "budget_spent": trace.budget_spent,
        "quality_before": float(before),
        "refusals": trace.refusals,
    }
    if spec.mode == "replay":
        # Quality profiles only cover the corpus' recorded post history,
        # so ground-truth scoring is a replay-mode concept; generative
        # runs synthesise posts past the profiles' horizon.
        after = evaluator.quality_of_x(trace.x)
        metrics["quality_after"] = float(after)
        metrics["quality_gain"] = float(after - before)
        summary = (
            f"{strategy.name}: delivered {trace.tasks_delivered}/{spec.budget} tasks, "
            f"quality {before:.4f} -> {after:.4f} (+{after - before:.4f})"
        )
    else:
        summary = (
            f"{strategy.name}: delivered {trace.tasks_delivered}/{spec.budget} "
            "generative tasks"
        )
    details = {
        "strategy": strategy.name,
        "order": list(trace.order),
        "x": trace.x.tolist(),
    }
    if corpus.quality is not None:
        details["corpus_quality"] = corpus.quality
    if monitor is not None:
        metrics["observed_stable"] = len(stable)
        details["observed_stable_indices"] = stable
        summary += f", {len(stable)} resources observed stable"
    return RunResult(
        kind="allocate", spec=spec.to_dict(), metrics=metrics,
        summary=summary, details=details,
    )


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------


@_execute.register
def _run_campaign(spec: CampaignSpec) -> RunResult:
    from repro.service import IncentiveCampaign

    corpus = materialize(spec.corpus)
    # from_spec cleans up after itself on failure; from here the
    # campaign owns the monitor's pool and close() releases it even
    # when the run raises
    campaign = IncentiveCampaign.from_spec(spec, corpus)
    try:
        result = campaign.run(max_epochs=spec.max_epochs)
    finally:
        campaign.close()  # release pooled shard executors

    metrics = {
        "budget": spec.budget,
        "epochs": len(result.reports),
        "completed": result.total_completed,
        "spent": result.ledger.spent,
        "stopped_resources": len(result.stopped_resources),
    }
    details = {
        "strategy": spec.strategy,
        "final_counts": result.final_counts.tolist(),
        "stopped_resources": sorted(result.stopped_resources),
        "epochs": [
            {
                "epoch": r.epoch,
                "published": r.published,
                "completed": r.completed,
                "unfilled": r.unfilled,
                "spent": r.spent,
                "observed_stable": r.observed_stable,
                "withdrawn": r.withdrawn,
                "task_counts": dict(r.task_counts),
            }
            for r in result.reports
        ],
    }
    if corpus.quality is not None:
        details["corpus_quality"] = corpus.quality
    return RunResult(
        kind="campaign", spec=spec.to_dict(), metrics=metrics,
        summary=result.render(), details=details,
    )


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------


@_execute.register
def _run_ingest(spec: IngestSpec) -> RunResult:
    from repro.engine import IngestEngine, load_checkpoint, save_checkpoint
    from repro.simulate import dataset_event_stream, interleaved_event_stream

    lines: list[str] = []
    already_ingested = 0
    exec_spec = spec.execution
    if spec.resume is not None:
        from repro.engine import make_executor

        bank = load_checkpoint(Path(spec.resume))
        if hasattr(bank, "executor"):
            # checkpoints carry no executor; the spec's knobs still apply
            bank.executor = make_executor(exec_spec.backend, exec_spec.workers)
            if exec_spec.min_parallel_events is not None:
                bank.parallel_min_events = exec_spec.min_parallel_events
        engine = IngestEngine(bank=bank, batch_size=spec.batch_size)
        already_ingested = bank.total_posts
        n_shards = bank.n_shards if hasattr(bank, "n_shards") else 1
        lines.append(
            f"resuming checkpoint: omega={bank.omega} tau={bank.tau} "
            f"shards={n_shards} after {already_ingested:,} events "
            "(omega/tau/shard settings do not apply to a resumed bank)"
        )
    else:
        engine = IngestEngine.create(
            n_shards=exec_spec.shards,
            omega=spec.omega,
            tau=spec.tau,
            batch_size=spec.batch_size,
            executor=exec_spec.backend,
            workers=exec_spec.workers,
            parallel_min_events=exec_spec.min_parallel_events,
        )
    # Everything touching the bank runs inside the try: with a
    # state-owning (process) executor, queries and the final checkpoint
    # need the workers alive, and any exception path must still release
    # the pool.
    try:
        if spec.dataset is not None:
            dataset = TaggingDataset.from_jsonl(Path(spec.dataset))
            events = dataset_event_stream(dataset)
        else:
            events = interleaved_event_stream(
                n_resources=spec.resources, seed=spec.seed, max_events=spec.max_events
            )
        if already_ingested:
            # the stream replays deterministically from the start; skip the
            # prefix the checkpointed bank has already consumed so resuming
            # never double-counts posts
            events = islice(events, already_ingested, None)
        stats = engine.feed(events)
        stable_points = engine.bank.stable_points()
        n_resources = engine.bank.n_resources
        total_posts = engine.bank.total_posts
        lines.append(stats.render())
        lines.append(
            f"resources: {n_resources}, posts: {total_posts}, "
            f"stable: {len(stable_points)}"
        )
        checkpoint_path: str | None = None
        if spec.checkpoint is not None:
            checkpoint_path = str(save_checkpoint(engine.bank, Path(spec.checkpoint)))
            lines.append(f"checkpoint written to {checkpoint_path}")
    finally:
        pool = getattr(engine.bank, "executor", None)
        if pool is not None:
            pool.close()  # release pooled shard executors

    metrics = {
        "events": stats.events,
        "tag_assignments": stats.tag_assignments,
        "batches": stats.batches,
        "events_per_second": float(stats.events_per_second),
        "resources": engine.bank.n_resources,
        "posts": engine.bank.total_posts,
        "stable": len(stable_points),
        "resumed_after": already_ingested,
    }
    details = {
        "stable_points": dict(sorted(stable_points.items())),
        "checkpoint": checkpoint_path,
    }
    return RunResult(
        kind="ingest", spec=spec.to_dict(), metrics=metrics,
        summary="\n".join(lines), details=details,
    )
