"""Hash-based sharding of the stability bank.

A single :class:`~repro.engine.columnar.StabilityBank` holds a dense
``rows × vocabulary`` count block, so both memory and batch cost grow
with the number of resources it owns.  :class:`ShardedStabilityBank`
splits the resource space across N independent banks with a stable hash
router (:func:`shard_of` — CRC32, not Python's salted ``hash``, so the
placement is identical across processes and restarts).

Shards share no state: each has its own interners, count block and MA
windows, and :meth:`ShardedStabilityBank.ingest_shard` only touches one
shard.  That makes the API parallel-ready — a thread or process pool can
ingest the per-shard slices of a batch concurrently without locks — while
the default :meth:`ingest_events` dispatches serially.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.errors import DataModelError
from repro.core.stability import DEFAULT_OMEGA
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import TagEvent

__all__ = ["shard_of", "ShardedStabilityBank"]


def shard_of(resource_id: str, n_shards: int) -> int:
    """The shard owning ``resource_id`` — stable across runs and hosts."""
    if n_shards < 1:
        raise DataModelError(f"n_shards must be positive, got {n_shards}")
    if n_shards == 1:
        return 0
    return zlib.crc32(resource_id.encode("utf-8")) % n_shards


class ShardedStabilityBank:
    """N independent stability banks behind one hash router.

    Args:
        n_shards: Number of shards.
        omega: MA window (shared by all shards).
        tau: Optional stability threshold (shared by all shards).
    """

    def __init__(
        self,
        n_shards: int = 4,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = None,
    ) -> None:
        if n_shards < 1:
            raise DataModelError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.omega = omega
        self.tau = tau
        self.shards: list[StabilityBank] = [
            StabilityBank(omega, tau) for _ in range(n_shards)
        ]

    # ------------------------------------------------------------------

    def shard_for(self, resource_id: str) -> StabilityBank:
        """The bank owning ``resource_id``."""
        return self.shards[shard_of(resource_id, self.n_shards)]

    def ensure(self, resource_ids: Iterable[str]) -> None:
        """Pre-register resources on their owning shards."""
        slices: list[list[str]] = [[] for _ in range(self.n_shards)]
        for resource_id in resource_ids:
            slices[shard_of(resource_id, self.n_shards)].append(resource_id)
        for shard, owned in zip(self.shards, slices):
            if owned:
                shard.ensure(owned)

    def partition(
        self, events: Sequence[TagEvent] | Iterable[TagEvent]
    ) -> list[list[TagEvent]]:
        """Split an event sequence into per-shard slices, order-preserving."""
        slices: list[list[TagEvent]] = [[] for _ in range(self.n_shards)]
        if self.n_shards == 1:
            slices[0] = list(events)
            return slices
        for event in events:
            slices[shard_of(event.resource_id, self.n_shards)].append(event)
        return slices

    def ingest_shard(
        self, shard_index: int, events: Sequence[TagEvent]
    ) -> IngestReport:
        """Ingest a pre-partitioned slice into one shard.

        Every event must belong to ``shard_index``; this is the unit of
        work a parallel executor would submit per shard.
        """
        return self.shards[shard_index].ingest_events(events)

    def ingest_events(self, events: Iterable[TagEvent]) -> IngestReport:
        """Partition and ingest a batch; reassemble a combined report.

        The combined similarities are in the original batch order.
        """
        if not isinstance(events, Sequence):
            events = list(events)
        if self.n_shards == 1:
            return self.shards[0].ingest_events(events)
        positions: list[list[int]] = [[] for _ in range(self.n_shards)]
        slices: list[list[TagEvent]] = [[] for _ in range(self.n_shards)]
        for index, event in enumerate(events):
            shard = shard_of(event.resource_id, self.n_shards)
            positions[shard].append(index)
            slices[shard].append(event)
        similarities = np.zeros(len(events), dtype=np.float64)
        newly_stable: list[str] = []
        n_tag_assignments = 0
        for shard_index in range(self.n_shards):
            if not slices[shard_index]:
                continue
            report = self.ingest_shard(shard_index, slices[shard_index])
            similarities[positions[shard_index]] = report.similarities
            newly_stable.extend(report.newly_stable)
            n_tag_assignments += report.n_tag_assignments
        return IngestReport(len(events), n_tag_assignments, similarities, newly_stable)

    # ------------------------------------------------------------------
    # aggregate queries (delegate through the router)
    # ------------------------------------------------------------------

    def __contains__(self, resource_id: object) -> bool:
        if not isinstance(resource_id, str):
            return False
        return resource_id in self.shard_for(resource_id)

    @property
    def n_resources(self) -> int:
        """Resources seen across all shards."""
        return sum(shard.n_resources for shard in self.shards)

    @property
    def total_posts(self) -> int:
        """Posts ingested across all shards."""
        return sum(shard.total_posts for shard in self.shards)

    def num_posts(self, resource_id: str) -> int:
        return self.shard_for(resource_id).num_posts(resource_id)

    def ma_score(self, resource_id: str) -> float | None:
        return self.shard_for(resource_id).ma_score(resource_id)

    def is_stable(self, resource_id: str) -> bool:
        return self.shard_for(resource_id).is_stable(resource_id)

    def stable_point(self, resource_id: str) -> int | None:
        return self.shard_for(resource_id).stable_point(resource_id)

    def stable_points(self) -> dict[str, int]:
        """All stable resources across shards."""
        merged: dict[str, int] = {}
        for shard in self.shards:
            merged.update(shard.stable_points())
        return merged

    def stable_rfd(self, resource_id: str) -> dict[str, float] | None:
        return self.shard_for(resource_id).stable_rfd(resource_id)

    def counts_of(self, resource_id: str) -> dict[str, int]:
        return self.shard_for(resource_id).counts_of(resource_id)

    def rfd(self, resource_id: str) -> dict[str, float]:
        return self.shard_for(resource_id).rfd(resource_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStabilityBank(shards={self.n_shards}, "
            f"resources={self.n_resources}, posts={self.total_posts})"
        )
