"""Hash-based sharding of the stability bank.

A single :class:`~repro.engine.columnar.StabilityBank` holds a dense
``rows × vocabulary`` count block, so both memory and batch cost grow
with the number of resources it owns.  :class:`ShardedStabilityBank`
splits the resource space across N independent banks with a stable hash
router (:func:`shard_of` — CRC32, not Python's salted ``hash``, so the
placement is identical across processes and restarts).

Routing is vectorized: each resource's shard id is computed **once** (at
first sight) and cached, so partitioning a batch is a C-level dict gather
into an int array plus one stable argsort — not a per-event UTF-8 encode
+ CRC32.  :meth:`ShardedStabilityBank.shard_ids` exposes the batched
router; the string-path aggregate queries (:meth:`~ShardedStabilityBank.\
num_posts`, :meth:`~ShardedStabilityBank.ma_score`, ...) go through the
same cache, so repeated per-resource lookups stop re-hashing.

Shards share no state: each has its own interners, count block and MA
windows, and :meth:`ShardedStabilityBank.ingest_shard` only touches one
shard.  :meth:`ingest_events` exploits that: it pre-encodes each shard's
slice as a columnar :class:`~repro.engine.events.EventBatch` (so a worker
never re-interns or re-routes) and hands the per-shard kernels to a
:class:`~repro.engine.executor.ShardExecutor` — serial by default, a
thread pool when the bank was built with one.  Results reassemble in
original batch order and newly-stable ids surface in shard-index order
regardless of executor, so traces are byte-identical at any worker
count.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Iterable, Sequence
from functools import partial

import numpy as np

from repro import obs
from repro.core.errors import DataModelError
from repro.core.stability import DEFAULT_OMEGA
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import EventBatch, TagEvent, encode_events
from repro.engine.executor import PARALLEL_MIN_EVENTS, ShardExecutor

__all__ = ["shard_of", "ShardedStabilityBank"]


def shard_of(resource_id: str, n_shards: int) -> int:
    """The shard owning ``resource_id`` — stable across runs and hosts."""
    if n_shards < 1:
        raise DataModelError(f"n_shards must be positive, got {n_shards}")
    if n_shards == 1:
        return 0
    return zlib.crc32(resource_id.encode("utf-8")) % n_shards


class ShardedStabilityBank:
    """N independent stability banks behind one hash router.

    Args:
        n_shards: Number of shards.
        omega: MA window (shared by all shards).
        tau: Optional stability threshold (shared by all shards).
        executor: Optional :class:`~repro.engine.executor.ShardExecutor`
            running the per-shard ingest kernels (``None`` = inline
            serial).  Because shards share no state, any executor yields
            byte-identical results; a thread pool overlaps the
            GIL-releasing NumPy kernels on multi-core hosts.
    """

    def __init__(
        self,
        n_shards: int = 4,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = None,
        *,
        executor: ShardExecutor | None = None,
    ) -> None:
        if n_shards < 1:
            raise DataModelError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.omega = omega
        self.tau = tau
        self.executor = executor
        #: Batches below this many events ingest inline even with a pooled
        #: executor (pool round-trips dwarf tiny kernels; results are
        #: identical either way).  Tests zero it to force the pool.
        self.parallel_min_events = PARALLEL_MIN_EVENTS
        #: Times an executor was present but the batch fell below the
        #: inline cutoff — genuine pool short-circuits (always 0 without
        #: an executor, where inline is the only path).
        self.inline_cutoff_hits = 0
        self._obs = obs.get()
        self.shards: list[StabilityBank] = [
            StabilityBank(omega, tau) for _ in range(n_shards)
        ]
        # resource id -> shard id, filled at first sight (vectorized
        # routing gathers from this dict instead of re-running CRC32)
        self._shard_cache: dict[str, int] = {}
        #: Checkpoint directory this bank was loaded from, if any — a
        #: state-owning executor re-seeds its workers straight from the
        #: (memory-mappable) checkpoint files instead of shipping arrays.
        #: Cleared the moment in-parent state mutates past the load.
        self.resume_source: str | None = None
        # With a state-owning executor the local shards become stale
        # numeric mirrors; these are the ones needing a worker export
        # before the next query.
        self._stale_shards: set[int] = set()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_id(self, resource_id: str) -> int:
        """The shard index owning ``resource_id`` (memoized)."""
        shard = self._shard_cache.get(resource_id)
        if shard is None:
            shard = shard_of(resource_id, self.n_shards)
            self._shard_cache[resource_id] = shard
        return shard

    def shard_ids(self, resource_ids: Sequence[str]) -> np.ndarray:
        """Batched router: the shard index of every id, as ``int64``.

        Cache hits resolve as one C-level ``map(dict.__getitem__, ...)``
        feeding ``np.fromiter``; only first-seen ids fall back to a
        Python pass that runs CRC32 once each.
        """
        cache = self._shard_cache
        count = len(resource_ids)
        if self.n_shards == 1:
            return np.zeros(count, dtype=np.int64)
        try:
            return np.fromiter(
                map(cache.__getitem__, resource_ids), dtype=np.int64, count=count
            )
        except KeyError:
            n_shards = self.n_shards
            for resource_id in resource_ids:
                if resource_id not in cache:
                    cache[resource_id] = shard_of(resource_id, n_shards)
            return np.fromiter(
                map(cache.__getitem__, resource_ids), dtype=np.int64, count=count
            )

    def shard_for(self, resource_id: str) -> StabilityBank:
        """The bank owning ``resource_id``."""
        return self.shards[self.shard_id(resource_id)]

    def ensure(self, resource_ids: Iterable[str]) -> None:
        """Pre-register resources on their owning shards."""
        slices: list[list[str]] = [[] for _ in range(self.n_shards)]
        if not isinstance(resource_ids, Sequence):
            resource_ids = list(resource_ids)
        for resource_id, shard in zip(
            resource_ids, self.shard_ids(resource_ids).tolist()
        ):
            slices[shard].append(resource_id)
        for shard_bank, owned in zip(self.shards, slices):
            if owned:
                shard_bank.ensure(owned)

    def partition(
        self, events: Sequence[TagEvent] | Iterable[TagEvent]
    ) -> list[list[TagEvent]]:
        """Split an event sequence into per-shard slices, order-preserving."""
        if not isinstance(events, Sequence):
            events = list(events)
        slices: list[list[TagEvent]] = [[] for _ in range(self.n_shards)]
        if self.n_shards == 1:
            slices[0] = list(events)
            return slices
        ids = self.shard_ids([event.resource_id for event in events])
        for event, shard in zip(events, ids.tolist()):
            slices[shard].append(event)
        return slices

    def encode_partition(
        self, events: Sequence[TagEvent]
    ) -> list[tuple[np.ndarray, EventBatch] | None]:
        """Route and pre-encode a batch into per-shard CSR slices.

        Returns one ``(positions, batch)`` pair per shard (``None`` for
        shards the batch never touches): ``positions`` are the events'
        indices in the original batch (ascending — routing is stable) and
        ``batch`` is the slice encoded against **that shard's**
        interners, ready for :meth:`StabilityBank.ingest`.  This is the
        handoff a parallel executor consumes: all interning happens here,
        on the caller's thread; workers run pure NumPy kernels.
        """
        n_events = len(events)
        encoded: list[tuple[np.ndarray, EventBatch] | None] = [None] * self.n_shards
        if n_events == 0:
            return encoded
        telemetry = self._obs
        started = time.perf_counter() if telemetry.enabled else 0.0
        ids = self.shard_ids([event.resource_id for event in events])
        order = np.argsort(ids, kind="stable")
        sizes = np.bincount(ids, minlength=self.n_shards)
        boundaries = np.zeros(self.n_shards + 1, dtype=np.int64)
        np.cumsum(sizes, out=boundaries[1:])
        for shard in range(self.n_shards):
            start, end = int(boundaries[shard]), int(boundaries[shard + 1])
            if start == end:
                continue
            positions = order[start:end]
            shard_bank = self.shards[shard]
            shard_events = [events[i] for i in positions.tolist()]
            batch = encode_events(
                shard_events, tags=shard_bank.tags, resources=shard_bank.resources
            )
            encoded[shard] = (positions, batch)
        if telemetry.enabled:
            telemetry.observe(
                "engine.shard.encode", (time.perf_counter() - started) * 1000.0
            )
        return encoded

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @property
    def _owns_state(self) -> bool:
        """True when the executor's workers own the shard banks."""
        executor = self.executor
        return executor is not None and getattr(executor, "owns_state", False)

    def _mark_mutated(self) -> None:
        # in-parent state moved past the checkpoint it was loaded from;
        # a later worker warm-up must ship live state, not re-read disk
        self.resume_source = None

    def adopt_shards(self, banks: dict[int, StabilityBank]) -> None:
        """Install authoritative in-parent shard banks (executor handback).

        A degrading state-owning executor rebuilds each shard it owned
        (recovery base + delta journal, interned in shell order) and
        hands the results back here: the rebuilt banks replace the stale
        shells, nothing is stale any more, and in-parent state has moved
        past whatever checkpoint the bank was loaded from.
        """
        for shard, rebuilt in banks.items():
            self.shards[shard] = rebuilt
        self._stale_shards.clear()
        self._mark_mutated()

    def _materialize(self) -> None:
        """Refresh stale shard mirrors from their owning workers.

        With a state-owning executor the authoritative banks live in the
        worker processes; numeric queries pull each dirty shard's full
        state across once (the only path that pickles arrays) and serve
        from the rebuilt mirror until the next ingest dirties it again.
        """
        if not self._stale_shards or not self._owns_state:
            return
        executor = self.executor
        if not getattr(executor, "bound", False):
            self._stale_shards.clear()
            return
        for shard in sorted(self._stale_shards):
            payload = executor.export_shard(self, shard)
            self.shards[shard] = StabilityBank.import_state(payload)
        self._stale_shards.clear()

    def ingest_shard(
        self, shard_index: int, events: Sequence[TagEvent]
    ) -> IngestReport:
        """Ingest a pre-partitioned slice into one shard.

        Every event must belong to ``shard_index``; this is the unit of
        work a parallel executor submits per shard.
        """
        if self._owns_state:
            shard_bank = self.shards[shard_index]
            batch = encode_events(
                events, tags=shard_bank.tags, resources=shard_bank.resources
            )
            return self.ingest_encoded([shard_index], [batch], batch.n_events)[0]
        self._mark_mutated()
        return self.shards[shard_index].ingest_events(events)

    def ingest_encoded(
        self,
        shard_indices: Sequence[int],
        batches: Sequence[EventBatch],
        total_events: int,
    ) -> list[IngestReport]:
        """Run pre-encoded per-shard batches through the executor.

        The single dispatch point for parallel ingestion: batches below
        :attr:`parallel_min_events` total events run inline (a pool
        round-trip dwarfs tiny kernels), larger ones go to the bank's
        executor.  Reports come back in ``shard_indices`` order either
        way, so callers reassemble deterministically.

        A state-owning executor (the ``process`` backend) bypasses the
        inline cutoff entirely — the banks live in its workers, so every
        batch must cross regardless of size — and the touched shards'
        local mirrors are marked stale for the next numeric query.
        """
        telemetry = self._obs
        if self._owns_state:
            if telemetry.enabled:
                telemetry.count("engine.shard.pooled_flushes")
            reports = self.executor.ingest_shards(
                self, list(shard_indices), list(batches)
            )
            # mark *after* dispatch: bind-time warm-up may consult the
            # shell mirrors, which are only stale once workers ingested
            self._stale_shards.update(shard_indices)
            return reports
        self._mark_mutated()
        if telemetry.enabled:
            # per-shard flush spans aggregate into one histogram (and the
            # trace stream, labelled by shard); safe from worker threads
            def flush_task(shard: int, batch: EventBatch):
                bank = self.shards[shard]

                def call() -> IngestReport:
                    with telemetry.span(
                        "engine.shard.flush", shard=shard, events=batch.n_events
                    ):
                        return bank.ingest(batch)

                return call

            tasks = [
                flush_task(shard, batch)
                for shard, batch in zip(shard_indices, batches)
            ]
        else:
            tasks = [
                partial(self.shards[shard].ingest, batch)
                for shard, batch in zip(shard_indices, batches)
            ]
        if self.executor is None or total_events < self.parallel_min_events:
            # tiny flushes finish faster than a pool round-trip
            if self.executor is not None:
                self.inline_cutoff_hits += 1
                if telemetry.enabled:
                    telemetry.count("engine.shard.inline_cutoff_hits")
            if telemetry.enabled:
                telemetry.count("engine.shard.inline_flushes")
            return [task() for task in tasks]
        if telemetry.enabled:
            telemetry.count("engine.shard.pooled_flushes")
        return self.executor.run(tasks)

    def ingest_events(self, events: Iterable[TagEvent]) -> IngestReport:
        """Partition, pre-encode and ingest a batch; reassemble one report.

        The per-shard kernels run through the bank's executor (inline
        when ``None``); the combined similarities are in the original
        batch order and ``newly_stable`` lists crossings in shard-index
        order — both independent of the executor, so parallel ingestion
        is trace-identical to serial.
        """
        if not isinstance(events, Sequence):
            events = list(events)
        if self.n_shards == 1 and not self._owns_state:
            self._mark_mutated()
            return self.shards[0].ingest_events(events)
        encoded = self.encode_partition(events)
        touched = [shard for shard, slot in enumerate(encoded) if slot is not None]
        if not touched:
            return IngestReport(0, 0, np.zeros(0), [])
        reports = self.ingest_encoded(
            touched,
            [encoded[shard][1] for shard in touched],  # type: ignore[index]
            len(events),
        )
        similarities = np.zeros(len(events), dtype=np.float64)
        newly_stable: list[str] = []
        n_tag_assignments = 0
        for shard, report in zip(touched, reports):
            positions, _ = encoded[shard]  # type: ignore[misc]
            similarities[positions] = report.similarities
            newly_stable.extend(report.newly_stable)
            n_tag_assignments += report.n_tag_assignments
        return IngestReport(len(events), n_tag_assignments, similarities, newly_stable)

    # ------------------------------------------------------------------
    # aggregate queries (delegate through the router)
    # ------------------------------------------------------------------

    def __contains__(self, resource_id: object) -> bool:
        if not isinstance(resource_id, str):
            return False
        return resource_id in self.shard_for(resource_id)

    @property
    def n_resources(self) -> int:
        """Resources seen across all shards."""
        return sum(shard.n_resources for shard in self.shards)

    @property
    def total_posts(self) -> int:
        """Posts ingested across all shards."""
        self._materialize()
        return sum(shard.total_posts for shard in self.shards)

    def num_posts(self, resource_id: str) -> int:
        self._materialize()
        return self.shard_for(resource_id).num_posts(resource_id)

    def ma_score(self, resource_id: str) -> float | None:
        self._materialize()
        return self.shard_for(resource_id).ma_score(resource_id)

    def is_stable(self, resource_id: str) -> bool:
        self._materialize()
        return self.shard_for(resource_id).is_stable(resource_id)

    def stable_point(self, resource_id: str) -> int | None:
        self._materialize()
        return self.shard_for(resource_id).stable_point(resource_id)

    def stable_points(self) -> dict[str, int]:
        """All stable resources across shards."""
        self._materialize()
        merged: dict[str, int] = {}
        for shard in self.shards:
            merged.update(shard.stable_points())
        return merged

    def stable_rfd(self, resource_id: str) -> dict[str, float] | None:
        self._materialize()
        return self.shard_for(resource_id).stable_rfd(resource_id)

    def counts_of(self, resource_id: str) -> dict[str, int]:
        self._materialize()
        return self.shard_for(resource_id).counts_of(resource_id)

    def rfd(self, resource_id: str) -> dict[str, float]:
        self._materialize()
        return self.shard_for(resource_id).rfd(resource_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStabilityBank(shards={self.n_shards}, "
            f"resources={self.n_resources}, posts={self.total_posts})"
        )
