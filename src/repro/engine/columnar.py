"""The columnar stability bank: Appendix C, vectorized across resources.

:class:`StabilityBank` is the multi-resource counterpart of
:class:`repro.core.stability.StabilityTracker`.  Where the scalar tracker
keeps one resource's tag counts in a Python dict and its MA window in a
deque, the bank keeps *all* resources' state in NumPy arrays:

* a count block ``C[r, t] = h_r(t, k_r)`` (rows = resources, columns =
  interned tags, both growing geometrically);
* running totals ``Σ_t h(t)``, squared norms ``Σ_t h(t)²`` and post
  counts ``k`` per resource;
* an MA window block ``(R, omega-1)`` (each row the resource's last
  adjacent similarities in chronological order) with per-resource sums;
* stable points and frozen rfd snapshots for resources that crossed
  ``tau``.

One call to :meth:`ingest` applies a whole :class:`EventBatch`: events
are grouped into *rounds* (the j-th round holds the j-th event of every
resource appearing in the batch, preserving per-resource order), and each
round updates every touched resource with a handful of whole-array NumPy
operations — the identical ``O(|post|)`` recurrence of
:mod:`repro.core.frequency`, amortized to well under a microsecond per
event.  Because resources are independent in the model, round-splitting
reproduces the scalar semantics exactly; the property tests pin the MA
scores and stable points to the scalar tracker within 1e-9.

The count block is dense in memory (fast fancy-indexed updates; ~8 bytes
per (resource, tag) cell) and is exported/imported CSR-style — see
:meth:`counts_csr` and :meth:`from_state` — which is what the checkpoint
format stores.  Memory scales as ``rows × vocabulary``; the shard router
(:mod:`repro.engine.shard`) keeps both factors per-shard small.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.errors import StabilityError
from repro.core.stability import DEFAULT_OMEGA
from repro.engine.events import EventBatch, Interner, TagEvent, encode_events

__all__ = ["StabilityBank", "IngestReport", "StableSnapshot"]

_INT32_MAX = np.iinfo(np.int32).max


def _sizes_from_starts(starts: np.ndarray, end: int) -> np.ndarray:
    """Adjacent differences of ``append(starts, end)`` without the append.

    Equivalent to ``np.diff(np.append(starts, end))`` for an ascending
    ``starts``; hand-rolled because this runs several times per ingest
    and the wrapper overhead dominates on small batches.
    """
    sizes = np.empty(starts.size, dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=sizes[:-1])
    sizes[-1] = end - starts[-1]
    return sizes


def _validate_omega(omega: int) -> None:
    if omega < 2:
        raise StabilityError(f"omega must be >= 2 (Definition 7), got {omega}")


def _validate_tau(tau: float) -> None:
    if not 0.0 <= tau <= 1.0:
        raise StabilityError(f"tau must lie in [0, 1] (cosine range), got {tau}")


@dataclass(frozen=True, slots=True)
class StableSnapshot:
    """The frozen count vector of a resource at its stable point.

    Counts (not the normalized rfd) are stored so snapshots round-trip
    losslessly through JSON checkpoints; the rfd is ``counts / total``.
    """

    stable_point: int
    tag_ids: np.ndarray
    counts: np.ndarray
    total: int

    def rfd(self, tags: Interner) -> dict[str, float]:
        """The practically-stable rfd as a sparse tag → frequency dict."""
        total = float(self.total)
        return {
            tags.value(int(t)): int(c) / total
            for t, c in zip(self.tag_ids, self.counts)
        }


@dataclass(frozen=True, slots=True)
class IngestReport:
    """What one :meth:`StabilityBank.ingest` call did.

    Attributes:
        n_events: Events applied.
        n_tag_assignments: Total (event, tag) pairs applied.
        similarities: Adjacent similarity induced by each event, in batch
            order (0.0 for a resource's first post, as in Eq. 16).
        newly_stable: Resource ids that crossed ``tau`` during this batch,
            in detection order.
    """

    n_events: int
    n_tag_assignments: int
    similarities: np.ndarray
    newly_stable: list[str] = field(default_factory=list)


class StabilityBank:
    """Vectorized MA-score tracking for a population of resources.

    Args:
        omega: MA window, ``>= 2`` (Definition 7).
        tau: Optional stability threshold; when set the bank watches for
            Definition 8's condition per resource and freezes the rfd at
            the stable point, exactly like the scalar tracker.
        initial_rows: Starting row capacity (grows geometrically).
        initial_tags: Starting column capacity (grows geometrically).
    """

    def __init__(
        self,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = None,
        *,
        initial_rows: int = 64,
        initial_tags: int = 256,
    ) -> None:
        _validate_omega(omega)
        if tau is not None:
            _validate_tau(tau)
        self.omega = omega
        self.tau = tau
        self.tags = Interner()
        self.resources = Interner()
        rows = max(1, initial_rows)
        cols = max(1, initial_tags)
        # int32 cells: counts are per-resource post counts, far below 2**31;
        # the smaller block halves the cache traffic of the batched gathers.
        self._counts = np.zeros((rows, cols), dtype=np.int32)
        # Per-row registry of the distinct tags seen (append order): the
        # sparse view of each count row, so snapshots and per-resource
        # queries cost O(distinct tags) instead of O(vocabulary).
        self._row_tags = np.zeros((rows, 8), dtype=np.int32)
        self._n_distinct = np.zeros(rows, dtype=np.int64)
        self._total = np.zeros(rows, dtype=np.int64)
        self._sumsq = np.zeros(rows, dtype=np.int64)
        self._num_posts = np.zeros(rows, dtype=np.int64)
        self._window = np.zeros((rows, omega - 1), dtype=np.float64)
        self._window_sum = np.zeros(rows, dtype=np.float64)
        self._win_len = np.zeros(rows, dtype=np.int64)
        self._stable_point = np.full(rows, -1, dtype=np.int64)
        self._snapshots: dict[int, StableSnapshot] = {}
        #: Batches at or below this many events use the scalar fast path
        #: (same results to the bit; see :meth:`_ingest_small`).  The
        #: crossover sits where the vectorized pass's fixed dispatch
        #: overhead stops dominating; 0 forces the vectorized pass.
        self.small_batch_max = 48
        # telemetry is captured at construction: one attribute check per
        # ingest when disabled (the shared null singleton)
        self._obs = obs.get()

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def _grow(self, rows: int, cols: int) -> None:
        """Ensure capacity for ``rows`` resources and ``cols`` tags."""
        old_rows, old_cols = self._counts.shape
        new_rows = old_rows
        while new_rows < rows:
            new_rows *= 2
        new_cols = old_cols
        while new_cols < cols:
            new_cols *= 2
        if new_rows != old_rows or new_cols != old_cols:
            counts = np.zeros((new_rows, new_cols), dtype=np.int32)
            counts[:old_rows, :old_cols] = self._counts
            self._counts = counts
        if new_rows != old_rows:
            def grown(array: np.ndarray, fill: float | int = 0) -> np.ndarray:
                shape = (new_rows,) + array.shape[1:]
                out = np.full(shape, fill, dtype=array.dtype)
                out[:old_rows] = array
                return out

            self._row_tags = grown(self._row_tags)
            self._n_distinct = grown(self._n_distinct)
            self._total = grown(self._total)
            self._sumsq = grown(self._sumsq)
            self._num_posts = grown(self._num_posts)
            self._window = grown(self._window)
            self._window_sum = grown(self._window_sum)
            self._win_len = grown(self._win_len)
            self._stable_point = grown(self._stable_point, fill=-1)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ensure(self, resource_ids: Iterable[str]) -> None:
        """Pre-register resources (at zero posts) without ingesting.

        Useful when a caller wants every resource queryable (e.g. a
        campaign over a fixed population) before any event arrives.
        """
        for resource_id in resource_ids:
            self.resources.intern(resource_id)
        self._grow(max(len(self.resources), 1), max(len(self.tags), 1))

    def ingest_events(self, events: Iterable[TagEvent]) -> IngestReport:
        """Encode ``events`` with the bank's interners and ingest them."""
        batch = encode_events(events, tags=self.tags, resources=self.resources)
        return self.ingest(batch)

    def ingest(self, batch: EventBatch) -> IngestReport:
        """Apply one batch; return per-event similarities and new stables.

        See :meth:`_ingest` for the kernel semantics; this wrapper only
        adds telemetry (batch latency into the ``engine.ingest``
        histogram, event/assignment counters, small-vs-vectorized kernel
        split) when the active telemetry is enabled.
        """
        telemetry = self._obs
        if not telemetry.enabled:
            return self._ingest(batch)
        started = time.perf_counter()
        report = self._ingest(batch)
        telemetry.observe(
            "engine.ingest", (time.perf_counter() - started) * 1000.0
        )
        if report.n_events:
            telemetry.count("engine.events", report.n_events)
            telemetry.count("engine.tag_assignments", report.n_tag_assignments)
            telemetry.count(
                "engine.small_batches"
                if report.n_events <= self.small_batch_max
                else "engine.vector_batches"
            )
            if report.newly_stable:
                telemetry.count("engine.newly_stable", len(report.newly_stable))
        return report

    def _ingest(self, batch: EventBatch) -> IngestReport:
        """Apply one batch; return per-event similarities and new stables.

        Events for distinct resources commute; events for the same
        resource are applied in batch order, so ingesting any split of a
        stream into batches yields the same final state as the scalar
        tracker fed post by post.

        Batches at or below :attr:`small_batch_max` events take a scalar
        fast path (:meth:`_ingest_small`) that produces **bit-identical**
        results: the vectorized pass costs ~90 NumPy dispatches of fixed
        overhead, which dominates tiny batches — exactly the regime of a
        sharded campaign monitor flushing a few dozen events per shard
        per epoch.  Larger batches run the vectorized pass: events are
        sorted by resource (stable, so per-resource order survives), the
        in-batch evolution of every resource's ``sumsq`` is a segmented
        cumulative sum, in-batch repeats of a (resource, tag) pair are
        handled by duplicate-rank counting, and the per-event MA scores
        come from a rolling-window sum over each resource's concatenated
        (carried window ‖ new similarities) sequence.
        """
        n_events = batch.n_events
        newly_stable: list[str] = []
        if n_events == 0:
            return IngestReport(0, 0, np.zeros(0), newly_stable)
        if n_events <= self.small_batch_max:
            return self._ingest_small(batch)

        self._grow(len(self.resources), max(len(self.tags), 1))
        width = self.omega - 1
        counts_flat = self._counts.reshape(-1)
        n_columns = self._counts.shape[1]

        # Index arithmetic runs in int32 while everything fits (it always
        # does for realistic batch sizes and shard-local count blocks);
        # only the sumsq recurrence needs int64.
        compact = self._counts.size <= _INT32_MAX

        # --- sort events by resource; build per-resource segments -------
        rows = batch.resources
        order = rows.argsort(kind="stable")
        sorted_rows = rows[order]
        indptr = batch.indptr
        sorted_lengths = (indptr[1:] - indptr[:-1])[order]
        segment_first = np.empty(n_events, dtype=bool)
        segment_first[0] = True
        np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=segment_first[1:])
        segment_start = np.nonzero(segment_first)[0]
        segment_of = np.cumsum(segment_first) - 1
        segment_rows = sorted_rows[segment_start]
        n_segments = segment_start.size
        segment_sizes = _sizes_from_starts(segment_start, n_events)

        # --- flatten (event, tag) pairs in sorted-event order -----------
        total_tags = int(sorted_lengths.sum())
        flat_offsets = np.zeros(n_events, dtype=np.int64)
        np.cumsum(sorted_lengths[:-1], out=flat_offsets[1:])
        flat_positions = np.repeat(
            indptr[:-1][order] - flat_offsets, sorted_lengths
        ) + np.arange(total_tags, dtype=np.int64)
        flat_tags = batch.tag_ids[flat_positions]
        key_dtype = np.int32 if compact else np.int64
        flat_keys = np.repeat(
            (sorted_rows * n_columns).astype(key_dtype), sorted_lengths
        ) + flat_tags.astype(key_dtype)

        # --- duplicate rank: how many earlier in-batch events of the same
        # resource already contained this tag (the scalar recurrence sees
        # counts that grow *during* the batch) ----------------------------
        # Sorting value-packed keys (key in the high bits, flat position
        # in the low bits) is several times faster than a stable argsort
        # and yields the same ordering: the position bits break ties in
        # event order.
        index_bits = max(1, (total_tags - 1).bit_length())
        if compact and index_bits <= 32:
            packed = (flat_keys.astype(np.int64) << index_bits) | np.arange(
                total_tags, dtype=np.int64
            )
            packed.sort()
            key_order = packed & ((1 << index_bits) - 1)
            sorted_keys = packed >> index_bits
        else:
            key_order = np.argsort(flat_keys, kind="stable")
            sorted_keys = flat_keys[key_order]
        key_first = np.empty(total_tags, dtype=bool)
        key_first[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=key_first[1:])
        key_start = np.nonzero(key_first)[0]
        key_group = np.cumsum(key_first, dtype=np.int32 if compact else np.int64) - 1
        duplicate_rank_sorted = (
            np.arange(total_tags, dtype=key_group.dtype)
            - key_start.astype(key_group.dtype)[key_group]
        )
        unique_keys = sorted_keys[key_start]
        key_increments = _sizes_from_starts(key_start, total_tags)

        # --- Appendix C recurrence, segmented across the batch -----------
        # count seen by each (event, tag): stored count + in-batch repeats.
        # The count-block gather runs in ascending key order (cache- and
        # TLB-friendly on a block of many MB) and is scattered back to
        # event order in one pass.
        effective_counts = np.empty(total_tags, dtype=np.int64)
        effective_counts[key_order] = counts_flat[sorted_keys] + duplicate_rank_sorted
        overlap = np.add.reduceat(effective_counts, flat_offsets)
        sumsq_delta = 2 * overlap + sorted_lengths
        sumsq_cumulative = np.cumsum(sumsq_delta)
        sumsq_prior = sumsq_cumulative - sumsq_delta
        sumsq_before = (
            self._sumsq[sorted_rows] + sumsq_prior - sumsq_prior[segment_start][segment_of]
        )
        sumsq_after = sumsq_before + sumsq_delta
        dot = sumsq_before + overlap
        denominator = np.sqrt(
            sumsq_before.astype(np.float64) * sumsq_after.astype(np.float64)
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            sorted_similarities = np.where(sumsq_before > 0, dot / denominator, 0.0)
        np.minimum(sorted_similarities, 1.0, out=sorted_similarities)

        # --- apply count/total/sumsq/num_posts updates -------------------
        previous_counts = counts_flat[unique_keys]
        counts_flat[unique_keys] = previous_counts + key_increments.astype(np.int32)
        fresh_keys = unique_keys[previous_counts == 0]
        if fresh_keys.size:
            self._register_fresh(fresh_keys, n_columns)
        # per-segment tag totals are the widths of the segments' flat extents
        self._total[segment_rows] += _sizes_from_starts(
            flat_offsets[segment_start], total_tags
        )
        segment_end = np.empty(n_segments, dtype=np.int64)
        np.subtract(segment_start[1:], 1, out=segment_end[:-1])
        segment_end[-1] = n_events - 1
        self._sumsq[segment_rows] = sumsq_after[segment_end]
        posts_before = self._num_posts[segment_rows]
        self._num_posts[segment_rows] = posts_before + segment_sizes
        position_in_segment = (
            np.arange(n_events, dtype=np.int64) - segment_start[segment_of]
        )
        k_after = posts_before[segment_of] + position_in_segment + 1

        # --- MA windows: roll over (carried window ‖ new sims) -----------
        # Only the j = 1 similarity (a resource's very first post) stays
        # outside every window, so the per-segment window-event count is
        # the segment size minus one for brand-new resources, and a
        # window event's rank is its segment position shifted by one for
        # those same segments.
        enters_window = k_after >= 2
        window_sims = sorted_similarities[enters_window]
        window_segment = segment_of[enters_window]
        brand_new = posts_before == 0
        new_per_segment = segment_sizes - brand_new
        carried = self._win_len[segment_rows]
        concat_lengths = carried + new_per_segment
        concat_start = np.zeros(n_segments, dtype=np.int64)
        np.cumsum(concat_lengths[:-1], out=concat_start[1:])
        concatenated = np.empty(int(concat_lengths.sum()), dtype=np.float64)

        # carried window entries (stored chronologically from column 0)
        carried_total = int(carried.sum())
        if carried_total:
            carried_segment = np.repeat(np.arange(n_segments, dtype=np.int64), carried)
            carried_offset = np.zeros(n_segments, dtype=np.int64)
            np.cumsum(carried[:-1], out=carried_offset[1:])
            index_in_carried = (
                np.arange(carried_total, dtype=np.int64) - carried_offset[carried_segment]
            )
            concatenated[concat_start[carried_segment] + index_in_carried] = (
                self._window.reshape(-1)[
                    segment_rows[carried_segment] * width + index_in_carried
                ]
            )

        # new similarities, chronological per segment
        n_window_events = window_sims.size
        if n_window_events:
            window_rank = (
                position_in_segment[enters_window] - brand_new[window_segment]
            )
            window_positions = (
                concat_start[window_segment] + carried[window_segment] + window_rank
            )
            concatenated[window_positions] = window_sims

        padded_cumulative = np.empty(concatenated.size + 1, dtype=np.float64)
        padded_cumulative[0] = 0.0
        np.cumsum(concatenated, out=padded_cumulative[1:])

        # --- Definition 8: first k >= omega with m(k, omega) > tau -------
        # Once every touched resource is stable the whole check collapses
        # to one O(segments) test, so detection cost concentrates in the
        # early life of the stream.
        unstable_segment = (
            self._stable_point[segment_rows] < 0 if self.tau is not None else None
        )
        if unstable_segment is not None and n_window_events and unstable_segment.any():
            k_after_window = k_after[enters_window]
            candidate = (k_after_window >= self.omega) & unstable_segment[window_segment]
            if np.any(candidate):
                candidate_positions = window_positions[candidate]
                window_sums = (
                    padded_cumulative[candidate_positions + 1]
                    - padded_cumulative[candidate_positions + 1 - width]
                )
                hit = window_sums / width > self.tau
                if np.any(hit):
                    hit_segments = window_segment[candidate][hit]
                    _, first_hit = np.unique(hit_segments, return_index=True)
                    self._freeze_batch(
                        hit_segments[first_hit],
                        k_after_window[candidate][hit][first_hit],
                        segment_rows,
                        segment_start,
                        segment_end,
                        flat_offsets,
                        flat_tags,
                        sorted_lengths,
                        k_after,
                        newly_stable,
                    )

        # --- final window state per touched resource ---------------------
        final_lengths = np.minimum(concat_lengths, width)
        final_total = int(final_lengths.sum())
        if final_total:
            final_segment = np.repeat(np.arange(n_segments, dtype=np.int64), final_lengths)
            final_offset = np.zeros(n_segments, dtype=np.int64)
            np.cumsum(final_lengths[:-1], out=final_offset[1:])
            index_in_final = (
                np.arange(final_total, dtype=np.int64) - final_offset[final_segment]
            )
            source = (
                concat_start[final_segment]
                + concat_lengths[final_segment]
                - final_lengths[final_segment]
                + index_in_final
            )
            self._window.reshape(-1)[
                segment_rows[final_segment] * width + index_in_final
            ] = concatenated[source]
        tail = concat_start + concat_lengths
        self._window_sum[segment_rows] = (
            padded_cumulative[tail] - padded_cumulative[tail - final_lengths]
        )
        self._win_len[segment_rows] = final_lengths

        similarities = np.empty(n_events, dtype=np.float64)
        similarities[order] = sorted_similarities
        return IngestReport(
            n_events, batch.n_tag_assignments, similarities, newly_stable
        )

    def _ingest_small(self, batch: EventBatch) -> IngestReport:
        """Scalar fast path for tiny batches — bit-identical to :meth:`ingest`.

        Replays the vectorized pass's exact arithmetic with plain Python
        loops (the integer bookkeeping is exact either way; every float
        operation — the ``float(a) * float(b)`` similarity denominator,
        the sequential cumulative sum over the concatenated
        (carried window ‖ new sims) array spanning all touched segments
        in ascending-row order, and the window sums taken as cumulative
        differences — is performed in the same order on the same values,
        so results match the vectorized pass to the last bit; the
        property tests pin this).  Worth it because a tiny batch spends
        nearly all its time in fixed per-call NumPy dispatch overhead.
        """
        n_events = batch.n_events
        newly_stable: list[str] = []
        self._grow(len(self.resources), max(len(self.tags), 1))
        width = self.omega - 1
        n_columns = self._counts.shape[1]
        counts_flat = self._counts.reshape(-1)
        check_tau = self.tau is not None
        tau = self.tau

        rows = batch.resources.tolist()
        indptr = batch.indptr.tolist()

        # stable sort by row; group into per-resource segments
        order = sorted(range(n_events), key=rows.__getitem__)

        # --- batched state gathers ---------------------------------------
        # A tiny batch's cost is dominated by per-element NumPy indexing,
        # so every per-row scalar the loop needs is gathered in one fancy
        # index up front (and scattered back once at the end): the loop
        # itself runs on plain Python ints and floats.  ``touched`` lists
        # the distinct rows in ascending order (the segment order).
        touched: list[int] = []
        previous = -1
        for event in order:
            row = rows[event]
            if row != previous:
                touched.append(row)
                previous = row
        touched_arr = np.asarray(touched, dtype=np.int64)
        num_posts = self._num_posts[touched_arr].tolist()
        win_lens = self._win_len[touched_arr].tolist()
        sumsqs = self._sumsq[touched_arr].tolist()
        totals = self._total[touched_arr].tolist()
        stable_points = self._stable_point[touched_arr].tolist()
        windows = self._window[touched_arr].tolist()

        # every (event, tag) pair's flat count key and pre-batch count,
        # as two vectorized gathers instead of per-occurrence indexing
        event_lengths = batch.indptr[1:] - batch.indptr[:-1]
        flat_keys_arr = (
            batch.resources.repeat(event_lengths) * n_columns + batch.tag_ids
        )
        flat_keys = flat_keys_arr.tolist()
        flat_bases = counts_flat[flat_keys_arr].tolist()

        similarities = [0.0] * n_events
        # flat key -> count *including* in-batch occurrences so far: the
        # overlap contributed by an occurrence is exactly this running
        # count, so one dict replaces separate base/repeat bookkeeping
        current_counts: dict[int, int] = {}
        current_get = current_counts.get
        fresh: list[int] = []  # first-seen flat keys, discovery order
        crossings: list[tuple[int, int, int, list[int]]] = []
        window_indices: list[int] = []  # flat scatter into self._window
        window_values: list[float] = []
        window_sums: list[float] = []
        running = 0.0  # the concatenated cumulative sum, across segments

        position = 0
        for t, row in enumerate(touched):
            segment_end = position
            while segment_end < n_events and rows[order[segment_end]] == row:
                segment_end += 1
            segment = order[position:segment_end]
            position = segment_end

            posts_before = num_posts[t]
            carried = win_lens[t]
            sumsq = sumsqs[t]
            unstable = check_tau and stable_points[t] < 0

            # carried window entries join the concatenated sequence first;
            # cumulative entries mirror the vectorized pass's single global
            # cumsum, so the segment's base is the running total so far
            segment_values = windows[t][:carried]
            cumulative = [running] * (carried + 1)
            for i, value in enumerate(segment_values):
                running += value
                cumulative[i + 1] = running
            segment_tags = 0
            crossed_at = -1

            for j, event in enumerate(segment):
                start, end = indptr[event], indptr[event + 1]
                length = end - start
                segment_tags += length
                overlap = 0
                for flat in range(start, end):
                    key = flat_keys[flat]
                    count = current_get(key)
                    if count is None:
                        count = flat_bases[flat]
                        if count == 0:
                            fresh.append(key)
                    overlap += count
                    current_counts[key] = count + 1
                sumsq_before = sumsq
                sumsq = sumsq_before + 2 * overlap + length
                if sumsq_before > 0:
                    similarity = float(sumsq_before + overlap) / math.sqrt(
                        float(sumsq_before) * float(sumsq)
                    )
                    if similarity > 1.0:
                        similarity = 1.0
                else:
                    similarity = 0.0
                similarities[event] = similarity

                k_after = posts_before + j + 1
                if k_after >= 2:  # a resource's first post stays windowless
                    running += similarity
                    cumulative.append(running)
                    segment_values.append(similarity)
                    if (
                        unstable
                        and crossed_at < 0
                        and k_after >= self.omega
                        and (cumulative[-1] - cumulative[-1 - width]) / width > tau
                    ):
                        crossed_at = j
                        crossings.append((row, k_after, j, segment))

            # final window state: the last <= width concatenated entries.
            # Only the first ``final_length`` columns are written (exactly
            # the vectorized pass's discipline — bytes beyond win_len stay
            # whatever they were).
            final_length = min(len(segment_values), width)
            if final_length:
                row_base = row * width
                window_indices.extend(range(row_base, row_base + final_length))
                window_values.extend(segment_values[-final_length:])
            window_sums.append(cumulative[-1] - cumulative[-1 - final_length])
            win_lens[t] = final_length
            num_posts[t] = posts_before + len(segment)
            totals[t] += segment_tags
            sumsqs[t] = sumsq

        # --- batched state scatters --------------------------------------
        self._num_posts[touched_arr] = num_posts
        self._win_len[touched_arr] = win_lens
        self._sumsq[touched_arr] = sumsqs
        self._total[touched_arr] = totals
        self._window_sum[touched_arr] = window_sums
        if window_indices:
            self._window.reshape(-1)[window_indices] = window_values

        # apply count updates; register first-seen (row, tag) pairs
        if current_counts:
            n_keys = len(current_counts)
            keys_arr = np.fromiter(current_counts, dtype=np.int64, count=n_keys)
            values_arr = np.fromiter(
                current_counts.values(), dtype=np.int32, count=n_keys
            )
            counts_flat[keys_arr] = values_arr
        if fresh:
            fresh.sort()
            self._register_fresh(np.asarray(fresh, dtype=np.int64), n_columns)

        # snapshots roll back the tags of events after each crossing
        for row, stable_k, crossed_at, segment in crossings:
            self._stable_point[row] = stable_k
            row_base = row * n_columns
            rollback: dict[int, int] = {}
            rollback_total = 0
            for event in segment[crossed_at + 1 :]:
                for flat in range(indptr[event], indptr[event + 1]):
                    tag = flat_keys[flat] - row_base
                    rollback[tag] = rollback.get(tag, 0) + 1
                    rollback_total += 1
            row_tags = self._row_tag_ids(row)
            values = self._counts[row, row_tags].astype(np.int64)
            if rollback:
                for i, tag in enumerate(row_tags.tolist()):
                    if tag in rollback:
                        values[i] -= rollback[tag]
            keep = values > 0
            self._snapshots[row] = StableSnapshot(
                stable_point=stable_k,
                tag_ids=row_tags[keep],
                counts=values[keep],
                total=int(self._total[row]) - rollback_total,
            )
            newly_stable.append(self.resources.value(row))

        return IngestReport(
            n_events,
            batch.n_tag_assignments,
            np.asarray(similarities, dtype=np.float64),
            newly_stable,
        )

    def _register_fresh(self, fresh_keys: np.ndarray, n_columns: int) -> None:
        """Append first-seen (row, tag) pairs to the per-row tag registry.

        ``fresh_keys`` is ascending, so pairs arrive grouped by row; each
        row's new tags land in its next free registry slots.
        """
        fresh_rows = fresh_keys // n_columns
        fresh_tags = (fresh_keys - fresh_rows * n_columns).astype(np.int32)
        count = fresh_keys.size
        row_first = np.empty(count, dtype=bool)
        row_first[0] = True
        np.not_equal(fresh_rows[1:], fresh_rows[:-1], out=row_first[1:])
        group_start = np.flatnonzero(row_first)
        rank = (
            np.arange(count, dtype=np.int64)
            - group_start[np.cumsum(row_first) - 1]
        )
        slots = self._n_distinct[fresh_rows] + rank
        capacity = self._row_tags.shape[1]
        needed = int(slots.max()) + 1
        if needed > capacity:
            new_capacity = capacity
            while new_capacity < needed:
                new_capacity *= 2
            registry = np.zeros(
                (self._row_tags.shape[0], new_capacity), dtype=np.int32
            )
            registry[:, :capacity] = self._row_tags
            self._row_tags = registry
            capacity = new_capacity
        self._row_tags.reshape(-1)[fresh_rows * capacity + slots] = fresh_tags
        grouped_rows = fresh_rows[group_start]
        self._n_distinct[grouped_rows] += np.diff(np.append(group_start, count))

    def _row_tag_ids(self, row: int) -> np.ndarray:
        """The distinct tag ids of ``row``, ascending."""
        return np.sort(self._row_tags[row, : int(self._n_distinct[row])]).astype(
            np.int64
        )

    def _freeze_batch(
        self,
        stable_segments: np.ndarray,
        stable_k: np.ndarray,
        segment_rows: np.ndarray,
        segment_start: np.ndarray,
        segment_end: np.ndarray,
        flat_offsets: np.ndarray,
        flat_tags: np.ndarray,
        sorted_lengths: np.ndarray,
        k_after: np.ndarray,
        newly_stable: list[str],
    ) -> None:
        """Snapshot every resource that crossed ``tau`` in this batch.

        The batch's count updates were already applied in full, so each
        snapshot rolls back the tags of the resource's events *after* its
        crossing (a contiguous slice of the flat arrays, which are grouped
        by sorted event).  All crossings of the batch are materialised
        together from the per-row tag registry, so the work is
        proportional to the resources' *distinct-tag* counts (like the
        scalar tracker's sparse rfd snapshot), not to the vocabulary.
        """
        n_stable = stable_segments.size
        n_columns = self._counts.shape[1]
        counts_flat = self._counts.reshape(-1)
        stable_rows = segment_rows[stable_segments]
        self._stable_point[stable_rows] = stable_k

        first_event = segment_start[stable_segments]
        crossing = first_event + (stable_k - k_after[first_event])
        last_event = segment_end[stable_segments]
        rollback_start = flat_offsets[crossing] + sorted_lengths[crossing]
        rollback_end = flat_offsets[last_event] + sorted_lengths[last_event]
        rollback_lengths = rollback_end - rollback_start
        totals = self._total[stable_rows] - rollback_lengths

        # Gather every stable row's distinct tags from the registry.
        # ``stable_rows`` is ascending, so the composite count-block keys
        # sort globally while staying grouped per row.
        distinct = self._n_distinct[stable_rows]
        gathered_total = int(distinct.sum())
        which = np.repeat(np.arange(n_stable, dtype=np.int64), distinct)
        offsets = np.zeros(n_stable, dtype=np.int64)
        np.cumsum(distinct[:-1], out=offsets[1:])
        index_in_row = np.arange(gathered_total, dtype=np.int64) - offsets[which]
        registry_capacity = self._row_tags.shape[1]
        gathered_tags = self._row_tags.reshape(-1)[
            stable_rows[which] * registry_capacity + index_in_row
        ]
        sorted_count_keys = np.sort(stable_rows[which] * n_columns + gathered_tags)
        values = counts_flat[sorted_count_keys].astype(np.int64)

        total_rollback = int(rollback_lengths.sum())
        if total_rollback:
            rollback_which = np.repeat(
                np.arange(n_stable, dtype=np.int64), rollback_lengths
            )
            rollback_offset = np.zeros(n_stable, dtype=np.int64)
            np.cumsum(rollback_lengths[:-1], out=rollback_offset[1:])
            positions = (
                np.arange(total_rollback, dtype=np.int64)
                - rollback_offset[rollback_which]
                + rollback_start[rollback_which]
            )
            rollback_keys = (
                stable_rows[rollback_which] * n_columns
                + flat_tags[positions].astype(np.int64)
            )
            np.subtract.at(
                values, np.searchsorted(sorted_count_keys, rollback_keys), 1
            )

        row_bases = stable_rows * n_columns
        ends = np.append(offsets[1:], gathered_total)
        for i in range(n_stable):
            row = int(stable_rows[i])
            tag_ids = sorted_count_keys[offsets[i] : ends[i]] - row_bases[i]
            row_values = values[offsets[i] : ends[i]]
            keep = row_values > 0
            self._snapshots[row] = StableSnapshot(
                stable_point=int(stable_k[i]),
                tag_ids=tag_ids[keep],
                counts=row_values[keep],
                total=int(totals[i]),
            )
            newly_stable.append(self.resources.value(row))

    # ------------------------------------------------------------------
    # per-resource queries (scalar-tracker-compatible)
    # ------------------------------------------------------------------

    def _row(self, resource_id: str) -> int:
        row = self.resources.lookup(resource_id)
        if row is None:
            raise KeyError(f"unknown resource {resource_id!r}")
        return row

    def __contains__(self, resource_id: object) -> bool:
        return resource_id in self.resources

    @property
    def n_resources(self) -> int:
        """Resources seen so far."""
        return len(self.resources)

    @property
    def n_tags(self) -> int:
        """Distinct tags seen so far (across all resources)."""
        return len(self.tags)

    @property
    def total_posts(self) -> int:
        """Posts ingested across all resources."""
        return int(self._num_posts[: len(self.resources)].sum())

    def num_posts(self, resource_id: str) -> int:
        """The resource's ``k``."""
        return int(self._num_posts[self._row(resource_id)])

    def ma_score(self, resource_id: str) -> float | None:
        """``m(k, omega)``, or ``None`` while ``k < omega``."""
        row = self._row(resource_id)
        if self._num_posts[row] < self.omega:
            return None
        return float(self._window_sum[row] / (self.omega - 1))

    def ma_scores(self) -> tuple[list[str], np.ndarray]:
        """All resources and their MA scores (``nan`` where undefined)."""
        count = len(self.resources)
        scores = np.full(count, np.nan)
        defined = self._num_posts[:count] >= self.omega
        scores[defined] = self._window_sum[:count][defined] / (self.omega - 1)
        return self.resources.items(), scores

    def is_stable(self, resource_id: str) -> bool:
        """Whether the resource has crossed ``tau`` (needs ``tau``)."""
        return self._stable_point[self._row(resource_id)] >= 0

    def stable_point(self, resource_id: str) -> int | None:
        """Smallest ``k`` seen with ``m(k, omega) > tau``, if any."""
        point = int(self._stable_point[self._row(resource_id)])
        return None if point < 0 else point

    def stable_points(self) -> dict[str, int]:
        """All stable resources and their stable points."""
        return {
            self.resources.value(row): snapshot.stable_point
            for row, snapshot in sorted(self._snapshots.items())
        }

    def stable_rfd(self, resource_id: str) -> dict[str, float] | None:
        """The rfd frozen at the stable point, if reached."""
        snapshot = self._snapshots.get(self._row(resource_id))
        return None if snapshot is None else snapshot.rfd(self.tags)

    def counts_of(self, resource_id: str) -> dict[str, int]:
        """The resource's sparse count vector ``h(·, k)`` as a dict."""
        row = self._row(resource_id)
        tag_ids = self._row_tag_ids(row)
        counts = self._counts[row, tag_ids]
        return {
            self.tags.value(int(t)): int(c) for t, c in zip(tag_ids, counts)
        }

    def rfd(self, resource_id: str) -> dict[str, float]:
        """The resource's current rfd ``F(k)`` (empty at ``k = 0``)."""
        row = self._row(resource_id)
        total = int(self._total[row])
        if total == 0:
            return {}
        return {tag: count / total for tag, count in self.counts_of(resource_id).items()}

    # ------------------------------------------------------------------
    # state export / import (checkpointing)
    # ------------------------------------------------------------------

    def counts_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The count block in CSR form ``(indptr, tag_indices, counts)``.

        Rows are the interned resources in id order; only nonzero cells
        are kept, which is what the checkpoint stores.
        """
        active = self._counts[: len(self.resources), : max(len(self.tags), 1)]
        row_idx, col_idx = np.nonzero(active)
        indptr = np.zeros(len(self.resources) + 1, dtype=np.int64)
        np.cumsum(np.bincount(row_idx, minlength=len(self.resources)), out=indptr[1:])
        return indptr, col_idx.astype(np.int64), active[row_idx, col_idx]

    def state_arrays(self) -> dict[str, np.ndarray]:
        """All per-resource state arrays, trimmed to the active rows."""
        count = len(self.resources)
        indptr, indices, data = self.counts_csr()
        return {
            "counts_indptr": indptr,
            "counts_indices": indices,
            "counts_data": data,
            "total": self._total[:count].copy(),
            "sumsq": self._sumsq[:count].copy(),
            "num_posts": self._num_posts[:count].copy(),
            "window": self._window[:count].copy(),
            "window_sum": self._window_sum[:count].copy(),
            "win_len": self._win_len[:count].copy(),
            "stable_point": self._stable_point[:count].copy(),
        }

    def export_state(self) -> dict:
        """Full bank state as one picklable payload (worker ownership).

        The ``process`` executor's workers own their shards' banks; this
        is how a worker ships its state back for the parent's
        lazily-materialized query mirror (and how a warm-started worker
        is seeded).  The payload round-trips exactly through
        :meth:`import_state` — same arrays, same interner orders, same
        snapshots — so a materialized mirror is trace-identical to the
        worker's bank.
        """
        return {
            "omega": self.omega,
            "tau": self.tau,
            "tags": self.tags.items(),
            "resources": self.resources.items(),
            "arrays": self.state_arrays(),
            "snapshots": {
                row: (snap.stable_point, snap.tag_ids, snap.counts, snap.total)
                for row, snap in self._snapshots.items()
            },
        }

    @classmethod
    def import_state(cls, payload: dict) -> StabilityBank:
        """Rebuild a bank from an :meth:`export_state` payload."""
        snapshots = {
            int(row): StableSnapshot(
                int(stable_point),
                np.asarray(tag_ids),
                np.asarray(counts),
                int(total),
            )
            for row, (stable_point, tag_ids, counts, total)
            in payload["snapshots"].items()
        }
        return cls.from_state(
            omega=payload["omega"],
            tau=payload["tau"],
            tags=list(payload["tags"]),
            resources=list(payload["resources"]),
            arrays=payload["arrays"],
            snapshots=snapshots,
        )

    @classmethod
    def from_state(
        cls,
        *,
        omega: int,
        tau: float | None,
        tags: list[str],
        resources: list[str],
        arrays: dict[str, np.ndarray],
        snapshots: dict[int, StableSnapshot],
    ) -> StabilityBank:
        """Rebuild a bank from checkpointed state (exact resume)."""
        bank = cls(
            omega,
            tau,
            initial_rows=max(1, len(resources)),
            initial_tags=max(1, len(tags)),
        )
        bank.tags = Interner(tags)
        bank.resources = Interner(resources)
        count = len(resources)
        bank._grow(max(count, 1), max(len(tags), 1))
        indptr = arrays["counts_indptr"]
        indices = arrays["counts_indices"]
        data = arrays["counts_data"]
        per_row = np.diff(indptr)
        row_idx = np.repeat(np.arange(count, dtype=np.int64), per_row)
        bank._counts[row_idx, indices] = data
        # rebuild the per-row distinct-tag registry from the CSR rows
        if indices.size:
            bank._n_distinct[:count] = per_row
            capacity = bank._row_tags.shape[1]
            widest = int(per_row.max())
            if widest > capacity:
                while capacity < widest:
                    capacity *= 2
                bank._row_tags = np.zeros(
                    (bank._row_tags.shape[0], capacity), dtype=np.int32
                )
            slot = np.arange(indices.size, dtype=np.int64) - np.repeat(
                indptr[:-1], per_row
            )
            bank._row_tags.reshape(-1)[row_idx * capacity + slot] = indices
        bank._total[:count] = arrays["total"]
        bank._sumsq[:count] = arrays["sumsq"]
        bank._num_posts[:count] = arrays["num_posts"]
        bank._window[:count] = arrays["window"]
        bank._window_sum[:count] = arrays["window_sum"]
        bank._win_len[:count] = arrays["win_len"]
        bank._stable_point[:count] = arrays["stable_point"]
        bank._snapshots = dict(snapshots)
        return bank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StabilityBank(resources={self.n_resources}, tags={self.n_tags}, "
            f"posts={self.total_posts}, omega={self.omega}, "
            f"stable={len(self._snapshots)})"
        )
