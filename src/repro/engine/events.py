"""Tagging events and their columnar batch encoding.

A :class:`TagEvent` is one tagging operation addressed to a resource — the
streaming-world equivalent of appending a :class:`repro.core.posts.Post`
to one resource's sequence.  An interleaved stream of events touching many
resources is the natural wire format of a live tagging system (and of the
paper's del.icio.us dump, which is one giant time-ordered event log).

The vectorized bank does not consume events one by one; it consumes an
:class:`EventBatch` — a CSR-style columnar encoding where every string has
already been interned to a small integer:

* ``resources[e]`` — the interned resource row of event ``e``;
* ``tag_ids[indptr[e]:indptr[e+1]]`` — the event's interned tags
  (deduplicated: Definition 1 models a post as a *set*);
* ``timestamps[e]`` — the posting time (carried for provenance; the model
  only uses arrival order).

Encoding is the only per-event Python work left in the ingest path, so
:func:`encode_events` is written for throughput: interner misses are
resolved in one pre-pass, after which the id lookup runs as a C-level
``map(dict.__getitem__, ...)`` feeding ``np.fromiter``.
"""

from __future__ import annotations

import operator
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from itertools import chain

import numpy as np

from repro.core.errors import DataModelError
from repro.core.posts import Post

__all__ = ["TagEvent", "Interner", "EventBatch", "encode_events", "events_from_posts"]


@dataclass(frozen=True, slots=True)
class TagEvent:
    """One tagging operation in an interleaved multi-resource stream.

    Attributes:
        resource_id: The resource the post targets.
        tags: The post's tags.  Must be nonempty; should not contain
            duplicates (events built from :class:`Post` never do —
            :func:`encode_events` deduplicates defensively regardless).
            Normalisation is the producer's job, as with raw posts.
        timestamp: Posting time (ordering within the stream is what the
            model consumes; the value is kept for provenance).
        tagger: Optional tagger identifier.
    """

    resource_id: str
    tags: tuple[str, ...]
    timestamp: float = 0.0
    tagger: str | None = None

    @classmethod
    def from_post(cls, resource_id: str, post: Post) -> TagEvent:
        """The event corresponding to ``post`` arriving at ``resource_id``."""
        return cls(
            resource_id=resource_id,
            tags=tuple(sorted(post.tags)),
            timestamp=post.timestamp,
            tagger=post.tagger,
        )


class Interner:
    """A string → dense-int dictionary with stable insertion-order ids.

    Ids are assigned ``0, 1, 2, ...`` in first-seen order, so an interner
    can be checkpointed as a plain list and rebuilt exactly.
    """

    __slots__ = ("_index", "_items")

    def __init__(self, items: Iterable[str] = ()) -> None:
        self._items: list[str] = list(items)
        self._index: dict[str, int] = {item: i for i, item in enumerate(self._items)}
        if len(self._index) != len(self._items):
            raise DataModelError("interner seed contains duplicates")

    def intern(self, item: str) -> int:
        """Return the id of ``item``, assigning the next id on first sight."""
        index = self._index.get(item)
        if index is None:
            index = len(self._items)
            self._index[item] = index
            self._items.append(item)
        return index

    def intern_all(self, items: Sequence[str]) -> np.ndarray:
        """Vectorised :meth:`intern` over a flat sequence of strings.

        The bulk lookup runs as a C-level ``map(dict.__getitem__, ...)``;
        only batches containing first-seen strings fall back to a Python
        pass that assigns the new ids (rare once the vocabulary warms up).
        """
        index = self._index
        count = len(items)
        try:
            return np.fromiter(map(index.__getitem__, items), dtype=np.int64, count=count)
        except KeyError:
            for item in items:
                if item not in index:
                    self.intern(item)
            return np.fromiter(map(index.__getitem__, items), dtype=np.int64, count=count)

    def lookup(self, item: str) -> int | None:
        """The id of ``item``, or ``None`` if never interned."""
        return self._index.get(item)

    def value(self, index: int) -> str:
        """The string with id ``index``."""
        return self._items[index]

    def items(self) -> list[str]:
        """All interned strings, in id order (a copy)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._index


@dataclass(frozen=True, slots=True)
class EventBatch:
    """A CSR-encoded batch of events, ready for one vectorized update.

    Attributes:
        resources: ``int64 (E,)`` interned resource row per event.
        indptr: ``int64 (E+1,)`` CSR offsets into :attr:`tag_ids`.
        tag_ids: ``int64 (total,)`` interned, per-event-deduplicated tags.
        timestamps: ``float64 (E,)`` posting times.
    """

    resources: np.ndarray
    indptr: np.ndarray
    tag_ids: np.ndarray
    timestamps: np.ndarray

    @property
    def n_events(self) -> int:
        """Number of events in the batch."""
        return int(self.resources.size)

    @property
    def n_tag_assignments(self) -> int:
        """Total (event, tag) pairs in the batch."""
        return int(self.tag_ids.size)

    def lengths(self) -> np.ndarray:
        """Per-event post sizes ``|p|``."""
        return np.diff(self.indptr)

    def __len__(self) -> int:
        return self.n_events


def encode_events(
    events: Sequence[TagEvent] | Iterable[TagEvent],
    *,
    tags: Interner,
    resources: Interner,
) -> EventBatch:
    """Encode an event sequence into one :class:`EventBatch`.

    Interns every resource id and tag through the given interners (growing
    them in first-seen order), deduplicates tags within each event, and
    lays the result out CSR-style.

    Raises:
        DataModelError: If any event has no tags (Definition 1).
    """
    if not isinstance(events, Sequence):
        events = list(events)
    n = len(events)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return EventBatch(empty, np.zeros(1, dtype=np.int64), empty.copy(), np.empty(0))

    tag_lists = [event.tags for event in events]
    lengths = np.fromiter(map(len, tag_lists), dtype=np.int64, count=n)
    if not lengths.all():
        raise DataModelError("a post must contain at least one tag (Definition 1)")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])

    flat_tags = list(chain.from_iterable(tag_lists))
    tag_ids = tags.intern_all(flat_tags)
    resource_rows = resources.intern_all([event.resource_id for event in events])
    timestamps = np.fromiter(
        map(operator.attrgetter("timestamp"), events), dtype=np.float64, count=n
    )

    # Defensive within-event deduplication (Definition 1 models a post as
    # a set).  Detection is one C-level sort of composite keys; the
    # rebuild only runs when a duplicate actually exists.
    keys = np.repeat(np.arange(n, dtype=np.int64), lengths) * (len(tags) + 1) + tag_ids
    sorted_keys = np.sort(keys)
    if sorted_keys.size and np.any(sorted_keys[1:] == sorted_keys[:-1]):
        unique_keys = np.unique(keys)
        vocabulary = len(tags) + 1
        event_of = unique_keys // vocabulary
        tag_ids = unique_keys % vocabulary
        lengths = np.bincount(event_of, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
    return EventBatch(resource_rows, indptr, tag_ids, timestamps)


def events_from_posts(
    resource_id: str, posts: Iterable[Post]
) -> Iterator[TagEvent]:
    """Turn one resource's post sequence into its event stream."""
    for post in posts:
        yield TagEvent.from_post(resource_id, post)
