"""repro.engine — vectorized, sharded streaming ingestion of tagging events.

The scalar path (:class:`repro.core.stability.StabilityTracker`) maintains
one resource's MA score in ``O(|post|)`` per post, but pays full Python
interpreter overhead for every post of every resource.  This subsystem is
the batch/columnar counterpart built for the ROADMAP's scale goals:

* :mod:`repro.engine.events` — the :class:`TagEvent` record and CSR-style
  batch encoding of interleaved multi-resource event streams;
* :mod:`repro.engine.columnar` — :class:`StabilityBank`, which holds the
  per-resource tag counts and MA windows of *thousands* of resources in
  NumPy arrays and applies one batched update per
  :class:`~repro.engine.events.EventBatch` (the same Appendix C
  recurrence as the scalar tracker, vectorized across resources);
* :mod:`repro.engine.shard` — a vectorized hash router (shard ids cached
  at intern time) and an N-shard bank whose shards share no state;
* :mod:`repro.engine.executor` — the :class:`ShardExecutor` seam that
  runs the independent per-shard kernels (inline, or overlapped on a
  pooled thread executor — the kernels are NumPy-dominated and release
  the GIL);
* :mod:`repro.engine.checkpoint` — npz/JSONL snapshots with deterministic
  resume;
* :mod:`repro.engine.stream` — :class:`IngestEngine`, the batching driver
  with throughput stats and stable-point callbacks.

Equivalence with the scalar tracker (MA scores, stable points and stable
rfds to within float noise) is enforced by the property tests in
``tests/properties/test_engine_properties.py``.
"""

from repro.engine.checkpoint import load_checkpoint, save_checkpoint
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import EventBatch, Interner, TagEvent, encode_events
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.shard import ShardedStabilityBank, shard_of
from repro.engine.stream import EngineStats, IngestEngine

__all__ = [
    "EXECUTOR_BACKENDS",
    "EngineStats",
    "EventBatch",
    "IngestEngine",
    "IngestReport",
    "Interner",
    "SerialExecutor",
    "ShardExecutor",
    "ShardedStabilityBank",
    "StabilityBank",
    "TagEvent",
    "ThreadExecutor",
    "encode_events",
    "load_checkpoint",
    "make_executor",
    "save_checkpoint",
    "shard_of",
]
