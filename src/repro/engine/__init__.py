"""repro.engine — vectorized, sharded streaming ingestion of tagging events.

The scalar path (:class:`repro.core.stability.StabilityTracker`) maintains
one resource's MA score in ``O(|post|)`` per post, but pays full Python
interpreter overhead for every post of every resource.  This subsystem is
the batch/columnar counterpart built for the ROADMAP's scale goals:

* :mod:`repro.engine.events` — the :class:`TagEvent` record and CSR-style
  batch encoding of interleaved multi-resource event streams;
* :mod:`repro.engine.columnar` — :class:`StabilityBank`, which holds the
  per-resource tag counts and MA windows of *thousands* of resources in
  NumPy arrays and applies one batched update per
  :class:`~repro.engine.events.EventBatch` (the same Appendix C
  recurrence as the scalar tracker, vectorized across resources);
* :mod:`repro.engine.shard` — a vectorized hash router (shard ids cached
  at intern time) and an N-shard bank whose shards share no state;
* :mod:`repro.engine.executor` — the :class:`ShardExecutor` seam that
  runs the independent per-shard kernels (inline, overlapped on a pooled
  thread executor, or shipped to state-owning worker processes) plus the
  registry the backends self-register on;
* :mod:`repro.engine.procpool` — the ``process`` backend: long-lived
  workers owning their shards' banks, fed CSR slices through
  shared-memory ring buffers (no NumPy pickling on the hot path);
* :mod:`repro.engine.checkpoint` — npz/mmap + JSONL snapshots with
  deterministic resume;
* :mod:`repro.engine.stream` — :class:`IngestEngine`, the batching driver
  with throughput stats and stable-point callbacks.

Equivalence with the scalar tracker (MA scores, stable points and stable
rfds to within float noise) is enforced by the property tests in
``tests/properties/test_engine_properties.py``.
"""

from repro.engine.checkpoint import (
    CHECKPOINT_LAYOUTS,
    CheckpointCorrupted,
    load_checkpoint,
    load_shard_bank,
    save_checkpoint,
    write_shard_state,
)
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import EventBatch, Interner, TagEvent, encode_events
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ShardWorkerCrashed,
    ThreadExecutor,
    make_executor,
    register_executor,
)
from repro.engine.shard import ShardedStabilityBank, shard_of
from repro.engine.stream import EngineStats, IngestEngine

__all__ = [
    "CHECKPOINT_LAYOUTS",
    "CheckpointCorrupted",
    "EXECUTOR_BACKENDS",
    "EXECUTORS",
    "EngineStats",
    "EventBatch",
    "IngestEngine",
    "IngestReport",
    "Interner",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ShardWorkerCrashed",
    "ShardedStabilityBank",
    "StabilityBank",
    "TagEvent",
    "ThreadExecutor",
    "encode_events",
    "load_checkpoint",
    "load_shard_bank",
    "make_executor",
    "register_executor",
    "save_checkpoint",
    "shard_of",
    "write_shard_state",
]
