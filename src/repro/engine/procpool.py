"""The ``process`` shard executor: workers that *own* their shards' banks.

Threads overlap the GIL-releasing NumPy kernels but serialize everything
else; true multi-core ingest needs processes, and processes make state
placement the design question.  The answer here is worker ownership:

* **Long-lived workers.**  :class:`ProcessExecutor` spawns its workers
  once, at :meth:`~ProcessExecutor.bind` time, and each worker builds the
  :class:`~repro.engine.columnar.StabilityBank` for every shard it owns
  (``shard % n_workers``).  After that warm-up, shard state never
  crosses the pipe again — batches go out, compact stable-crossing
  deltas come back.

* **Shared-memory CSR slices.**  Each worker pair shares two file-backed
  ``mmap`` ring buffers (``/dev/shm`` when available).  The parent
  writes a flush's pre-encoded per-shard CSR arrays (resources, indptr,
  tag_ids, timestamps) into the request buffer as **one contiguous
  block** and sends only ``(offset, length)`` descriptors over the pipe;
  the worker writes per-event similarities into the response buffer the
  same way.  No NumPy array is ever pickled on the steady-state ingest
  path — the serialization-spy test pins this.

* **Vocabulary deltas.**  Batches are encoded against the parent's
  per-shard interners (the "shells"), so workers must intern the same
  strings in the same order.  Every command carries the interner suffix
  the worker hasn't seen; interning is idempotent and order-preserving,
  so the counters can safely start at zero (a seeded worker just
  re-interns its known vocabulary once).

* **Synchronous per-worker protocol.**  The parent collects every reply
  of a flush before placing the next one, so a flush's contiguous block
  is always fully consumed before the allocator may wrap to offset 0 —
  the classic ring-buffer overlap bug cannot occur.

* **Lazily-materialized mirrors.**  The parent's shells stay
  interner-authoritative but numerically stale; the sharded bank marks
  ingested shards dirty and rebuilds their mirrors from a worker
  ``export`` (the only path that pickles arrays — a query-time,
  not steady-state, cost).

Determinism: commands are sent and replies collected in submission
order per worker, and the sharded bank reassembles reports in shard
order exactly as the serial path does — pinned campaign traces are
byte-identical at any worker × shard combination.

**Supervision.**  Worker death is an event, not an error.  Workers
acknowledge every command with a heartbeat frame before executing it;
the parent watches the pipe, process liveness, a heartbeat timeout, and
a per-flush deadline while collecting replies.  When a worker dies or
stalls, the parent kills and respawns it, re-seeds its shards from each
shard's *recovery base* — the last full checkpoint the executor was
told about (:meth:`~ProcessExecutor.note_checkpoint`) or the state
shipped at bind time — replays the bounded in-executor **delta journal**
of post-base CSR batches, and re-sends the in-flight flush.  Journal
entries are appended only after a flush's replies are fully collected
and the resend targets a worker rebuilt to its pre-flush state, so every
batch is applied exactly once and recovered runs are byte-identical to
undisturbed ones (the kill-anywhere suite pins this).  After
``max_respawns`` failed recoveries the executor *degrades* instead of
dying: it rebuilds every shard bank in the parent from base + journal,
hands them back to the sharded bank, and serves further work through an
internal thread (or, failing that, serial) executor — warned and
counted via the ``executor.respawn`` / ``executor.degraded`` telemetry
counters.  Setting :attr:`~ProcessExecutor.supervise` to ``False``
restores the old fail-fast contract
(:class:`~repro.engine.executor.ShardWorkerCrashed`).

Deterministic chaos (kills, stalls) is injected through
:mod:`repro.faults` at the ``procpool.flush`` (parent, once per
per-worker flush) and ``procpool.worker`` (child, once per command)
sites.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import signal
import tempfile
import time
import warnings
import weakref
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro import faults, obs
from repro.core.errors import DataModelError
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import EventBatch
from repro.engine.executor import (
    SerialExecutor,
    ShardExecutor,
    ShardWorkerCrashed,
    ThreadExecutor,
    default_workers,
    register_executor,
)

__all__ = ["ProcessExecutor"]

_INITIAL_CAPACITY = 1 << 20  # 1 MiB per direction; grows by doubling
_ITEM = 8  # every descriptor-addressed array is int64/float64

# shutdown escalation grace periods (monkeypatchable in tests)
_STOP_GRACE = 2.0  # after a cooperative "stop" command
_TERM_GRACE = 1.0  # after SIGTERM
_KILL_GRACE = 5.0  # after SIGKILL (only the kernel can refuse now)


def _shm_dir() -> str:
    """Prefer a RAM-backed tmpfs for the ring buffers."""
    candidate = "/dev/shm"
    if os.path.isdir(candidate) and os.access(candidate, os.W_OK):
        return candidate
    return tempfile.gettempdir()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps warm-up free (seed state is inherited, not pickled);
    # spawn is the portable fallback
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


class _MappedBuffer:
    """A growable file-backed byte buffer shared by parent and worker.

    Only the parent ever grows the file (``ensure``); the worker remaps
    lazily (``refresh``) to the capacity carried in each command, so the
    two sides never race on ``truncate``.  All views taken on the map
    are transient — numpy views into an mmap block ``close`` until they
    are garbage collected, so readers copy out and writers drop their
    view before returning.
    """

    def __init__(self, path: str, capacity: int = 0, *, create: bool = False) -> None:
        self.path = path
        if create:
            with open(path, "wb") as handle:
                handle.truncate(max(capacity, mmap.PAGESIZE))
        self._file = open(path, "r+b")
        self._map: mmap.mmap | None = mmap.mmap(self._file.fileno(), 0)
        self.capacity = self._map.size()

    def ensure(self, capacity: int) -> int:
        """Grow (doubling) until ``capacity`` fits; returns the new size."""
        if capacity > self.capacity:
            new_capacity = self.capacity
            while new_capacity < capacity:
                new_capacity *= 2
            self._map.close()
            self._file.truncate(new_capacity)
            self._map = mmap.mmap(self._file.fileno(), 0)
            self.capacity = self._map.size()
        return self.capacity

    def refresh(self, capacity: int) -> None:
        """Reader-side remap after the peer grew the file."""
        if capacity > self.capacity:
            self._map.close()
            self._map = mmap.mmap(self._file.fileno(), 0)
            self.capacity = self._map.size()

    def write_array(self, offset: int, array: np.ndarray) -> int:
        """Copy ``array``'s bytes in at ``offset``; returns bytes written."""
        data = np.ascontiguousarray(array)
        nbytes = data.nbytes
        if nbytes:
            view = np.frombuffer(self._map, dtype=np.uint8, count=nbytes, offset=offset)
            view[:] = data.view(np.uint8).reshape(-1)
            del view  # release the buffer export before any remap
        return nbytes

    def read_array(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """Copy ``count`` items out from ``offset`` (owning array)."""
        return np.frombuffer(self._map, dtype=dtype, count=count, offset=offset).copy()

    def close(self, *, unlink: bool = False) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # pragma: no cover - leaked view
                pass
            self._map = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def _apply_vocab(
    bank: StabilityBank, new_resources: Sequence[str], new_tags: Sequence[str]
) -> None:
    """Replay the parent's interner suffix (idempotent, order-preserving)."""
    for tag in new_tags:
        bank.tags.intern(tag)
    bank.ensure(new_resources)  # interns resources + grows rows and columns


def _bank_from_base(
    omega: int, tau: float | None, shard: int, base: tuple | None
) -> StabilityBank:
    """Build one shard bank from its recovery base descriptor."""
    if base is None:
        return StabilityBank(omega, tau)
    kind, payload = base
    if kind == "state":
        return StabilityBank.import_state(payload)
    if kind == "checkpoint":
        from repro.engine.checkpoint import load_shard_bank

        return load_shard_bank(Path(payload), shard)
    raise DataModelError(f"unknown shard seed kind {kind!r}")


def _build_banks(
    omega: int, tau: float | None, shard_ids: Sequence[int], seed: tuple | None
) -> dict[int, StabilityBank]:
    if seed is None:
        return {shard: StabilityBank(omega, tau) for shard in shard_ids}
    kind, payload = seed
    if kind == "state":
        return {shard: StabilityBank.import_state(payload[shard]) for shard in shard_ids}
    if kind == "checkpoint":
        from repro.engine.checkpoint import load_shard_bank

        return {shard: load_shard_bank(Path(payload), shard) for shard in shard_ids}
    if kind == "mixed":
        # respawn seeding: each shard carries its own recovery base
        return {
            shard: _bank_from_base(omega, tau, shard, payload[shard])
            for shard in shard_ids
        }
    raise DataModelError(f"unknown worker seed kind {kind!r}")


def _fire_worker_fault(spec) -> None:
    """Execute a worker-side injected fault (chaos testing only)."""
    if spec.kind == "kill_worker":
        os._exit(3)
    if spec.kind == "stall_worker":
        if spec.param.get("ignore_term", True):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(float(spec.param.get("seconds", 30.0)))


def _handle_ingest(
    banks: dict[int, StabilityBank],
    req: _MappedBuffer,
    resp: _MappedBuffer,
    command: tuple,
) -> tuple[int, list[str]]:
    (
        _,
        shard,
        req_capacity,
        resp_capacity,
        base,
        n_events,
        n_tags,
        resp_offset,
        new_resources,
        new_tags,
    ) = command
    req.refresh(req_capacity)
    resp.refresh(resp_capacity)
    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    offset = base
    resources = req.read_array(offset, np.int64, n_events)
    offset += n_events * _ITEM
    indptr = req.read_array(offset, np.int64, n_events + 1)
    offset += (n_events + 1) * _ITEM
    tag_ids = req.read_array(offset, np.int64, n_tags)
    offset += n_tags * _ITEM
    timestamps = req.read_array(offset, np.float64, n_events)
    report = bank.ingest(
        EventBatch(
            resources=resources,
            indptr=indptr,
            tag_ids=tag_ids,
            timestamps=timestamps,
        )
    )
    resp.write_array(resp_offset, np.ascontiguousarray(report.similarities, np.float64))
    return report.n_tag_assignments, list(report.newly_stable)


def _handle_export(banks: dict[int, StabilityBank], command: tuple) -> dict:
    _, shard, new_resources, new_tags = command
    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    return bank.export_state()


def _handle_checkpoint(banks: dict[int, StabilityBank], command: tuple) -> list[dict]:
    _, shard, directory, layout, new_resources, new_tags = command
    from repro.engine.checkpoint import write_shard_state

    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    return write_shard_state(bank, Path(directory), shard, layout=layout)


def _worker_main(
    conn,
    req_path: str,
    resp_path: str,
    omega: int,
    tau: float | None,
    shard_ids: Sequence[int],
    seed: tuple | None,
) -> None:
    req = _MappedBuffer(req_path)
    resp = _MappedBuffer(resp_path)
    banks = _build_banks(omega, tau, shard_ids, seed)
    del seed  # free the warm-up payload; the banks own the state now
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            op = command[0]
            if op == "stop":
                break
            # chaos first (a stalled worker never acknowledges), then the
            # heartbeat: the parent knows the command was picked up and
            # restarts its silence clock before the kernel runs
            spec = faults.check("procpool.worker")
            if spec is not None:
                _fire_worker_fault(spec)
            try:
                conn.send(("hb",))
            except (BrokenPipeError, OSError):
                break
            try:
                if op == "ingest":
                    result: Any = _handle_ingest(banks, req, resp, command)
                elif op == "export":
                    result = _handle_export(banks, command)
                elif op == "checkpoint":
                    result = _handle_checkpoint(banks, command)
                else:
                    raise DataModelError(f"unknown worker op {op!r}")
            except BaseException as exc:
                import traceback

                conn.send(("err", type(exc).__name__, str(exc), traceback.format_exc()))
            else:
                conn.send(("ok", result))
    finally:
        req.close()
        resp.close()
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class _WorkerLost(Exception):
    """Internal: a worker died or went silent mid-protocol."""

    def __init__(
        self, worker_index: int, cause: BaseException | None = None, *, stalled: bool = False
    ) -> None:
        super().__init__(f"worker {worker_index} {'stalled' if stalled else 'lost'}")
        self.worker_index = worker_index
        self.cause = cause
        self.stalled = stalled


class _WorkerHandle:
    """One worker process plus its pipe and shared ring buffers."""

    def __init__(self, proc, conn, req: _MappedBuffer, resp: _MappedBuffer) -> None:
        self.proc = proc
        self.conn = conn
        self.req = req
        self.resp = resp
        self.req_cursor = 0
        self.resp_cursor = 0

    @classmethod
    def spawn(
        cls,
        ctx,
        directory: str,
        index: int,
        omega: int,
        tau: float | None,
        shard_ids: Sequence[int],
        seed: tuple | None,
    ) -> _WorkerHandle:
        def buffer(tag: str) -> _MappedBuffer:
            fd, path = tempfile.mkstemp(prefix=f"repro-shard-{tag}-", dir=directory)
            os.close(fd)
            return _MappedBuffer(path, _INITIAL_CAPACITY, create=True)

        req = buffer("req")
        resp = buffer("resp")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, req.path, resp.path, omega, tau, list(shard_ids), seed),
            daemon=True,
            name=f"repro-shard-worker-{index}",
        )
        proc.start()
        child_conn.close()
        return cls(proc, parent_conn, req, resp)

    def place(self, which: str, total: int) -> int:
        """Reserve one contiguous ``total``-byte block; returns its offset.

        Called once per flush per direction, *after* the previous flush's
        replies were collected — so wrapping to 0 can never overwrite
        unconsumed data, and a flush's arrays are never split.
        """
        buffer = self.req if which == "req" else self.resp
        cursor = self.req_cursor if which == "req" else self.resp_cursor
        if cursor + total > buffer.capacity:
            cursor = 0
            buffer.ensure(total)
        if which == "req":
            self.req_cursor = cursor + total
        else:
            self.resp_cursor = cursor + total
        return cursor


def _reap_process(proc) -> None:
    """Escalate join → SIGTERM → SIGKILL until the process is reaped.

    A wedged worker (stuck in a non-Python loop, or with SIGTERM masked)
    must never outlive the pool: after the cooperative grace the parent
    terminates, then kills.  SIGKILL cannot be caught, so the final join
    only waits on the kernel.
    """
    proc.join(timeout=_STOP_GRACE)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=_TERM_GRACE)
    if proc.is_alive():  # pragma: no branch - racy either way
        proc.kill()
        proc.join(timeout=_KILL_GRACE)
    else:
        # already exited: join again without timeout to reap the zombie
        proc.join()


def _shutdown_pool(procs, conns, buffers) -> None:
    """Stop workers, reap them, release the shared buffers (idempotent)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (ValueError, OSError):
            pass
    for proc in procs:
        _reap_process(proc)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for buffer in buffers:
        buffer.close(unlink=True)


@register_executor("process")
class ProcessExecutor(ShardExecutor):
    """Long-lived worker processes owning their shards' banks.

    Args:
        workers: Pool size; ``0`` picks :func:`~repro.engine.executor.\
default_workers`.  The pool is capped at the bound bank's shard count —
            extra workers would own nothing.

    Supervision knobs (attributes, settable after construction):

    * ``supervise`` — respawn dead/stalled workers (default ``True``);
      ``False`` restores fail-fast :class:`ShardWorkerCrashed`.
    * ``max_respawns`` — respawn budget before degrading to an in-parent
      thread (then serial) executor.
    * ``heartbeat_timeout`` — seconds of worker silence (no heartbeat,
      no reply) before the worker is declared stalled.
    * ``flush_timeout`` — per-flush deadline in seconds.
    * ``max_journal_bytes`` — per-shard delta-journal bound; exceeding
      it compacts the journal into a fresh state snapshot.
    """

    def __init__(self, workers: int = 0, *, supervise: bool = True) -> None:
        if workers < 0:
            raise DataModelError(f"workers must be >= 0, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        self.supervise = supervise
        self.max_respawns = 3
        self.heartbeat_timeout = 60.0
        self.flush_timeout = 600.0
        self.max_journal_bytes = 64 << 20
        self.respawns = 0
        self._handles: list[_WorkerHandle] | None = None
        self._shard_worker: list[int] = []
        # per shard: [resources sent, tags sent] interner watermarks
        self._sent_vocab: list[list[int]] = []
        # per shard: recovery base + post-base delta journal of batches
        self._base: dict[int, tuple | None] = {}
        self._journal: dict[int, list[EventBatch]] = {}
        self._journal_bytes: dict[int, int] = {}
        self._degraded: ShardExecutor | None = None
        self._ctx = None
        self._directory = ""
        self._omega = 0
        self._tau: float | None = None
        self._finalizer = None
        # mutable registries shared with the GC finalizer: respawns swap
        # entries in place so the finalizer always sees the live pool
        self._fin_procs: list = []
        self._fin_conns: list = []
        self._fin_buffers: list = []
        self._obs = obs.get()

    # -- lifecycle ------------------------------------------------------

    @property
    def owns_state(self) -> bool:  # type: ignore[override]
        """Workers own shard state — until the executor degrades."""
        return self._degraded is None

    @property
    def degraded(self) -> str | None:
        """The fallback backend kind once degraded (``None`` while healthy)."""
        return self._degraded.kind if self._degraded is not None else None

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` spawned the worker pool."""
        return self._handles is not None

    def worker_pids(self) -> list[int]:
        """The live worker process ids (empty before :meth:`bind`)."""
        if self._handles is None:
            return []
        return [handle.proc.pid for handle in self._handles]

    @staticmethod
    def _seed_for(bank) -> tuple | None:
        source = getattr(bank, "resume_source", None)
        if source is not None:
            return ("checkpoint", str(source))
        # read the shard shells directly: bank.total_posts would trigger
        # _materialize(), which clears the caller's freshly-marked stale
        # set while the pool is still unbound
        if any(shard.total_posts for shard in bank.shards):
            # the shells hold live numeric state (a bank that ingested
            # serially before the pool attached): ship it once, at warm-up
            return (
                "state",
                {
                    shard: bank.shards[shard].export_state()
                    for shard in range(bank.n_shards)
                },
            )
        return None

    def bind(self, bank) -> None:
        """Spawn the pool for ``bank``'s shards (idempotent once bound).

        Workers are seeded from the bank's current state: a fresh bank
        costs nothing, a checkpoint-loaded bank re-seeds each worker from
        the checkpoint's (memory-mapped) files, and a bank with live
        in-parent state ships it across once.  The same per-shard seed
        becomes each shard's *recovery base* for supervision.
        """
        if self._degraded is not None:
            return
        if self._handles is not None:
            if len(self._shard_worker) != bank.n_shards:
                raise DataModelError(
                    f"process executor is bound to {len(self._shard_worker)} shards; "
                    f"cannot rebind to {bank.n_shards}"
                )
            return
        n_shards = bank.n_shards
        n_workers = max(1, min(self.workers, n_shards))
        self.workers = n_workers
        self._shard_worker = [shard % n_workers for shard in range(n_shards)]
        self._sent_vocab = [[0, 0] for _ in range(n_shards)]
        seed = self._seed_for(bank)
        for shard in range(n_shards):
            if seed is None:
                self._base[shard] = None
            elif seed[0] == "checkpoint":
                self._base[shard] = ("checkpoint", seed[1])
            else:
                self._base[shard] = ("state", seed[1][shard])
        self._journal = {shard: [] for shard in range(n_shards)}
        self._journal_bytes = {shard: 0 for shard in range(n_shards)}
        self._ctx = _pool_context()
        self._directory = _shm_dir()
        self._omega = bank.omega
        self._tau = bank.tau
        handles: list[_WorkerHandle] = []
        try:
            for index in range(n_workers):
                shard_ids = [s for s in range(n_shards) if s % n_workers == index]
                worker_seed = seed
                if seed is not None and seed[0] == "state":
                    worker_seed = (
                        "state", {shard: seed[1][shard] for shard in shard_ids}
                    )
                handles.append(
                    _WorkerHandle.spawn(
                        self._ctx, self._directory, index, bank.omega, bank.tau,
                        shard_ids, worker_seed,
                    )
                )
        except BaseException:
            _shutdown_pool(
                [h.proc for h in handles],
                [h.conn for h in handles],
                [h.req for h in handles] + [h.resp for h in handles],
            )
            raise
        self._handles = handles
        self._fin_procs = [h.proc for h in handles]
        self._fin_conns = [h.conn for h in handles]
        self._fin_buffers = []
        for h in handles:
            self._fin_buffers.extend((h.req, h.resp))
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._fin_procs, self._fin_conns, self._fin_buffers
        )
        if self._obs.enabled:
            self._obs.count("engine.procpool.workers", n_workers)

    def _teardown_pool(self) -> None:
        handles, self._handles = self._handles, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if handles:
            _shutdown_pool(
                [h.proc for h in handles],
                [h.conn for h in handles],
                [h.req for h in handles] + [h.resp for h in handles],
            )

    def close(self) -> None:
        self._teardown_pool()
        self._shard_worker = []
        self._base = {}
        self._journal = {}
        self._journal_bytes = {}
        if self._degraded is not None:
            self._degraded.close()
            self._degraded = None

    # -- supervision ----------------------------------------------------

    def note_checkpoint(self, directory: str | Path) -> None:
        """Adopt a fully-written checkpoint as every shard's recovery base.

        Called by :func:`repro.engine.checkpoint.save_checkpoint` *after*
        the manifest, all shard arrays, and the stable log are on disk —
        a torn checkpoint must never become a recovery base.  The delta
        journals restart empty from here.
        """
        if self._handles is None:
            return
        base = ("checkpoint", str(directory))
        for shard in range(len(self._shard_worker)):
            self._base[shard] = base
            self._journal[shard] = []
            self._journal_bytes[shard] = 0

    @staticmethod
    def _batch_nbytes(batch: EventBatch) -> int:
        return (
            batch.resources.nbytes
            + batch.indptr.nbytes
            + batch.tag_ids.nbytes
            + batch.timestamps.nbytes
        )

    def _journal_entries(self, entries: Sequence[tuple[int, int, EventBatch]]) -> None:
        for _, shard, batch in entries:
            self._journal.setdefault(shard, []).append(batch)
            self._journal_bytes[shard] = (
                self._journal_bytes.get(shard, 0) + self._batch_nbytes(batch)
            )

    def _compact_shard(self, bank, shard: int) -> None:
        """Fold an oversized delta journal into a fresh state snapshot."""
        worker_index = self._shard_worker[shard]
        handle = self._handles[worker_index]
        deadline = time.monotonic() + self.flush_timeout
        try:
            self._raw_send(handle, worker_index, ("export", shard, [], []))
            payload = self._result(self._raw_recv(handle, worker_index, deadline))
        except _WorkerLost:
            # the worker died right after its flush; keep the journal —
            # the next interaction recovers and replays it
            return
        self._base[shard] = ("state", payload)
        self._journal[shard] = []
        self._journal_bytes[shard] = 0
        if self._obs.enabled:
            self._obs.count("executor.journal_compactions")

    def _reap_handle(self, handle: _WorkerHandle) -> None:
        """Kill one worker (dead or stalled) and release its resources."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        proc = handle.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=_TERM_GRACE)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=_KILL_GRACE)
        else:
            proc.join()
        handle.req.close(unlink=True)
        handle.resp.close(unlink=True)

    def _recover_worker(self, bank, lost: _WorkerLost) -> _WorkerHandle | None:
        """Respawn a lost worker re-seeded from base + journal.

        Returns the fresh handle, or ``None`` when the respawn budget is
        exhausted (the caller degrades).  Raises ``ShardWorkerCrashed``
        when supervision is off.
        """
        worker_index = lost.worker_index
        handle = self._handles[worker_index]
        if not self.supervise:
            self._fail(handle, lost.cause)
        self.respawns += 1
        if self._obs.enabled:
            self._obs.count("executor.respawn")
        if self.respawns > self.max_respawns:
            return None
        warnings.warn(
            f"shard worker {worker_index} (pid {handle.proc.pid}) "
            f"{'stalled' if lost.stalled else 'died'} mid-operation; respawning "
            f"(attempt {self.respawns}/{self.max_respawns})",
            RuntimeWarning,
            stacklevel=4,
        )
        self._reap_handle(handle)
        shard_ids = [
            s for s, w in enumerate(self._shard_worker) if w == worker_index
        ]
        seed = ("mixed", {shard: self._base.get(shard) for shard in shard_ids})
        try:
            fresh = _WorkerHandle.spawn(
                self._ctx, self._directory, worker_index,
                self._omega, self._tau, shard_ids, seed,
            )
        except OSError:  # pragma: no cover - fork failure
            return None
        self._handles[worker_index] = fresh
        self._fin_procs[worker_index] = fresh.proc
        self._fin_conns[worker_index] = fresh.conn
        self._fin_buffers[2 * worker_index] = fresh.req
        self._fin_buffers[2 * worker_index + 1] = fresh.resp
        # the fresh worker has seen no vocabulary: restart the watermarks
        # so the first replayed (or re-sent) command carries the full
        # shell interner suffix — idempotent, order-preserving
        for shard in shard_ids:
            self._sent_vocab[shard] = [0, 0]
        try:
            for shard in shard_ids:
                for batch in self._journal.get(shard, []):
                    self._replay_batch(fresh, worker_index, bank, shard, batch)
        except _WorkerLost:
            # the replacement died during replay: spend another attempt
            # (or degrade) rather than looping here
            return None
        return fresh

    def _replay_batch(
        self, handle: _WorkerHandle, worker_index: int, bank, shard: int,
        batch: EventBatch,
    ) -> None:
        """Re-ingest one journaled batch into a respawned worker."""
        req_total = (3 * batch.n_events + 1 + batch.tag_ids.size) * _ITEM
        resp_total = batch.n_events * _ITEM
        offset = handle.place("req", req_total)
        resp_offset = handle.place("resp", resp_total)
        base = offset
        offset += handle.req.write_array(offset, batch.resources)
        offset += handle.req.write_array(offset, batch.indptr)
        offset += handle.req.write_array(offset, batch.tag_ids)
        offset += handle.req.write_array(offset, batch.timestamps)
        new_resources, new_tags = self._vocab_delta(bank, shard)
        command = (
            "ingest", shard, handle.req.capacity, handle.resp.capacity, base,
            batch.n_events, int(batch.tag_ids.size), resp_offset,
            new_resources, new_tags,
        )
        deadline = time.monotonic() + self.flush_timeout
        self._raw_send(handle, worker_index, command)
        self._result(self._raw_recv(handle, worker_index, deadline))

    def _rebuild_shard(self, bank, shard: int) -> StabilityBank:
        """Parent-side shard reconstruction: base + full vocab + journal."""
        rebuilt = _bank_from_base(self._omega, self._tau, shard, self._base.get(shard))
        shell = bank.shards[shard]
        _apply_vocab(rebuilt, shell.resources.items(), shell.tags.items())
        for batch in self._journal.get(shard, []):
            rebuilt.ingest(batch)
        return rebuilt

    def _degrade(self, bank) -> None:
        """Respawn budget exhausted: fall back process → thread → serial.

        Rebuilds every shard bank in the parent (recovery base + delta
        journal + the authoritative shell vocabulary), hands them to the
        sharded bank, and routes future ``run()`` calls through an
        internal thread pool (serial if threads are unavailable).  The
        executor stops owning state, so the sharded bank's normal
        non-owning paths take over — traces stay byte-identical.
        """
        rebuilt = {
            shard: self._rebuild_shard(bank, shard)
            for shard in range(len(self._shard_worker))
        }
        self._teardown_pool()
        self._journal = {}
        self._journal_bytes = {}
        self._base = {}
        bank.adopt_shards(rebuilt)
        try:
            inner: ShardExecutor = ThreadExecutor(self.workers)
            inner.run([lambda: None])  # probe: can this host start threads?
        except Exception:  # pragma: no cover - thread-less host
            inner = SerialExecutor()
        self._degraded = inner
        warnings.warn(
            f"process shard pool exceeded its respawn budget "
            f"({self.max_respawns}); degraded to the {inner.kind!r} executor "
            "with state rebuilt in-parent",
            RuntimeWarning,
            stacklevel=5,
        )
        if self._obs.enabled:
            self._obs.count("executor.degraded")
            self._obs.event(
                "executor.degraded", backend=inner.kind, respawns=self.respawns
            )

    # -- wire helpers ---------------------------------------------------

    def _fail(self, handle: _WorkerHandle, cause: BaseException | None = None):
        pid = handle.proc.pid
        self.close()
        raise ShardWorkerCrashed(
            f"shard worker (pid {pid}) died mid-operation; its shards' state "
            "is lost — rebuild the bank from a checkpoint"
        ) from cause

    def _raw_send(self, handle: _WorkerHandle, worker_index: int, message: tuple) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerLost(worker_index, exc) from exc

    def _raw_recv(self, handle: _WorkerHandle, worker_index: int, deadline: float) -> tuple:
        """Wait for a reply, filtering heartbeats and watching liveness.

        Raises :class:`_WorkerLost` when the worker exits, goes silent
        past ``heartbeat_timeout``, or the flush deadline passes.
        """
        last_signal = time.monotonic()
        while True:
            try:
                if handle.conn.poll(0.05):
                    reply = handle.conn.recv()
                    if reply[0] == "hb":
                        last_signal = time.monotonic()
                        continue
                    return reply
            except (EOFError, OSError) as exc:
                raise _WorkerLost(worker_index, exc) from exc
            if not handle.proc.is_alive():
                # drain: the worker may have replied just before exiting
                try:
                    while handle.conn.poll(0):
                        reply = handle.conn.recv()
                        if reply[0] != "hb":
                            return reply
                except (EOFError, OSError):
                    pass
                raise _WorkerLost(worker_index)
            now = time.monotonic()
            if now - last_signal > self.heartbeat_timeout or now > deadline:
                raise _WorkerLost(worker_index, stalled=True)

    def _result(self, reply: tuple):
        if reply[0] == "ok":
            return reply[1]
        _, name, message, trace = reply
        raise DataModelError(
            f"shard worker raised {name}: {message}\n--- worker traceback ---\n{trace}"
        )

    def _vocab_delta(self, bank, shard: int) -> tuple[list[str], list[str]]:
        shell = bank.shards[shard]
        sent = self._sent_vocab[shard]
        resources = shell.resources.items()[sent[0]:]
        tags = shell.tags.items()[sent[1]:]
        sent[0] += len(resources)
        sent[1] += len(tags)
        return resources, tags

    # -- shard-affine operations ---------------------------------------

    def _flush_worker(
        self, bank, worker_index: int, entries: Sequence[tuple[int, int, EventBatch]]
    ) -> list[tuple[int, IngestReport]]:
        """Send one worker's slice of a flush and collect its replies.

        Self-contained so a recovery can re-run it exactly-once: the
        respawned worker is rebuilt to its pre-flush state, and the
        retry re-places blocks on the fresh ring buffers.
        """
        handle = self._handles[worker_index]
        req_total = sum(
            (3 * batch.n_events + 1 + batch.tag_ids.size) * _ITEM
            for _, _, batch in entries
        )
        resp_total = sum(batch.n_events * _ITEM for _, _, batch in entries)
        offset = handle.place("req", req_total)
        resp_offset = handle.place("resp", resp_total)
        commands: list[tuple] = []
        slots: list[tuple[int, int, int]] = []
        for position, shard, batch in entries:
            base = offset
            offset += handle.req.write_array(offset, batch.resources)
            offset += handle.req.write_array(offset, batch.indptr)
            offset += handle.req.write_array(offset, batch.tag_ids)
            offset += handle.req.write_array(offset, batch.timestamps)
            new_resources, new_tags = self._vocab_delta(bank, shard)
            commands.append(
                (
                    "ingest",
                    shard,
                    handle.req.capacity,
                    handle.resp.capacity,
                    base,
                    batch.n_events,
                    int(batch.tag_ids.size),
                    resp_offset,
                    new_resources,
                    new_tags,
                )
            )
            slots.append((position, resp_offset, batch.n_events))
            resp_offset += batch.n_events * _ITEM
        for command in commands:
            self._raw_send(handle, worker_index, command)
        # chaos site: one visit per per-worker flush, after the commands
        # are on the wire — the worker may die having applied any prefix
        spec = faults.check("procpool.flush")
        if spec is not None and spec.kind == "kill_worker":
            victim = spec.param.get("worker")
            index = worker_index if victim is None else int(victim) % len(self._handles)
            try:
                os.kill(self._handles[index].proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass
        deadline = time.monotonic() + self.flush_timeout
        results: list[tuple[int, IngestReport]] = []
        for position, slot_offset, n_events in slots:
            n_tag_assignments, newly_stable = self._result(
                self._raw_recv(handle, worker_index, deadline)
            )
            similarities = handle.resp.read_array(slot_offset, np.float64, n_events)
            results.append(
                (
                    position,
                    IngestReport(
                        n_events, n_tag_assignments, similarities, list(newly_stable)
                    ),
                )
            )
        return results

    def ingest_shards(
        self, bank, shard_indices: Sequence[int], batches: Sequence[EventBatch]
    ) -> list[IngestReport]:
        """Ship pre-encoded per-shard batches; reports in submission order.

        Worker loss mid-flush recovers in place (respawn, re-seed,
        replay, re-send) and, past the respawn budget, degrades to
        in-parent execution — either way every batch lands exactly once
        and the reports are byte-identical to an undisturbed run.
        """
        self.bind(bank)
        self.run_calls += 1
        self.tasks_run += len(shard_indices)
        if self._degraded is not None:
            # a degrade slipped between the caller's owns_state check and
            # this call: the rebuilt in-parent banks are authoritative
            return [
                bank.shards[shard].ingest(batch)
                for shard, batch in zip(shard_indices, batches)
            ]
        per_worker: dict[int, list[tuple[int, int, EventBatch]]] = {}
        for position, (shard, batch) in enumerate(zip(shard_indices, batches)):
            per_worker.setdefault(self._shard_worker[shard], []).append(
                (position, shard, batch)
            )
        reports: list[IngestReport | None] = [None] * len(shard_indices)
        remaining = dict(sorted(per_worker.items()))
        for worker_index in list(remaining):
            entries = remaining[worker_index]
            while True:
                try:
                    results = self._flush_worker(bank, worker_index, entries)
                except _WorkerLost as lost:
                    if self._recover_worker(bank, lost) is None:
                        self._degrade_mid_flush(bank, remaining, reports)
                        return reports  # type: ignore[return-value]
                    continue
                for position, report in results:
                    reports[position] = report
                self._journal_entries(entries)
                for _, shard, _ in entries:
                    if self._journal_bytes.get(shard, 0) > self.max_journal_bytes:
                        self._compact_shard(bank, shard)
                del remaining[worker_index]
                break
        return reports  # type: ignore[return-value]

    def _degrade_mid_flush(self, bank, remaining, reports) -> None:
        """Degrade with a flush in flight: finish the stragglers inline.

        Workers already collected this flush have it in the journal (so
        the rebuild includes it); the remaining workers' slices are
        ingested inline into the rebuilt banks — exactly once each.
        """
        self._degrade(bank)
        stragglers = sorted(
            (position, shard, batch)
            for entries in remaining.values()
            for position, shard, batch in entries
        )
        for position, shard, batch in stragglers:
            reports[position] = bank.shards[shard].ingest(batch)

    def export_shard(self, bank, shard: int) -> dict:
        """Pull one shard's full state payload (query-path only)."""
        self.bind(bank)
        if self._degraded is not None:
            return bank.shards[shard].export_state()
        while True:
            worker_index = self._shard_worker[shard]
            handle = self._handles[worker_index]
            try:
                new_resources, new_tags = self._vocab_delta(bank, shard)
                self._raw_send(
                    handle, worker_index, ("export", shard, new_resources, new_tags)
                )
                deadline = time.monotonic() + self.flush_timeout
                return self._result(self._raw_recv(handle, worker_index, deadline))
            except _WorkerLost as lost:
                if self._recover_worker(bank, lost) is None:
                    self._degrade(bank)
                    return bank.shards[shard].export_state()

    def checkpoint_shard(
        self, bank, shard: int, directory: str | Path, layout: str
    ) -> list[dict]:
        """Have the owning worker flush one shard to a checkpoint dir."""
        self.bind(bank)
        if self._degraded is not None:
            from repro.engine.checkpoint import write_shard_state

            return write_shard_state(
                bank.shards[shard], Path(directory), shard, layout=layout
            )
        while True:
            worker_index = self._shard_worker[shard]
            handle = self._handles[worker_index]
            try:
                new_resources, new_tags = self._vocab_delta(bank, shard)
                self._raw_send(
                    handle,
                    worker_index,
                    ("checkpoint", shard, str(directory), layout,
                     new_resources, new_tags),
                )
                deadline = time.monotonic() + self.flush_timeout
                return self._result(self._raw_recv(handle, worker_index, deadline))
            except _WorkerLost as lost:
                if self._recover_worker(bank, lost) is None:
                    self._degrade(bank)
                    from repro.engine.checkpoint import write_shard_state

                    return write_shard_state(
                        bank.shards[shard], Path(directory), shard, layout=layout
                    )

    # -- the generic task interface -------------------------------------

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        if self._degraded is not None:
            return self._degraded.run(tasks)
        raise DataModelError(
            "the process backend is shard-affine: tasks are closures over "
            "parent-process state and cannot run in workers that own their "
            "own banks; use ingest_shards/export_shard/checkpoint_shard"
        )
