"""The ``process`` shard executor: workers that *own* their shards' banks.

Threads overlap the GIL-releasing NumPy kernels but serialize everything
else; true multi-core ingest needs processes, and processes make state
placement the design question.  The answer here is worker ownership:

* **Long-lived workers.**  :class:`ProcessExecutor` spawns its workers
  once, at :meth:`~ProcessExecutor.bind` time, and each worker builds the
  :class:`~repro.engine.columnar.StabilityBank` for every shard it owns
  (``shard % n_workers``).  After that warm-up, shard state never
  crosses the pipe again — batches go out, compact stable-crossing
  deltas come back.

* **Shared-memory CSR slices.**  Each worker pair shares two file-backed
  ``mmap`` ring buffers (``/dev/shm`` when available).  The parent
  writes a flush's pre-encoded per-shard CSR arrays (resources, indptr,
  tag_ids, timestamps) into the request buffer as **one contiguous
  block** and sends only ``(offset, length)`` descriptors over the pipe;
  the worker writes per-event similarities into the response buffer the
  same way.  No NumPy array is ever pickled on the steady-state ingest
  path — the serialization-spy test pins this.

* **Vocabulary deltas.**  Batches are encoded against the parent's
  per-shard interners (the "shells"), so workers must intern the same
  strings in the same order.  Every command carries the interner suffix
  the worker hasn't seen; interning is idempotent and order-preserving,
  so the counters can safely start at zero (a seeded worker just
  re-interns its known vocabulary once).

* **Synchronous per-worker protocol.**  The parent collects every reply
  of a flush before placing the next one, so a flush's contiguous block
  is always fully consumed before the allocator may wrap to offset 0 —
  the classic ring-buffer overlap bug cannot occur.

* **Lazily-materialized mirrors.**  The parent's shells stay
  interner-authoritative but numerically stale; the sharded bank marks
  ingested shards dirty and rebuilds their mirrors from a worker
  ``export`` (the only path that pickles arrays — a query-time,
  not steady-state, cost).

Determinism: commands are sent and replies collected in submission
order per worker, and the sharded bank reassembles reports in shard
order exactly as the serial path does — pinned campaign traces are
byte-identical at any worker × shard combination.

A worker that dies mid-operation surfaces as
:class:`~repro.engine.executor.ShardWorkerCrashed` (never a hang): the
parent polls the pipe *and* the process liveness while waiting.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import tempfile
import weakref
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.core.errors import DataModelError
from repro.engine.columnar import IngestReport, StabilityBank
from repro.engine.events import EventBatch
from repro.engine.executor import (
    ShardExecutor,
    ShardWorkerCrashed,
    default_workers,
    register_executor,
)

__all__ = ["ProcessExecutor"]

_INITIAL_CAPACITY = 1 << 20  # 1 MiB per direction; grows by doubling
_ITEM = 8  # every descriptor-addressed array is int64/float64


def _shm_dir() -> str:
    """Prefer a RAM-backed tmpfs for the ring buffers."""
    candidate = "/dev/shm"
    if os.path.isdir(candidate) and os.access(candidate, os.W_OK):
        return candidate
    return tempfile.gettempdir()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps warm-up free (seed state is inherited, not pickled);
    # spawn is the portable fallback
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


class _MappedBuffer:
    """A growable file-backed byte buffer shared by parent and worker.

    Only the parent ever grows the file (``ensure``); the worker remaps
    lazily (``refresh``) to the capacity carried in each command, so the
    two sides never race on ``truncate``.  All views taken on the map
    are transient — numpy views into an mmap block ``close`` until they
    are garbage collected, so readers copy out and writers drop their
    view before returning.
    """

    def __init__(self, path: str, capacity: int = 0, *, create: bool = False) -> None:
        self.path = path
        if create:
            with open(path, "wb") as handle:
                handle.truncate(max(capacity, mmap.PAGESIZE))
        self._file = open(path, "r+b")
        self._map: mmap.mmap | None = mmap.mmap(self._file.fileno(), 0)
        self.capacity = self._map.size()

    def ensure(self, capacity: int) -> int:
        """Grow (doubling) until ``capacity`` fits; returns the new size."""
        if capacity > self.capacity:
            new_capacity = self.capacity
            while new_capacity < capacity:
                new_capacity *= 2
            self._map.close()
            self._file.truncate(new_capacity)
            self._map = mmap.mmap(self._file.fileno(), 0)
            self.capacity = self._map.size()
        return self.capacity

    def refresh(self, capacity: int) -> None:
        """Reader-side remap after the peer grew the file."""
        if capacity > self.capacity:
            self._map.close()
            self._map = mmap.mmap(self._file.fileno(), 0)
            self.capacity = self._map.size()

    def write_array(self, offset: int, array: np.ndarray) -> int:
        """Copy ``array``'s bytes in at ``offset``; returns bytes written."""
        data = np.ascontiguousarray(array)
        nbytes = data.nbytes
        if nbytes:
            view = np.frombuffer(self._map, dtype=np.uint8, count=nbytes, offset=offset)
            view[:] = data.view(np.uint8).reshape(-1)
            del view  # release the buffer export before any remap
        return nbytes

    def read_array(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """Copy ``count`` items out from ``offset`` (owning array)."""
        return np.frombuffer(self._map, dtype=dtype, count=count, offset=offset).copy()

    def close(self, *, unlink: bool = False) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # pragma: no cover - leaked view
                pass
            self._map = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def _apply_vocab(
    bank: StabilityBank, new_resources: Sequence[str], new_tags: Sequence[str]
) -> None:
    """Replay the parent's interner suffix (idempotent, order-preserving)."""
    for tag in new_tags:
        bank.tags.intern(tag)
    bank.ensure(new_resources)  # interns resources + grows rows and columns


def _build_banks(
    omega: int, tau: float | None, shard_ids: Sequence[int], seed: tuple | None
) -> dict[int, StabilityBank]:
    if seed is None:
        return {shard: StabilityBank(omega, tau) for shard in shard_ids}
    kind, payload = seed
    if kind == "state":
        return {shard: StabilityBank.import_state(payload[shard]) for shard in shard_ids}
    if kind == "checkpoint":
        from repro.engine.checkpoint import load_shard_bank

        return {shard: load_shard_bank(Path(payload), shard) for shard in shard_ids}
    raise DataModelError(f"unknown worker seed kind {kind!r}")


def _handle_ingest(
    banks: dict[int, StabilityBank],
    req: _MappedBuffer,
    resp: _MappedBuffer,
    command: tuple,
) -> tuple[int, list[str]]:
    (
        _,
        shard,
        req_capacity,
        resp_capacity,
        base,
        n_events,
        n_tags,
        resp_offset,
        new_resources,
        new_tags,
    ) = command
    req.refresh(req_capacity)
    resp.refresh(resp_capacity)
    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    offset = base
    resources = req.read_array(offset, np.int64, n_events)
    offset += n_events * _ITEM
    indptr = req.read_array(offset, np.int64, n_events + 1)
    offset += (n_events + 1) * _ITEM
    tag_ids = req.read_array(offset, np.int64, n_tags)
    offset += n_tags * _ITEM
    timestamps = req.read_array(offset, np.float64, n_events)
    report = bank.ingest(
        EventBatch(
            resources=resources,
            indptr=indptr,
            tag_ids=tag_ids,
            timestamps=timestamps,
        )
    )
    resp.write_array(resp_offset, np.ascontiguousarray(report.similarities, np.float64))
    return report.n_tag_assignments, list(report.newly_stable)


def _handle_export(banks: dict[int, StabilityBank], command: tuple) -> dict:
    _, shard, new_resources, new_tags = command
    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    return bank.export_state()


def _handle_checkpoint(banks: dict[int, StabilityBank], command: tuple) -> list[dict]:
    _, shard, directory, layout, new_resources, new_tags = command
    from repro.engine.checkpoint import write_shard_state

    bank = banks[shard]
    _apply_vocab(bank, new_resources, new_tags)
    return write_shard_state(bank, Path(directory), shard, layout=layout)


def _worker_main(
    conn,
    req_path: str,
    resp_path: str,
    omega: int,
    tau: float | None,
    shard_ids: Sequence[int],
    seed: tuple | None,
) -> None:
    req = _MappedBuffer(req_path)
    resp = _MappedBuffer(resp_path)
    banks = _build_banks(omega, tau, shard_ids, seed)
    del seed  # free the warm-up payload; the banks own the state now
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            op = command[0]
            if op == "stop":
                break
            try:
                if op == "ingest":
                    result: Any = _handle_ingest(banks, req, resp, command)
                elif op == "export":
                    result = _handle_export(banks, command)
                elif op == "checkpoint":
                    result = _handle_checkpoint(banks, command)
                else:
                    raise DataModelError(f"unknown worker op {op!r}")
            except BaseException as exc:
                import traceback

                conn.send(("err", type(exc).__name__, str(exc), traceback.format_exc()))
            else:
                conn.send(("ok", result))
    finally:
        req.close()
        resp.close()
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class _WorkerHandle:
    """One worker process plus its pipe and shared ring buffers."""

    def __init__(self, proc, conn, req: _MappedBuffer, resp: _MappedBuffer) -> None:
        self.proc = proc
        self.conn = conn
        self.req = req
        self.resp = resp
        self.req_cursor = 0
        self.resp_cursor = 0

    @classmethod
    def spawn(
        cls,
        ctx,
        directory: str,
        index: int,
        omega: int,
        tau: float | None,
        shard_ids: Sequence[int],
        seed: tuple | None,
    ) -> _WorkerHandle:
        def buffer(tag: str) -> _MappedBuffer:
            fd, path = tempfile.mkstemp(prefix=f"repro-shard-{tag}-", dir=directory)
            os.close(fd)
            return _MappedBuffer(path, _INITIAL_CAPACITY, create=True)

        req = buffer("req")
        resp = buffer("resp")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, req.path, resp.path, omega, tau, list(shard_ids), seed),
            daemon=True,
            name=f"repro-shard-worker-{index}",
        )
        proc.start()
        child_conn.close()
        return cls(proc, parent_conn, req, resp)

    def place(self, which: str, total: int) -> int:
        """Reserve one contiguous ``total``-byte block; returns its offset.

        Called once per flush per direction, *after* the previous flush's
        replies were collected — so wrapping to 0 can never overwrite
        unconsumed data, and a flush's arrays are never split.
        """
        buffer = self.req if which == "req" else self.resp
        cursor = self.req_cursor if which == "req" else self.resp_cursor
        if cursor + total > buffer.capacity:
            cursor = 0
            buffer.ensure(total)
        if which == "req":
            self.req_cursor = cursor + total
        else:
            self.resp_cursor = cursor + total
        return cursor


def _shutdown_pool(procs, conns, buffers) -> None:
    """Stop workers, reap them, release the shared buffers (idempotent)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (ValueError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - wedged worker
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for buffer in buffers:
        buffer.close(unlink=True)


@register_executor("process")
class ProcessExecutor(ShardExecutor):
    """Long-lived worker processes owning their shards' banks.

    Args:
        workers: Pool size; ``0`` picks :func:`~repro.engine.executor.\
default_workers`.  The pool is capped at the bound bank's shard count —
            extra workers would own nothing.
    """

    owns_state = True

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise DataModelError(f"workers must be >= 0, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        self._handles: list[_WorkerHandle] | None = None
        self._shard_worker: list[int] = []
        # per shard: [resources sent, tags sent] interner watermarks
        self._sent_vocab: list[list[int]] = []
        self._finalizer = None
        self._obs = obs.get()

    # -- lifecycle ------------------------------------------------------

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` spawned the worker pool."""
        return self._handles is not None

    def worker_pids(self) -> list[int]:
        """The live worker process ids (empty before :meth:`bind`)."""
        if self._handles is None:
            return []
        return [handle.proc.pid for handle in self._handles]

    @staticmethod
    def _seed_for(bank) -> tuple | None:
        source = getattr(bank, "resume_source", None)
        if source is not None:
            return ("checkpoint", str(source))
        # read the shard shells directly: bank.total_posts would trigger
        # _materialize(), which clears the caller's freshly-marked stale
        # set while the pool is still unbound
        if any(shard.total_posts for shard in bank.shards):
            # the shells hold live numeric state (a bank that ingested
            # serially before the pool attached): ship it once, at warm-up
            return (
                "state",
                {
                    shard: bank.shards[shard].export_state()
                    for shard in range(bank.n_shards)
                },
            )
        return None

    def bind(self, bank) -> None:
        """Spawn the pool for ``bank``'s shards (idempotent once bound).

        Workers are seeded from the bank's current state: a fresh bank
        costs nothing, a checkpoint-loaded bank re-seeds each worker from
        the checkpoint's (memory-mapped) files, and a bank with live
        in-parent state ships it across once.
        """
        if self._handles is not None:
            if len(self._shard_worker) != bank.n_shards:
                raise DataModelError(
                    f"process executor is bound to {len(self._shard_worker)} shards; "
                    f"cannot rebind to {bank.n_shards}"
                )
            return
        n_shards = bank.n_shards
        n_workers = max(1, min(self.workers, n_shards))
        self.workers = n_workers
        self._shard_worker = [shard % n_workers for shard in range(n_shards)]
        self._sent_vocab = [[0, 0] for _ in range(n_shards)]
        seed = self._seed_for(bank)
        ctx = _pool_context()
        directory = _shm_dir()
        handles: list[_WorkerHandle] = []
        try:
            for index in range(n_workers):
                shard_ids = [s for s in range(n_shards) if s % n_workers == index]
                worker_seed = seed
                if seed is not None and seed[0] == "state":
                    worker_seed = (
                        "state", {shard: seed[1][shard] for shard in shard_ids}
                    )
                handles.append(
                    _WorkerHandle.spawn(
                        ctx, directory, index, bank.omega, bank.tau, shard_ids,
                        worker_seed,
                    )
                )
        except BaseException:
            _shutdown_pool(
                [h.proc for h in handles],
                [h.conn for h in handles],
                [h.req for h in handles] + [h.resp for h in handles],
            )
            raise
        self._handles = handles
        self._finalizer = weakref.finalize(
            self,
            _shutdown_pool,
            [h.proc for h in handles],
            [h.conn for h in handles],
            [h.req for h in handles] + [h.resp for h in handles],
        )
        if self._obs.enabled:
            self._obs.count("engine.procpool.workers", n_workers)

    def close(self) -> None:
        handles, self._handles = self._handles, None
        self._shard_worker = []
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if handles:
            _shutdown_pool(
                [h.proc for h in handles],
                [h.conn for h in handles],
                [h.req for h in handles] + [h.resp for h in handles],
            )

    # -- wire helpers ---------------------------------------------------

    def _fail(self, handle: _WorkerHandle, cause: BaseException | None = None):
        pid = handle.proc.pid
        self.close()
        raise ShardWorkerCrashed(
            f"shard worker (pid {pid}) died mid-operation; its shards' state "
            "is lost — rebuild the bank from a checkpoint"
        ) from cause

    def _send(self, handle: _WorkerHandle, message: tuple) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._fail(handle, exc)

    def _recv(self, handle: _WorkerHandle) -> tuple:
        while True:
            try:
                if handle.conn.poll(0.05):
                    return handle.conn.recv()
            except (EOFError, OSError) as exc:
                self._fail(handle, exc)
            if not handle.proc.is_alive():
                # drain: the worker may have replied just before exiting
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                self._fail(handle)

    def _result(self, reply: tuple):
        if reply[0] == "ok":
            return reply[1]
        _, name, message, trace = reply
        raise DataModelError(
            f"shard worker raised {name}: {message}\n--- worker traceback ---\n{trace}"
        )

    def _vocab_delta(self, bank, shard: int) -> tuple[list[str], list[str]]:
        shell = bank.shards[shard]
        sent = self._sent_vocab[shard]
        resources = shell.resources.items()[sent[0]:]
        tags = shell.tags.items()[sent[1]:]
        sent[0] += len(resources)
        sent[1] += len(tags)
        return resources, tags

    # -- shard-affine operations ---------------------------------------

    def ingest_shards(
        self, bank, shard_indices: Sequence[int], batches: Sequence[EventBatch]
    ) -> list[IngestReport]:
        """Ship pre-encoded per-shard batches; reports in submission order."""
        self.bind(bank)
        self.run_calls += 1
        self.tasks_run += len(shard_indices)
        per_worker: dict[int, list[tuple[int, int, EventBatch]]] = {}
        for position, (shard, batch) in enumerate(zip(shard_indices, batches)):
            per_worker.setdefault(self._shard_worker[shard], []).append(
                (position, shard, batch)
            )
        reports: list[IngestReport | None] = [None] * len(shard_indices)
        pending: list[tuple[int, _WorkerHandle, int, int]] = []
        for worker_index, entries in per_worker.items():
            handle = self._handles[worker_index]
            req_total = sum(
                (3 * batch.n_events + 1 + batch.tag_ids.size) * _ITEM
                for _, _, batch in entries
            )
            resp_total = sum(batch.n_events * _ITEM for _, _, batch in entries)
            offset = handle.place("req", req_total)
            resp_offset = handle.place("resp", resp_total)
            commands: list[tuple] = []
            for position, shard, batch in entries:
                base = offset
                offset += handle.req.write_array(offset, batch.resources)
                offset += handle.req.write_array(offset, batch.indptr)
                offset += handle.req.write_array(offset, batch.tag_ids)
                offset += handle.req.write_array(offset, batch.timestamps)
                new_resources, new_tags = self._vocab_delta(bank, shard)
                commands.append(
                    (
                        "ingest",
                        shard,
                        handle.req.capacity,
                        handle.resp.capacity,
                        base,
                        batch.n_events,
                        int(batch.tag_ids.size),
                        resp_offset,
                        new_resources,
                        new_tags,
                    )
                )
                pending.append((position, handle, resp_offset, batch.n_events))
                resp_offset += batch.n_events * _ITEM
            for command in commands:
                self._send(handle, command)
        # Collect in per-worker submission order — each worker replies in
        # the order it was fed, so reassembly is deterministic.
        for position, handle, resp_offset, n_events in pending:
            n_tag_assignments, newly_stable = self._result(self._recv(handle))
            similarities = handle.resp.read_array(resp_offset, np.float64, n_events)
            reports[position] = IngestReport(
                n_events, n_tag_assignments, similarities, list(newly_stable)
            )
        return reports  # type: ignore[return-value]

    def export_shard(self, bank, shard: int) -> dict:
        """Pull one shard's full state payload (query-path only)."""
        self.bind(bank)
        handle = self._handles[self._shard_worker[shard]]
        new_resources, new_tags = self._vocab_delta(bank, shard)
        self._send(handle, ("export", shard, new_resources, new_tags))
        return self._result(self._recv(handle))

    def checkpoint_shard(
        self, bank, shard: int, directory: str | Path, layout: str
    ) -> list[dict]:
        """Have the owning worker flush one shard to a checkpoint dir."""
        self.bind(bank)
        handle = self._handles[self._shard_worker[shard]]
        new_resources, new_tags = self._vocab_delta(bank, shard)
        self._send(
            handle, ("checkpoint", shard, str(directory), layout, new_resources, new_tags)
        )
        return self._result(self._recv(handle))

    # -- the generic task interface does not apply ---------------------

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        raise DataModelError(
            "the process backend is shard-affine: tasks are closures over "
            "parent-process state and cannot run in workers that own their "
            "own banks; use ingest_shards/export_shard/checkpoint_shard"
        )
