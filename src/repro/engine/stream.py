"""The streaming ingest engine: batching, stats, callbacks, checkpoints.

:class:`IngestEngine` is the operational front door of the subsystem: it
pulls an interleaved :class:`~repro.engine.events.TagEvent` stream,
chunks it into batches, feeds each batch to a (possibly sharded)
stability bank, fires a callback the moment any resource crosses its
stable point, and keeps running throughput statistics.  Optionally it
writes a checkpoint every N batches, so a crashed ingestion resumes from
the last checkpoint with identical results (see
:mod:`repro.engine.checkpoint`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path

from repro import obs
from repro.core.errors import DataModelError
from repro.core.stability import DEFAULT_OMEGA
from repro.engine.checkpoint import save_checkpoint
from repro.engine.columnar import StabilityBank
from repro.engine.events import TagEvent
from repro.engine.executor import make_executor
from repro.engine.shard import ShardedStabilityBank

__all__ = ["EngineStats", "IngestEngine"]

StableCallback = Callable[[str, int], None]
"""Called as ``callback(resource_id, stable_point)`` on each crossing."""


@dataclass
class EngineStats:
    """Running ingestion statistics.

    Attributes:
        events: Events ingested.
        batches: Batches applied.
        tag_assignments: Total (event, tag) pairs ingested.
        stable_resources: Resources that crossed ``tau`` so far.
        elapsed: Seconds spent inside ingestion (encode + bank update).
        checkpoints: Checkpoints written by the engine.
    """

    events: int = 0
    batches: int = 0
    tag_assignments: int = 0
    stable_resources: int = 0
    elapsed: float = 0.0
    checkpoints: int = 0

    @property
    def events_per_second(self) -> float:
        """Ingestion throughput (0 before any work)."""
        return self.events / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        return (
            f"ingested {self.events:,} events / {self.tag_assignments:,} tag "
            f"assignments in {self.batches} batches "
            f"({self.events_per_second:,.0f} events/s); "
            f"{self.stable_resources} resources stable"
        )


@dataclass
class IngestEngine:
    """Batched streaming ingestion into a stability bank.

    Args:
        bank: The bank to feed.  Defaults to a fresh single
            :class:`StabilityBank`; pass a
            :class:`ShardedStabilityBank` for sharded ingestion.
        batch_size: Events per batch (the vectorization grain).
        on_stable: Optional callback fired once per resource, at the
            batch in which it crossed the bank's ``tau``.
        checkpoint_dir: Where to write periodic checkpoints.
        checkpoint_every: Write a checkpoint after every N batches
            (requires ``checkpoint_dir``).
    """

    bank: StabilityBank | ShardedStabilityBank = field(default_factory=StabilityBank)
    batch_size: int = 1024
    on_stable: StableCallback | None = None
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int | None = None
    checkpoint_layout: str = "npz"
    stats: EngineStats = field(default_factory=EngineStats)
    _obs: object = field(default_factory=obs.get, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise DataModelError(f"batch_size must be positive, got {self.batch_size}")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise DataModelError("checkpoint_every must be positive")
            if self.checkpoint_dir is None:
                raise DataModelError("checkpoint_every requires checkpoint_dir")

    @classmethod
    def create(
        cls,
        *,
        n_shards: int = 1,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = None,
        batch_size: int = 1024,
        executor: str = "serial",
        workers: int = 0,
        parallel_min_events: int | None = None,
        **kwargs,
    ) -> IngestEngine:
        """Build an engine with a fresh bank (sharded when asked).

        Args:
            n_shards: Bank shard count (1 = single columnar bank).
            omega: MA window.
            tau: Optional stability threshold.
            batch_size: Events per batch (the vectorization grain).
            executor: Shard-kernel executor kind
                (:data:`~repro.engine.executor.EXECUTOR_BACKENDS`);
                only meaningful with ``n_shards > 1`` (except
                ``"process"``, whose workers own the bank state and are
                built even for one shard).
            workers: Pool size for pooled executors
                (``0`` = one per core, capped).
            parallel_min_events: Override the sharded bank's inline
                cutoff (``None`` keeps the default).
        """
        bank: StabilityBank | ShardedStabilityBank
        pool = make_executor(executor, workers)
        if n_shards == 1 and not pool.owns_state:
            # a single bank has nothing to parallelize; don't keep a pool
            pool.close()
            bank = StabilityBank(omega, tau)
        else:
            bank = ShardedStabilityBank(n_shards, omega, tau, executor=pool)
            if parallel_min_events is not None:
                bank.parallel_min_events = parallel_min_events
        return cls(bank=bank, batch_size=batch_size, **kwargs)

    # ------------------------------------------------------------------

    def feed(self, events: Iterable[TagEvent]) -> EngineStats:
        """Consume an event stream to exhaustion; return the stats."""
        for batch in self.batches_of(events):
            self.submit(batch)
        return self.stats

    def submit(self, events: list[TagEvent]) -> list[str]:
        """Ingest one pre-chunked batch; return newly-stable resource ids."""
        if not events:
            return []
        started = time.perf_counter()
        report = self.bank.ingest_events(events)
        elapsed = time.perf_counter() - started
        self.stats.elapsed += elapsed
        telemetry = self._obs
        if telemetry.enabled:
            telemetry.observe("engine.batch", elapsed * 1000.0)
            telemetry.count("engine.batches")
        self.stats.events += report.n_events
        self.stats.tag_assignments += report.n_tag_assignments
        self.stats.batches += 1
        self.stats.stable_resources += len(report.newly_stable)
        if self.on_stable is not None:
            for resource_id in report.newly_stable:
                stable_point = self.bank.stable_point(resource_id)
                assert stable_point is not None
                self.on_stable(resource_id, stable_point)
        if (
            self.checkpoint_every is not None
            and self.stats.batches % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return report.newly_stable

    def checkpoint(self) -> Path:
        """Write a checkpoint now (requires ``checkpoint_dir``)."""
        if self.checkpoint_dir is None:
            raise DataModelError("engine has no checkpoint_dir configured")
        path = save_checkpoint(
            self.bank, self.checkpoint_dir, layout=self.checkpoint_layout
        )
        self.stats.checkpoints += 1
        return path

    # ------------------------------------------------------------------

    def batches_of(self, events: Iterable[TagEvent]) -> Iterator[list[TagEvent]]:
        """Chunk a stream at the engine's batch size (utility for callers
        that want to interleave ingestion with their own logic)."""
        iterator = iter(events)
        while True:
            chunk = list(islice(iterator, self.batch_size))
            if not chunk:
                return
            yield chunk
