"""Engine checkpoints: npz array snapshots + JSONL stable records.

A checkpoint is a directory:

* ``manifest.json`` — format version, bank kind (single/sharded), omega,
  tau and shard count;
* ``shard_NNNN.npz`` — one compressed archive per shard holding the CSR
  count arrays, the running totals / squared norms / post counts, the MA
  window state and the interned tag & resource vocabularies;
* ``stable.jsonl`` — one line per stable resource with its shard, stable
  point and the *raw count* snapshot (integers survive JSON exactly, so
  resume is bit-deterministic: a bank loaded from a checkpoint and fed
  the remaining events finishes in the same state as one that ingested
  the whole stream — see ``tests/engine/test_checkpoint.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.errors import DataModelError
from repro.engine.columnar import StabilityBank, StableSnapshot
from repro.engine.shard import ShardedStabilityBank

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = 1
"""On-disk format version (bump on incompatible layout changes)."""

_MANIFEST = "manifest.json"
_STABLE = "stable.jsonl"


def _shard_file(index: int) -> str:
    return f"shard_{index:04d}.npz"


def _save_bank_arrays(bank: StabilityBank, path: Path) -> None:
    arrays = bank.state_arrays()
    arrays["tags"] = np.asarray(bank.tags.items(), dtype=str)
    arrays["resources"] = np.asarray(bank.resources.items(), dtype=str)
    np.savez_compressed(path, **arrays)


def _stable_records(bank: StabilityBank, shard_index: int) -> list[dict]:
    records = []
    for row, snapshot in sorted(bank._snapshots.items()):
        records.append(
            {
                "shard": shard_index,
                "resource": bank.resources.value(row),
                "stable_point": snapshot.stable_point,
                "tags": [bank.tags.value(int(t)) for t in snapshot.tag_ids],
                "counts": [int(c) for c in snapshot.counts],
                "total": snapshot.total,
            }
        )
    return records


def save_checkpoint(
    bank: StabilityBank | ShardedStabilityBank, directory: str | Path
) -> Path:
    """Write ``bank``'s full state under ``directory`` (created if needed).

    Returns:
        The checkpoint directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sharded = isinstance(bank, ShardedStabilityBank)
    shards = bank.shards if sharded else [bank]
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "kind": "sharded" if sharded else "single",
        "omega": bank.omega,
        "tau": bank.tau,
        "n_shards": len(shards),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    records: list[dict] = []
    for index, shard in enumerate(shards):
        _save_bank_arrays(shard, directory / _shard_file(index))
        records.extend(_stable_records(shard, index))
    with (directory / _STABLE).open("w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return directory


def _load_bank(
    path: Path,
    *,
    omega: int,
    tau: float | None,
    stable_records: list[dict],
) -> StabilityBank:
    with np.load(path, allow_pickle=False) as archive:
        tags = [str(t) for t in archive["tags"]]
        resources = [str(r) for r in archive["resources"]]
        arrays = {
            key: archive[key]
            for key in archive.files
            if key not in ("tags", "resources")
        }
    resource_rows = {resource_id: row for row, resource_id in enumerate(resources)}
    tag_ids = {tag: index for index, tag in enumerate(tags)}
    snapshots: dict[int, StableSnapshot] = {}
    for record in stable_records:
        row = resource_rows[record["resource"]]
        snapshots[row] = StableSnapshot(
            stable_point=int(record["stable_point"]),
            tag_ids=np.array([tag_ids[t] for t in record["tags"]], dtype=np.int64),
            counts=np.array(record["counts"], dtype=np.int64),
            total=int(record["total"]),
        )
    return StabilityBank.from_state(
        omega=omega,
        tau=tau,
        tags=tags,
        resources=resources,
        arrays=arrays,
        snapshots=snapshots,
    )


def load_checkpoint(directory: str | Path) -> StabilityBank | ShardedStabilityBank:
    """Rebuild the bank saved by :func:`save_checkpoint`.

    Returns:
        A :class:`StabilityBank` for single-bank checkpoints, a
        :class:`ShardedStabilityBank` otherwise.

    Raises:
        DataModelError: If the directory is not a readable checkpoint of
            a supported format version.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise DataModelError(f"no checkpoint manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise DataModelError(
            f"unsupported checkpoint format {manifest.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    omega = int(manifest["omega"])
    tau = manifest["tau"]
    tau = None if tau is None else float(tau)
    n_shards = int(manifest["n_shards"])

    per_shard: list[list[dict]] = [[] for _ in range(n_shards)]
    stable_path = directory / _STABLE
    if stable_path.is_file():
        with stable_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                per_shard[int(record["shard"])].append(record)

    banks = [
        _load_bank(
            directory / _shard_file(index),
            omega=omega,
            tau=tau,
            stable_records=per_shard[index],
        )
        for index in range(n_shards)
    ]
    if manifest["kind"] == "single":
        return banks[0]
    sharded = ShardedStabilityBank(n_shards, omega, tau)
    sharded.shards = banks
    return sharded
