"""Engine checkpoints: array snapshots + JSONL stable records.

A checkpoint is a directory:

* ``manifest.json`` — format version, bank kind (single/sharded), omega,
  tau, shard count and array layout;
* per-shard arrays in one of two layouts:

  - ``npz`` (default): ``shard_NNNN.npz``, one compressed archive per
    shard holding the CSR count arrays, the running totals / squared
    norms / post counts, the MA window state and the interned tag &
    resource vocabularies;
  - ``mmap``: ``shard_NNNN/`` with one raw ``.npy`` file per state
    array plus ``vocab.json``.  Writing is a straight flush of each
    array into a memory-mapped file (no compression pass), and loading
    can memory-map the arrays back (``mmap_mode="r"``) — which is how
    the ``process`` executor's workers re-seed themselves from a resumed
    checkpoint without the parent shipping any arrays;

* ``stable.jsonl`` — one line per stable resource with its shard, stable
  point and the *raw count* snapshot (integers survive JSON exactly, so
  resume is bit-deterministic: a bank loaded from a checkpoint and fed
  the remaining events finishes in the same state as one that ingested
  the whole stream — see ``tests/engine/test_checkpoint.py``).

When a sharded bank runs on a state-owning executor (the ``process``
backend), :func:`save_checkpoint` routes each shard's write to the
worker that owns it — the snapshot is a flush of the worker's own
arrays, and no state crosses the pipe.  :func:`write_shard_state` and
:func:`load_shard_bank` are the per-shard halves the workers call.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro import faults
from repro.core.errors import DataModelError
from repro.engine.columnar import StabilityBank, StableSnapshot
from repro.engine.shard import ShardedStabilityBank

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_LAYOUTS",
    "CheckpointCorrupted",
    "load_checkpoint",
    "load_shard_bank",
    "save_checkpoint",
    "write_shard_state",
]


class CheckpointCorrupted(DataModelError):
    """A checkpoint directory exists but its contents cannot be trusted.

    Raised instead of raw NumPy/zipfile/struct/JSON errors when a shard
    archive is short (a torn write — the process died mid-flush), a
    memory-mapped array file is truncated, a vocabulary file is
    unreadable, or the stable log references state the arrays do not
    hold.  Callers holding an older checkpoint (the campaign driver
    keeps the previous epoch's) catch this and fall back.
    """

CHECKPOINT_FORMAT = 1
"""On-disk format version (bump on incompatible layout changes)."""

CHECKPOINT_LAYOUTS = ("npz", "mmap")
"""Supported per-shard array layouts (``manifest["layout"]``; an absent
key means ``npz`` — checkpoints written before the mmap layout existed
load unchanged)."""

_MANIFEST = "manifest.json"
_STABLE = "stable.jsonl"
_VOCAB = "vocab.json"


def _check_layout(layout: str) -> None:
    if layout not in CHECKPOINT_LAYOUTS:
        raise DataModelError(
            f"unknown checkpoint layout {layout!r} "
            f"(expected one of {CHECKPOINT_LAYOUTS})"
        )


def _shard_file(index: int) -> str:
    return f"shard_{index:04d}.npz"


def _shard_dir(index: int) -> str:
    return f"shard_{index:04d}"


def _save_bank_arrays(bank: StabilityBank, path: Path) -> None:
    arrays = bank.state_arrays()
    arrays["tags"] = np.asarray(bank.tags.items(), dtype=str)
    arrays["resources"] = np.asarray(bank.resources.items(), dtype=str)
    np.savez_compressed(path, **arrays)


def _save_bank_mmap(bank: StabilityBank, shard_dir: Path) -> None:
    shard_dir.mkdir(parents=True, exist_ok=True)
    for name, array in bank.state_arrays().items():
        path = shard_dir / f"{name}.npy"
        if array.size == 0:
            # an empty file cannot be mmapped; plain save writes the
            # same .npy format and mmap-mode loading handles it
            np.save(path, array)
            continue
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=array.dtype, shape=array.shape
        )
        out[:] = array
        out.flush()
        del out  # release the mapping before the file handle closes
    (shard_dir / _VOCAB).write_text(
        json.dumps({"tags": bank.tags.items(), "resources": bank.resources.items()})
    )


def _stable_records(bank: StabilityBank, shard_index: int) -> list[dict]:
    records = []
    for row, snapshot in sorted(bank._snapshots.items()):
        records.append(
            {
                "shard": shard_index,
                "resource": bank.resources.value(row),
                "stable_point": snapshot.stable_point,
                "tags": [bank.tags.value(int(t)) for t in snapshot.tag_ids],
                "counts": [int(c) for c in snapshot.counts],
                "total": snapshot.total,
            }
        )
    return records


def write_shard_state(
    bank: StabilityBank, directory: str | Path, index: int, *, layout: str = "npz"
) -> list[dict]:
    """Write one shard's arrays + vocabulary under ``directory``.

    The per-shard half of :func:`save_checkpoint`; a ``process`` worker
    calls this directly on its own bank so checkpointing a worker-owned
    shard is a local flush.  Returns the shard's stable records for the
    caller to merge into ``stable.jsonl``.
    """
    _check_layout(layout)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if layout == "npz":
        _save_bank_arrays(bank, directory / _shard_file(index))
    else:
        _save_bank_mmap(bank, directory / _shard_dir(index))
    spec = faults.check("checkpoint.shard")
    if spec is not None and spec.kind == "torn_write":
        _tear_shard_write(directory, index, layout, int(spec.param.get("bytes", 64)))
    return _stable_records(bank, index)


def _tear_shard_write(directory: Path, index: int, layout: str, n_bytes: int) -> None:
    """Chaos helper: truncate the tail of the shard state just written.

    Simulates a crash mid-flush — exactly the torn trailing write
    :class:`CheckpointCorrupted` detection exists for.
    """
    if layout == "npz":
        target = directory / _shard_file(index)
    else:
        candidates = sorted((directory / _shard_dir(index)).glob("*.npy"))
        target = candidates[-1] if candidates else None
    if target is None or not target.is_file():  # pragma: no cover - no file to tear
        return
    size = target.stat().st_size
    with target.open("r+b") as handle:
        handle.truncate(max(0, size - n_bytes))


def save_checkpoint(
    bank: StabilityBank | ShardedStabilityBank,
    directory: str | Path,
    *,
    layout: str = "npz",
) -> Path:
    """Write ``bank``'s full state under ``directory`` (created if needed).

    Args:
        layout: One of :data:`CHECKPOINT_LAYOUTS`.

    Returns:
        The checkpoint directory path.
    """
    _check_layout(layout)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sharded = isinstance(bank, ShardedStabilityBank)
    shards = bank.shards if sharded else [bank]
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "kind": "sharded" if sharded else "single",
        "omega": bank.omega,
        "tau": bank.tau,
        "n_shards": len(shards),
        "layout": layout,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    records: list[dict] = []
    executor = getattr(bank, "executor", None) if sharded else None
    if (
        executor is not None
        and getattr(executor, "owns_state", False)
        and getattr(executor, "bound", False)
    ):
        # worker-owned shards: each owning worker flushes its own arrays
        for index in range(len(shards)):
            records.extend(executor.checkpoint_shard(bank, index, directory, layout))
    else:
        for index, shard in enumerate(shards):
            records.extend(write_shard_state(shard, directory, index, layout=layout))
    with (directory / _STABLE).open("w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    # the checkpoint is complete on disk: only now may a supervising
    # executor adopt it as its workers' recovery base
    note = getattr(executor, "note_checkpoint", None)
    if note is not None:
        note(directory)
    return directory


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise DataModelError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise CheckpointCorrupted(
            f"checkpoint manifest {manifest_path} is unreadable: {exc}"
        ) from exc
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise DataModelError(
            f"unsupported checkpoint format {manifest.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    layout = manifest.get("layout", "npz")
    _check_layout(layout)
    return manifest


def _read_shard_payload(
    directory: Path, index: int, layout: str
) -> tuple[list[str], list[str], dict[str, np.ndarray]]:
    """One shard's ``(tags, resources, arrays)`` from disk.

    Raises :class:`CheckpointCorrupted` — never a raw NumPy, zipfile,
    struct or JSON error — when the on-disk state is short or mangled:
    a torn trailing write must surface as one clean typed failure.
    """
    try:
        if layout == "npz":
            archive_path = directory / _shard_file(index)
            with np.load(archive_path, allow_pickle=False) as archive:
                tags = [str(t) for t in archive["tags"]]
                resources = [str(r) for r in archive["resources"]]
                arrays = {
                    key: archive[key]
                    for key in archive.files
                    if key not in ("tags", "resources")
                }
            return tags, resources, arrays
        shard_dir = directory / _shard_dir(index)
        vocab = json.loads((shard_dir / _VOCAB).read_text())
        arrays = {
            path.stem: np.load(path, mmap_mode="r")
            for path in sorted(shard_dir.glob("*.npy"))
        }
        return list(vocab["tags"]), list(vocab["resources"]), arrays
    except (
        ValueError,  # numpy: truncated mmap / short .npy header or data
        OSError,  # missing or unreadable shard files
        EOFError,  # npz archive cut mid-member
        KeyError,  # archive lost a required array
        zipfile.BadZipFile,  # npz central directory torn off
        json.JSONDecodeError,  # vocab.json torn mid-write
    ) as exc:
        raise CheckpointCorrupted(
            f"checkpoint shard {index} under {directory} is torn or corrupt "
            f"({type(exc).__name__}: {exc}); restore from an earlier checkpoint"
        ) from exc


def _build_bank(
    tags: list[str],
    resources: list[str],
    arrays: dict[str, np.ndarray],
    *,
    omega: int,
    tau: float | None,
    stable_records: list[dict],
) -> StabilityBank:
    resource_rows = {resource_id: row for row, resource_id in enumerate(resources)}
    tag_ids = {tag: index for index, tag in enumerate(tags)}
    snapshots: dict[int, StableSnapshot] = {}
    for record in stable_records:
        row = resource_rows[record["resource"]]
        snapshots[row] = StableSnapshot(
            stable_point=int(record["stable_point"]),
            tag_ids=np.array([tag_ids[t] for t in record["tags"]], dtype=np.int64),
            counts=np.array(record["counts"], dtype=np.int64),
            total=int(record["total"]),
        )
    return StabilityBank.from_state(
        omega=omega,
        tau=tau,
        tags=tags,
        resources=resources,
        arrays=arrays,
        snapshots=snapshots,
    )


def _build_bank_checked(
    directory: Path,
    index: int,
    layout: str,
    *,
    omega: int,
    tau: float | None,
    stable_records: list[dict],
) -> StabilityBank:
    """Read + rebuild one shard, mapping reconstruction errors to
    :class:`CheckpointCorrupted` (arrays may load yet disagree with the
    stable log when a write was torn between the two)."""
    tags, resources, arrays = _read_shard_payload(directory, index, layout)
    try:
        return _build_bank(
            tags, resources, arrays, omega=omega, tau=tau,
            stable_records=stable_records,
        )
    except (KeyError, ValueError, IndexError) as exc:
        raise CheckpointCorrupted(
            f"checkpoint shard {index} under {directory} is internally "
            f"inconsistent ({type(exc).__name__}: {exc}); restore from an "
            "earlier checkpoint"
        ) from exc


def _read_stable_records(directory: Path, n_shards: int) -> list[list[dict]]:
    per_shard: list[list[dict]] = [[] for _ in range(n_shards)]
    stable_path = directory / _STABLE
    if stable_path.is_file():
        with stable_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                per_shard[int(record["shard"])].append(record)
    return per_shard


def load_shard_bank(directory: str | Path, index: int) -> StabilityBank:
    """Load a single shard's bank from a sharded (or single) checkpoint.

    The per-shard half of :func:`load_checkpoint`: a ``process`` worker
    re-seeds itself by loading only the shards it owns — with the
    ``mmap`` layout the arrays are memory-mapped straight from the
    checkpoint files.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    n_shards = int(manifest["n_shards"])
    if not 0 <= index < n_shards:
        raise DataModelError(
            f"shard {index} out of range for a {n_shards}-shard checkpoint"
        )
    tau = manifest["tau"]
    return _build_bank_checked(
        directory,
        index,
        manifest.get("layout", "npz"),
        omega=int(manifest["omega"]),
        tau=None if tau is None else float(tau),
        stable_records=_read_stable_records(directory, n_shards)[index],
    )


def load_checkpoint(directory: str | Path) -> StabilityBank | ShardedStabilityBank:
    """Rebuild the bank saved by :func:`save_checkpoint`.

    Returns:
        A :class:`StabilityBank` for single-bank checkpoints, a
        :class:`ShardedStabilityBank` otherwise.  Sharded banks remember
        the checkpoint directory (``resume_source``) so a state-owning
        executor attached afterwards can seed its workers from the same
        files instead of shipping state.

    Raises:
        DataModelError: If the directory is not a readable checkpoint of
            a supported format version.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    omega = int(manifest["omega"])
    tau = manifest["tau"]
    tau = None if tau is None else float(tau)
    n_shards = int(manifest["n_shards"])
    layout = manifest.get("layout", "npz")
    per_shard = _read_stable_records(directory, n_shards)
    banks = [
        _build_bank_checked(
            directory,
            index,
            layout,
            omega=omega,
            tau=tau,
            stable_records=per_shard[index],
        )
        for index in range(n_shards)
    ]
    if manifest["kind"] == "single":
        return banks[0]
    sharded = ShardedStabilityBank(n_shards, omega, tau)
    sharded.shards = banks
    sharded.resume_source = str(directory)
    return sharded
