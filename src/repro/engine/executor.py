"""Pooled execution of independent per-shard kernels.

The sharded bank's design invariant is *shared-nothing*: every shard owns
its interners, count block and MA windows, so the per-shard slices of a
batch can be ingested concurrently without locks.  A
:class:`ShardExecutor` is the small seam that decides *how* those
independent kernels run:

* :class:`SerialExecutor` — inline, in submission order (the default;
  zero dispatch overhead, and what single-core hosts should use);
* :class:`ThreadExecutor` — a pooled :class:`concurrent.futures.\
ThreadPoolExecutor`.  At bulk-ingest batch sizes the per-shard kernels
  are NumPy-dominated and release the GIL for their sorts/cumsums/
  gathers, so shard ingests genuinely overlap on multi-core hosts.
  (Tiny slices are a different regime — the scalar small-batch kernel
  and NumPy dispatch both hold the GIL — which is what the
  :data:`PARALLEL_MIN_EVENTS` inline cutoff is for.)
* :class:`ProcessExecutor` (:mod:`repro.engine.procpool`) — long-lived
  worker processes that *own* their shards' banks.  Batch slices travel
  through shared-memory ring buffers as (offset, length) descriptors, so
  the steady-state ingest path never pickles a NumPy array; workers send
  back only compact stable-crossing deltas.

Backends self-register on an :class:`ExecutorRegistry` via the
:func:`register_executor` decorator (mirroring the strategy registry in
:mod:`repro.api.registry`), so :func:`make_executor` is a lookup, not an
if/elif ladder, and unknown names fail with the sorted backend listing.

Determinism is the executor's contract, not an accident: :meth:`run`
always returns results **in submission order**, whatever order the
workers finish in.  Callers (the sharded bank, the sharded monitor, the
ingest engine) submit shard tasks in shard-index order and reassemble
state in that same order, so every trace is byte-identical at any worker
count — the concurrency tests pin this.

Pools are *pooled*: a :class:`ThreadExecutor` keeps its workers alive
across calls (campaigns flush every epoch; paying thread startup per
flush would drown the win).  Executors are context managers;
:meth:`close` is idempotent and an unclosed pool is reclaimed when the
executor is garbage collected.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro import obs
from repro.core.errors import DataModelError

__all__ = [
    "EXECUTOR_BACKENDS",
    "EXECUTORS",
    "ExecutorRegistry",
    "ProcessExecutor",
    "ShardExecutor",
    "ShardWorkerCrashed",
    "SerialExecutor",
    "ThreadExecutor",
    "default_workers",
    "make_executor",
    "register_executor",
]

T = TypeVar("T")

PARALLEL_MIN_EVENTS = 512
"""Below this many events in a batch, pooled callers run shard kernels
inline: a tiny flush finishes faster than the pool's submit/collect
round-trip, and results are byte-identical either way.  Callers holding
a pooled executor (the sharded bank, the sharded monitor) consult this
before dispatching.  State-owning executors (``process``) are exempt —
their banks live in the workers, so every batch must cross the pipe."""


def default_workers() -> int:
    """Worker count used when a pooled executor is asked for ``workers=0``.

    One worker per available core, capped at 8 — shard counts are small,
    and past the shard count extra workers only add dispatch overhead.
    """
    return min(8, os.cpu_count() or 1)


class ShardWorkerCrashed(DataModelError):
    """A shard worker process died mid-operation.

    Raised by the ``process`` backend instead of hanging on a dead pipe:
    the pool detects the worker's exit, tears the remaining workers down
    and surfaces which worker was lost.  The owning bank's state is gone
    with the worker — the caller must rebuild from a checkpoint.
    """


class ShardExecutor(ABC):
    """Runs a list of independent no-argument tasks; order-preserving.

    Attributes:
        kind: The backend name (``"serial"``, ``"thread"``, ``"process"``).
        workers: Concurrency the executor was built with (1 for serial).
        owns_state: True when shard bank state lives *inside* the
            executor's workers (the ``process`` backend).  State-owning
            executors are fed through the sharded bank's
            ``ingest_shards`` path instead of :meth:`run`, and the bank
            keeps only a lazily-materialized mirror for queries.
        run_calls: Number of :meth:`run` invocations so far.
        tasks_run: Total tasks executed across all :meth:`run` calls.
            Together with the sharded bank's ``inline_cutoff_hits`` this
            makes pool usage observable: a caller short-circuiting below
            :data:`PARALLEL_MIN_EVENTS` never touches these.
    """

    kind: str = ""
    workers: int = 1
    owns_state: bool = False
    run_calls: int = 0
    tasks_run: int = 0

    @abstractmethod
    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Execute every task; return their results in submission order.

        An exception raised by any task propagates to the caller (after
        all submitted tasks have settled, for pooled backends).
        """

    def close(self) -> None:
        """Release pooled resources (idempotent; serial is a no-op)."""

    def __enter__(self) -> ShardExecutor:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ExecutorRegistry:
    """Name → executor-class registry with sorted, self-describing errors.

    Mirrors :class:`repro.api.registry.StrategyRegistry`: backends
    declare themselves with the :func:`register_executor` decorator, and
    everything that needs the backend list (spec validation, CLI
    choices, error messages) derives it from :meth:`names` instead of a
    hand-maintained tuple.
    """

    def __init__(self) -> None:
        self._backends: dict[str, type[ShardExecutor]] = {}

    def register(self, name: str, cls: type[ShardExecutor]) -> None:
        if not name:
            raise DataModelError("executor backend name must be non-empty")
        if name in self._backends:
            raise DataModelError(f"executor backend {name!r} is already registered")
        self._backends[name] = cls

    def names(self) -> list[str]:
        """Registered backend names, sorted for stable listings."""
        return sorted(self._backends)

    def get(self, name: str) -> type[ShardExecutor]:
        try:
            return self._backends[name]
        except KeyError:
            raise DataModelError(
                f"unknown shard executor {name!r} "
                f"(expected one of {tuple(self.names())})"
            ) from None

    def create(self, name: str, workers: int = 0) -> ShardExecutor:
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise DataModelError(f"workers must be an int, got {workers!r}")
        if workers < 0:
            raise DataModelError(f"workers must be >= 0, got {workers}")
        return self.get(name)(workers=workers)


EXECUTORS = ExecutorRegistry()
"""The process-wide executor registry all backends register on."""


def register_executor(name: str) -> Callable[[type[ShardExecutor]], type[ShardExecutor]]:
    """Class decorator: register a :class:`ShardExecutor` under ``name``."""

    def decorate(cls: type[ShardExecutor]) -> type[ShardExecutor]:
        cls.kind = name
        EXECUTORS.register(name, cls)
        return cls

    return decorate


@register_executor("serial")
class SerialExecutor(ShardExecutor):
    """Inline execution — the degenerate, dispatch-free pool."""

    workers = 1

    def __init__(self, workers: int = 0) -> None:
        # serial ignores the worker knob; accepting it keeps the
        # registry's uniform ``cls(workers=...)`` construction honest
        del workers

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        self.run_calls += 1
        self.tasks_run += len(tasks)
        return [task() for task in tasks]


@register_executor("thread")
class ThreadExecutor(ShardExecutor):
    """A persistent thread pool over GIL-releasing shard kernels.

    Args:
        workers: Pool size; ``0`` picks :func:`default_workers`.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise DataModelError(f"workers must be >= 0, got {workers}")
        self.workers = workers if workers > 0 else default_workers()
        self._pool = None  # created lazily, so unused executors cost nothing
        self._obs = obs.get()

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        self.run_calls += 1
        self.tasks_run += len(tasks)
        if len(tasks) <= 1:
            # nothing to overlap; skip the dispatch round-trip
            return [task() for task in tasks]
        from concurrent.futures import wait

        telemetry = self._obs
        if telemetry.enabled:
            # measure submit -> start queue wait per task; the wrapper
            # preserves results and submission order exactly
            def timed(task: Callable[[], T], submitted: float) -> Callable[[], T]:
                def call() -> T:
                    telemetry.observe(
                        "engine.executor.queue_wait",
                        (time.perf_counter() - submitted) * 1000.0,
                    )
                    return task()

                return call

            tasks = [timed(task, time.perf_counter()) for task in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        # Let every task settle before raising: a caller that catches a
        # shard failure must not observe sibling workers still mutating
        # shard state mid-unwind.
        wait(futures)
        # Collect in submission order: determinism over completion order.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(executor: str = "serial", workers: int = 0) -> ShardExecutor:
    """Executor factory keyed by backend name.

    Args:
        executor: One of :data:`EXECUTOR_BACKENDS`.
        workers: Pool size for pooled backends (``0`` = one per core,
            capped); ignored by ``"serial"``.
    """
    return EXECUTORS.create(executor, workers)


# The process backend lives in its own module (shared-memory plumbing is
# sizable) and registers itself on import; importing it at the bottom
# avoids the executor<->procpool cycle the same way repro.api.registry
# handles strategies.
from repro.engine.procpool import ProcessExecutor  # noqa: E402

EXECUTOR_BACKENDS = tuple(EXECUTORS.names())
"""The executor kinds :func:`make_executor` accepts (sorted)."""
