"""The hybrid FP-MU strategy (Section IV-E / Algorithm 5).

MU's weakness is that it ignores every resource with fewer than ``omega``
posts — precisely the badly under-tagged ones.  FP-MU fixes this with a
*warm-up stage*: it first computes the total budget needed to lift every
resource to at least ``omega`` posts,

    ``b = min(B, Σ_i max(0, omega - c_i))``,

spends those ``b`` units as FP would, and then runs MU with the remaining
``B - b`` units (Algorithm 5).  A larger ``omega`` means a longer warm-up;
once the warm-up alone consumes the whole budget, FP-MU degenerates to FP
— the crossover visible in Fig 6(f).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.fewest_posts import FewestPostsFirst
from repro.allocation.most_unstable import MostUnstableFirst
from repro.api.registry import Param, register_strategy

__all__ = ["HybridFPMU"]


@register_strategy(
    "FP-MU",
    params={"omega": Param(int, DEFAULT_OMEGA, "MA window shared by warm-up and MU phase")},
)
@dataclass
class HybridFPMU(AllocationStrategy):
    """FP warm-up, then MU (Algorithm 5).

    Args:
        omega: MA window shared by the warm-up target and the MU phase.
    """

    omega: int = DEFAULT_OMEGA

    name: ClassVar[str] = "FP-MU"

    _fp: FewestPostsFirst = field(default_factory=FewestPostsFirst, init=False, repr=False)
    _mu: MostUnstableFirst | None = field(default=None, init=False, repr=False)
    _warmup_budget: int = field(default=0, init=False, repr=False)
    _delivered: int = field(default=0, init=False, repr=False)
    _delivered_posts: list[list[Post]] = field(default_factory=list, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        deficit = sum(max(0, self.omega - int(c)) for c in context.initial_counts)
        self._warmup_budget = min(context.budget, deficit)
        self._fp = FewestPostsFirst()
        self._fp.initialize(context)
        self._mu = None
        self._delivered = 0
        self._delivered_posts = [[] for _ in range(context.n)]

    # ------------------------------------------------------------------

    @property
    def in_warmup(self) -> bool:
        """Whether the FP warm-up stage is still running."""
        return self._mu is None and self._delivered < self._warmup_budget

    def _start_mu(self) -> None:
        """Switch phases: seed MU with counts and posts as of now."""
        context = self.context
        counts = context.initial_counts.copy()
        posts = []
        for index in range(context.n):
            delivered = self._delivered_posts[index]
            counts[index] += len(delivered)
            posts.append(list(context.initial_posts[index]) + delivered)
        mu = MostUnstableFirst(omega=self.omega)
        mu.initialize(
            AllocationContext(
                n=context.n,
                initial_counts=counts,
                initial_posts=posts,
                source=context.source,
                budget=context.budget - self._delivered,
                costs=context.costs,
            )
        )
        # Carry over exhaustion knowledge learned during warm-up.
        for index in self._exhausted:
            mu.mark_exhausted(index)
        self._mu = mu

    def choose(self) -> int | None:
        if self.in_warmup:
            index = self._fp.choose()
            if index is not None:
                return index
            # Warm-up cannot proceed (everything it wants is exhausted):
            # fall through to MU with whatever counts we reached.
        if self._mu is None:
            self._start_mu()
        assert self._mu is not None
        return self._mu.choose()

    def choose_batch(self, k: int) -> list[int]:
        if self.in_warmup:
            # Never plan past the warm-up budget: the phase switch must
            # happen at exactly the same delivery as in the scalar loop.
            plan = self._fp.choose_batch(min(k, self._warmup_budget - self._delivered))
            if plan:
                return plan
        if self._mu is None:
            self._start_mu()
        assert self._mu is not None
        return self._mu.choose_batch(k)

    def cancel_plan(self) -> None:
        if self._mu is None:
            self._fp.cancel_plan()
        else:
            self._mu.cancel_plan()

    def update(self, index: int, post: Post) -> None:
        if self._mu is None:
            self._fp.update(index, post)
            self._delivered_posts[index].append(post)
        else:
            self._mu.update(index, post)
        self._delivered += 1

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if self._mu is None:
            self._fp.mark_exhausted(index)
        else:
            self._mu.mark_exhausted(index)

    @property
    def warmup_budget(self) -> int:
        """The computed warm-up budget ``b`` (Algorithm 5, steps 1–3)."""
        return self._warmup_budget
