"""The strategy framework of Algorithm 1.

A strategy plugs three hooks into the runner's budget loop — INIT()
(:meth:`AllocationStrategy.initialize`), CHOOSE()
(:meth:`AllocationStrategy.choose`) and UPDATE()
(:meth:`AllocationStrategy.update`) — exactly as in the paper's
Algorithm 1.  One extra hook, :meth:`AllocationStrategy.mark_exhausted`,
handles a practicality of replayed datasets the paper glosses over: a
chosen resource may have no future posts left, in which case the runner
tells the strategy to stop proposing it (no budget is consumed).

The *information model* is part of the contract: a strategy sees only the
:class:`AllocationContext` — initial post counts, the initial posts
themselves, and the posts delivered to it during the run.  Stable rfds,
future posts and stable points are ground truth reserved for the offline
DP and the evaluator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.posts import Post
from repro.allocation.oracle import TaggerSource

__all__ = ["AllocationContext", "AllocationStrategy"]


@dataclass(frozen=True)
class AllocationContext:
    """Everything a practical strategy is allowed to observe at INIT time.

    Attributes:
        n: Number of resources.
        initial_counts: ``c`` — posts already received per resource
            (positional, read-only by convention).
        initial_posts: Per-resource initial post lists (the "January"
            posts).  MU/FP-MU need these to seed their MA trackers.
        source: The tagger source, exposed because the FC strategy
            delegates its choice to the taggers themselves.
        budget: Total reward units for the run (Algorithm 5's FP-MU
            splits this between its warm-up and MU phases).
        costs: Per-resource task cost in reward units (the paper's model
            is all-ones; the weighted-cost extension generalises it).
    """

    n: int
    initial_counts: np.ndarray
    initial_posts: Sequence[Sequence[Post]]
    source: TaggerSource
    budget: int = 0
    costs: np.ndarray | None = None

    def cost_of(self, index: int) -> int:
        """Task cost for ``index`` (1 under the paper's model)."""
        if self.costs is None:
            return 1
        return int(self.costs[index])


@dataclass
class AllocationStrategy(ABC):
    """Base class for incentive allocation strategies (Algorithm 1 hooks).

    Subclasses implement :meth:`choose`; most also override
    :meth:`initialize` and :meth:`update`.  The base class tracks the set
    of exhausted resources so subclasses can consult
    :meth:`is_exhausted` during selection.

    Class attributes:
        name: Short display name used across experiment reports
            ("FP", "MU", ...).
    """

    name: ClassVar[str] = "strategy"

    _context: AllocationContext | None = field(default=None, init=False, repr=False)
    _exhausted: set[int] = field(default_factory=set, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        """INIT() — called once before the budget loop.

        Subclasses overriding this must call ``super().initialize(context)``
        first so the shared bookkeeping is reset (strategies are reusable
        across runs).
        """
        self._context = context
        self._exhausted = set()

    @abstractmethod
    def choose(self) -> int | None:
        """CHOOSE() — the next resource to offer a post task for.

        Returns:
            A resource index, or ``None`` when the strategy has nothing
            left to propose (the runner then stops, possibly with budget
            unspent — e.g. MU once every eligible resource is exhausted).
        """

    def choose_batch(self, k: int) -> list[int]:
        """Batched CHOOSE(): plan up to ``k`` consecutive choices at once.

        The contract between strategy and runner:

        * the returned indices must be exactly what ``k`` iterations of
          the scalar ``choose()``/``update()`` interleaving would have
          produced, assuming every choice is fulfilled by one delivered
          post — so a batched run's trace is byte-identical to the
          scalar run's;
        * the runner attempts deliveries for a *prefix* of the list, in
          order, calling :meth:`update` after each success;
        * on the first failure (source exhausted, offer refused, task
          unaffordable) the runner fires the usual hook
          (:meth:`mark_exhausted` / :meth:`notify_refusal`), then calls
          :meth:`cancel_plan` to discard the undelivered suffix, and
          re-plans.

        The base implementation returns at most one choice, which makes
        the batched loop degenerate to Algorithm 1's scalar loop — always
        correct.  Strategies whose CHOOSE depends only on delivery counts
        (FP, RR) override it with a vectorized planner; MU overrides it
        with a bounded lookahead that stays exact (see each strategy).
        """
        index = self.choose()
        return [] if index is None else [index]

    def cancel_plan(self) -> None:
        """Discard any not-yet-delivered choices from :meth:`choose_batch`.

        Called by the runner after a mid-batch failure.  Afterwards the
        strategy's state must be exactly what the scalar loop would have
        left behind given the deliveries (and the failure) that actually
        happened.  The base class plans no lookahead, so this is a no-op.
        """

    def update(self, index: int, post: Post) -> None:
        """UPDATE() — called after a task on ``index`` completed with ``post``."""

    def mark_exhausted(self, index: int) -> None:
        """The runner observed that ``index`` has no future posts left.

        Called instead of :meth:`update` when delivery failed; the
        strategy must stop proposing this resource.  Subclasses that
        keep per-resource structures should override and call super.
        """
        self._exhausted.add(index)

    def notify_refusal(self, index: int) -> None:
        """A tagger declined an offered task on ``index``.

        Only fired by the preference-aware extension (the paper's base
        model has no refusals).  Default: ignore.  Strategies that hold a
        "pending" offer should reconsider it here, otherwise they will
        keep proposing a resource whose taggers never accept.
        """

    def is_exhausted(self, index: int) -> bool:
        """Whether ``index`` was marked exhausted this run."""
        return index in self._exhausted

    @property
    def context(self) -> AllocationContext:
        """The current run's context.

        Raises:
            RuntimeError: If the strategy was never initialised.
        """
        if self._context is None:
            raise RuntimeError(f"{type(self).__name__} used before initialize()")
        return self._context
