"""Allocation results: traces and assignment vectors.

The runner records the *order* in which post tasks were delivered, not
just the final assignment vector ``x`` — evaluation needs the order to
score intermediate budgets (every "… vs budget" curve in Fig 6 comes from
one trace scored at many checkpoints) and to attribute wasted tasks to
the post count at delivery time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import AllocationError

__all__ = ["AllocationTrace", "assignment_from_order"]


def assignment_from_order(order: list[int] | np.ndarray, n: int) -> np.ndarray:
    """Fold a delivery order into the assignment vector ``x``.

    Args:
        order: Resource index per delivered task.
        n: Number of resources.

    Returns:
        ``int64`` array with ``x[i]`` = tasks delivered to resource ``i``.
    """
    x = np.zeros(n, dtype=np.int64)
    for index in order:
        x[index] += 1
    return x


@dataclass(frozen=True)
class AllocationTrace:
    """The full record of one allocation run.

    Attributes:
        strategy_name: Which strategy produced the trace.
        n: Number of resources.
        budget: Reward units the run was asked to spend.
        order: Resource index per delivered task, in delivery order.
        spend: Reward units consumed per delivered task (all ones under
            the paper's model; the weighted-cost extension varies it).
        refusals: Offered tasks that taggers declined (always 0 outside
            the preference-aware extension).
    """

    strategy_name: str
    n: int
    budget: int
    order: tuple[int, ...]
    spend: tuple[int, ...]
    refusals: int = 0

    def __post_init__(self) -> None:
        if len(self.order) != len(self.spend):
            raise AllocationError("order and spend must have equal length")

    @property
    def tasks_delivered(self) -> int:
        """Number of completed post tasks."""
        return len(self.order)

    @property
    def budget_spent(self) -> int:
        """Reward units actually consumed (≤ budget; < on early exhaustion)."""
        return int(sum(self.spend))

    @property
    def x(self) -> np.ndarray:
        """The assignment vector ``x`` (Definition 11)."""
        return assignment_from_order(list(self.order), self.n)

    def prefix_x(self, max_spend: int) -> np.ndarray:
        """``x`` as it stood when cumulative spend first reached ``max_spend``.

        Used to score one trace at many budget checkpoints: the prefix at
        checkpoint ``b`` is exactly what the strategy would have delivered
        with budget ``b`` (online strategies never revisit decisions).
        """
        x = np.zeros(self.n, dtype=np.int64)
        spent = 0
        for index, cost in zip(self.order, self.spend):
            if spent + cost > max_spend:
                break
            spent += cost
            x[index] += 1
        return x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationTrace({self.strategy_name!r}, delivered={self.tasks_delivered}, "
            f"budget={self.budget_spent}/{self.budget})"
        )
