"""The Round Robin strategy (RR, Section IV-B / Algorithm 2).

RR cycles through the resources in positional order, ignoring post counts
and stability alike.  It needs almost no state and gives every resource
roughly the same number of post tasks — better than FC (it does not chase
popularity) but blind to which resources actually need help.

The paper's pseudo-code starts its cycle at resource 2 due to a
``(l mod n) + 1`` quirk; we start at resource 0.  The cycle origin has no
effect on any reported metric once ``B >= n``.

RR's CHOOSE is post-content-free, so :meth:`RoundRobin.choose_batch`
plans a whole chunk by tiling the active-resource ring — byte-identical
to the scalar walk at any batch size.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.posts import Post
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.api.registry import register_strategy

__all__ = ["RoundRobin"]


@register_strategy("RR")
@dataclass
class RoundRobin(AllocationStrategy):
    """CHOOSE() walks resources cyclically, skipping exhausted ones."""

    name: ClassVar[str] = "RR"

    _next: int = field(default=0, init=False, repr=False)
    _planned: deque[int] = field(default_factory=deque, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._next = 0
        self._planned = deque()

    def choose(self) -> int | None:
        n = self.context.n
        if len(self._exhausted) >= n:
            return None
        for _ in range(n):
            index = self._next
            self._next = (self._next + 1) % n
            if not self.is_exhausted(index):
                return index
        return None

    def choose_batch(self, k: int) -> list[int]:
        if k == 1:
            return super().choose_batch(k)
        n = self.context.n
        active = np.array(
            [i for i in range(n) if not self.is_exhausted(i)], dtype=np.int64
        )
        if len(active) == 0:
            return []
        # The ring, rotated so the walk resumes at the cursor, tiled to k.
        start = int(np.searchsorted(active, self._next))
        ring = np.concatenate([active[start:], active[:start]])
        plan = np.tile(ring, -(-k // len(ring)))[:k].tolist()
        self._next = (plan[-1] + 1) % n
        self._planned = deque(plan)
        return plan

    def update(self, index: int, post: Post) -> None:
        if self._planned and self._planned[0] == index:
            self._planned.popleft()

    def cancel_plan(self) -> None:
        if not self._planned:
            return
        # The scalar walk would have consumed the failed item's cycle
        # slot before learning of the failure: resume just past it.
        self._next = (self._planned[0] + 1) % self.context.n
        self._planned = deque()
