"""The Round Robin strategy (RR, Section IV-B / Algorithm 2).

RR cycles through the resources in positional order, ignoring post counts
and stability alike.  It needs almost no state and gives every resource
roughly the same number of post tasks — better than FC (it does not chase
popularity) but blind to which resources actually need help.

The paper's pseudo-code starts its cycle at resource 2 due to a
``(l mod n) + 1`` quirk; we start at resource 0.  The cycle origin has no
effect on any reported metric once ``B >= n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.allocation.base import AllocationContext, AllocationStrategy

__all__ = ["RoundRobin"]


@dataclass
class RoundRobin(AllocationStrategy):
    """CHOOSE() walks resources cyclically, skipping exhausted ones."""

    name: ClassVar[str] = "RR"

    _next: int = field(default=0, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._next = 0

    def choose(self) -> int | None:
        n = self.context.n
        if len(self._exhausted) >= n:
            return None
        for _ in range(n):
            index = self._next
            self._next = (self._next + 1) % n
            if not self.is_exhausted(index):
                return index
        return None
