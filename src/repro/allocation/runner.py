"""The budget loop of Algorithm 1.

:class:`IncentiveRunner` wires a strategy to a tagger source and spends
the budget one reward unit at a time::

    while budget remains:
        i0   <- strategy.choose()
        post <- source.next_post(i0)        # a tagger completes the task
        strategy.update(i0, post)
        x[i0] += 1;  budget -= cost(i0)

Deviations from the pseudo-code, all forced by replaying a finite
dataset and all documented in DESIGN.md:

* if the source is exhausted for the chosen resource, the runner calls
  ``strategy.mark_exhausted`` and retries without consuming budget;
* if the strategy returns ``None`` (nothing left to propose) the run
  stops early with the budget partially spent;
* optional per-resource task *costs* and tagger *acceptance
  probabilities* implement the paper's Section VI future-work items.

``run(..., batch_size=k)`` switches the loop to the batched CHOOSE
protocol: the strategy plans up to ``k`` choices at once
(:meth:`~repro.allocation.base.AllocationStrategy.choose_batch`),
deliveries proceed per post, and an optional
:class:`~repro.allocation.monitor.StabilityMonitor` receives completed
posts one *chunk* at a time — which lets the engine-backed monitor
amortize its vectorized bank update across the whole chunk.  The batched
protocol is exact, so traces are byte-identical at every batch size.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.core.dataset import DatasetSplit
from repro.core.errors import AllocationError, BudgetError
from repro.core.posts import Post
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.budget import AllocationTrace
from repro.allocation.monitor import StabilityMonitor
from repro.allocation.oracle import GenerativeTaggerSource, ReplayTaggerSource, TaggerSource

__all__ = ["IncentiveRunner"]


class IncentiveRunner:
    """Executes allocation strategies against a tagger source.

    Build one with :meth:`replay` (the paper's evaluation setup) or
    :meth:`generative` (open-ended simulation), then call :meth:`run`
    once per strategy — each run gets a fresh, independent source.

    Args:
        n: Number of resources.
        initial_counts: ``c`` vector.
        initial_posts: Per-resource initial posts (observable by
            strategies).
        source_factory: Zero-argument callable producing a fresh
            :class:`TaggerSource` per run.
    """

    def __init__(
        self,
        n: int,
        initial_counts: np.ndarray,
        initial_posts: Sequence[Sequence[Post]],
        source_factory,
    ) -> None:
        if len(initial_counts) != n or len(initial_posts) != n:
            raise AllocationError("initial_counts/initial_posts must have length n")
        self.n = n
        self.initial_counts = np.asarray(initial_counts, dtype=np.int64)
        self.initial_posts = initial_posts
        self._source_factory = source_factory

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def replay(cls, split: DatasetSplit) -> IncentiveRunner:
        """A runner that replays a dataset split (Section V-A setup)."""
        initial_posts = [split.initial_posts(i) for i in range(split.n)]
        return cls(
            n=split.n,
            initial_counts=split.initial_counts,
            initial_posts=initial_posts,
            source_factory=lambda: ReplayTaggerSource(split),
        )

    @classmethod
    def generative(
        cls,
        initial_counts: np.ndarray,
        initial_posts: Sequence[Sequence[Post]],
        post_factory,
        free_chooser=None,
    ) -> IncentiveRunner:
        """A runner backed by a generative tagger model (unbounded posts)."""
        return cls(
            n=len(initial_counts),
            initial_counts=initial_counts,
            initial_posts=initial_posts,
            source_factory=lambda: GenerativeTaggerSource(post_factory, free_chooser),
        )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def run(
        self,
        strategy: AllocationStrategy,
        budget: int,
        *,
        costs: np.ndarray | None = None,
        acceptance: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        strict: bool = False,
        batch_size: int = 1,
        monitor: StabilityMonitor | None = None,
    ) -> AllocationTrace:
        """Spend ``budget`` reward units through ``strategy``.

        Args:
            strategy: The allocation strategy (re-initialised here, so
                instances are reusable across runs).
            budget: Reward units available, ``>= 0``.
            costs: Optional per-resource task costs (``int``, ``>= 1``);
                defaults to the paper's one-unit-per-task model.
            acceptance: Optional per-resource probability that an offered
                task is accepted by a tagger (the user-preference
                extension).  Refused offers consume no budget.
            rng: Required when ``acceptance`` is given.
            strict: If True, raise :class:`BudgetError` when the source
                cannot possibly serve the full budget (replay only).
            batch_size: CHOOSE() chunk size.  ``1`` is the paper's scalar
                Algorithm 1 loop; larger values plan through
                :meth:`~repro.allocation.base.AllocationStrategy.choose_batch`
                and feed the monitor one chunk at a time.  Traces are
                byte-identical for every value (the batched protocol is
                exact), so this is purely a throughput knob.
            monitor: Optional :class:`StabilityMonitor` fed every
                delivered post.  Monitors only observe — attaching one
                never changes the trace.

        Returns:
            The completed :class:`AllocationTrace`.

        Raises:
            BudgetError: On negative budget, or under ``strict`` when the
                replayable posts cannot cover it.
            AllocationError: If ``acceptance`` is supplied without a rng,
                ``batch_size`` is not positive, or a strategy proposes an
                out-of-range resource.
        """
        if budget < 0:
            raise BudgetError(f"budget must be non-negative, got {budget}")
        if acceptance is not None and rng is None:
            raise AllocationError("acceptance simulation requires an rng")
        if batch_size < 1:
            raise AllocationError(f"batch_size must be positive, got {batch_size}")
        if costs is not None:
            costs = np.asarray(costs, dtype=np.int64)
            if len(costs) != self.n:
                raise AllocationError("costs must have length n")
            if costs.min() < 1:
                raise AllocationError("task costs must be >= 1 reward unit")

        source: TaggerSource = self._source_factory()
        if strict and source.total_remaining is not None and source.total_remaining < budget:
            raise BudgetError(
                f"budget {budget} exceeds the {source.total_remaining} replayable posts"
            )

        context = AllocationContext(
            n=self.n,
            initial_counts=self.initial_counts.copy(),
            initial_posts=self.initial_posts,
            source=source,
            budget=budget,
            costs=costs,
        )
        strategy.initialize(context)
        if monitor is not None:
            monitor.begin(self.n, self.initial_posts)

        order: list[int] = []
        spend: list[int] = []
        refusals = 0
        remaining = budget
        # A full pass of mark_exhausted over every resource is the most a
        # well-behaved strategy can need between two deliveries; 2n+1
        # consecutive non-delivering iterations therefore indicates a
        # strategy that keeps proposing dead resources.
        fruitless = 0
        telemetry = obs.get()
        while remaining > 0:
            if telemetry.enabled:
                started = time.perf_counter()
                plan = strategy.choose_batch(min(batch_size, remaining))
                telemetry.observe(
                    "alloc.choose_batch", (time.perf_counter() - started) * 1000.0
                )
                telemetry.count("alloc.choose_calls")
                telemetry.count("alloc.chosen", len(plan))
            else:
                plan = strategy.choose_batch(min(batch_size, remaining))
            if not plan:
                break
            chunk: list[tuple[int, Post]] = []
            aborted = False
            for index in plan:
                if not 0 <= index < self.n:
                    raise AllocationError(
                        f"{strategy.name} proposed resource {index}, "
                        f"valid range is [0, {self.n})"
                    )
                cost = int(costs[index]) if costs is not None else 1
                if cost > remaining:
                    strategy.mark_exhausted(index)  # unaffordable ≙ unavailable this run
                    fruitless += 1
                    aborted = True
                    break
                if acceptance is not None:
                    assert rng is not None
                    if rng.random() >= acceptance[index]:
                        # A refusal is not evidence of exhaustion — do not
                        # count it as fruitless, only against the refusal cap.
                        refusals += 1
                        strategy.notify_refusal(index)
                        if refusals > 100 * budget + 100:
                            raise AllocationError(
                                "taggers refused far more offers than the budget; "
                                "acceptance probabilities are likely degenerate"
                            )
                        aborted = True
                        break
                post = source.next_post(index)
                if post is None:
                    strategy.mark_exhausted(index)
                    fruitless += 1
                    aborted = True
                    break
                fruitless = 0
                strategy.update(index, post)
                chunk.append((index, post))
                order.append(index)
                spend.append(cost)
                remaining -= cost
            if monitor is not None and chunk:
                monitor.observe_batch(chunk)
            if aborted:
                strategy.cancel_plan()
                if fruitless > 2 * self.n + 1:
                    break

        if telemetry.enabled:
            telemetry.count("alloc.delivered", len(order))
            if refusals:
                telemetry.count("alloc.refusals", refusals)
        return AllocationTrace(
            strategy_name=strategy.name,
            n=self.n,
            budget=budget,
            order=tuple(order),
            spend=tuple(spend),
            refusals=refusals,
        )
