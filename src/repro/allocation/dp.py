"""The theoretically optimal DP allocation (Section III-D / Algorithm 6).

DP assumes *full future knowledge*: for every resource the posts it would
receive and its stable rfd are known, so the gain table
``g_i[x] = q_i(c_i + x)`` can be computed for every ``x``.  The recurrence

    ``Q(b, l) = max_{0 <= x_l <= b}  Q(b - x_l, l - 1) + q_l(c_l + x_l)``

then yields the assignment maximising total quality with ``Σ x_i = B``
exactly (Definition 11 — note quality is *not* monotone in the number of
posts, so the equality constraint is meaningful).

Three implementations:

* :func:`solve_dp` — NumPy-vectorised inner maximisation; the production
  path.
* :func:`solve_dp_reference` — the paper's triple loop, verbatim; kept
  for the Fig 6(g)/(h) runtime reproduction and as a cross-check.
* :func:`brute_force_optimal` — exhaustive enumeration for tiny
  instances; the optimality oracle in tests.

All three respect per-resource caps (a replayed resource cannot receive
more tasks than it has future posts), which Algorithm 6 leaves implicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.errors import BudgetError
from repro.core.quality import QualityProfile

__all__ = [
    "DPResult",
    "gains_from_profiles",
    "solve_dp",
    "solve_dp_reference",
    "brute_force_optimal",
]


@dataclass(frozen=True)
class DPResult:
    """An optimal allocation.

    Attributes:
        value: The optimal *total* quality ``Σ_i q_i(c_i + x_i)``
            (Eq. 13; divide by ``n`` for the mean form of Eq. 10).
        x: The optimal assignment vector.
        budget: The budget the problem was solved for.
    """

    value: float
    x: np.ndarray
    budget: int

    @property
    def mean_quality(self) -> float:
        """``q(R, c + x)`` — the Definition 10 average."""
        return self.value / len(self.x)


def gains_from_profiles(
    profiles: Sequence[QualityProfile],
    initial_counts: np.ndarray,
    budget: int,
) -> list[np.ndarray]:
    """Build DP gain tables from quality profiles.

    Args:
        profiles: One :class:`QualityProfile` per resource (these embody
            the future knowledge DP requires).
        initial_counts: ``c`` vector.
        budget: Budget ``B`` (caps each gain table at ``B + 1`` entries).

    Returns:
        ``gains[i][x] = q_i(c_i + x)`` with ``len(gains[i]) - 1`` equal to
        the per-resource task cap.
    """
    return [
        profile.gain_array(int(initial_counts[i]), budget)
        for i, profile in enumerate(profiles)
    ]


def _check_feasible(gains: Sequence[np.ndarray], budget: int) -> None:
    if budget < 0:
        raise BudgetError(f"budget must be non-negative, got {budget}")
    capacity = sum(len(g) - 1 for g in gains)
    if capacity < budget:
        raise BudgetError(
            f"budget {budget} exceeds total task capacity {capacity} "
            "(replay has too few future posts)"
        )


def solve_dp(gains: Sequence[np.ndarray], budget: int) -> DPResult:
    """Algorithm 6 with a NumPy-vectorised inner maximisation.

    Args:
        gains: Per-resource gain tables (see :func:`gains_from_profiles`).
        budget: Reward units ``B``.

    Returns:
        The optimal :class:`DPResult`.

    Raises:
        BudgetError: If ``budget`` is negative or exceeds total capacity.
    """
    _check_feasible(gains, budget)
    n = len(gains)
    neg = -np.inf

    # Base case l = 1: Q(b, 1) = q_1(c_1 + b), infeasible past the cap.
    q = np.full(budget + 1, neg, dtype=np.float64)
    first_cap = min(len(gains[0]) - 1, budget)
    q[: first_cap + 1] = gains[0][: first_cap + 1]
    choices = np.zeros((n, budget + 1), dtype=np.int32)
    choices[0, : first_cap + 1] = np.arange(first_cap + 1)

    for l in range(1, n):
        gain = np.asarray(gains[l], dtype=np.float64)
        cap = min(len(gain) - 1, budget)
        # Pad with `cap` leading -inf entries so every b has a uniform
        # window Q(b-cap .. b); out-of-range prefixes are infeasible.
        padded = np.concatenate([np.full(cap, neg), q])
        # windows[b, ::-1][x] = padded[b + cap - x] = Q(b - x), x = 0..cap.
        windows = np.lib.stride_tricks.sliding_window_view(padded, cap + 1)
        candidates = windows[:, ::-1] + gain[: cap + 1]
        best_x = np.argmax(candidates, axis=1)  # ties -> smallest x, like the reference
        q = candidates[np.arange(budget + 1), best_x]
        choices[l] = best_x

    value = float(q[budget])
    if value == neg:  # pragma: no cover - guarded by _check_feasible
        raise BudgetError(f"no feasible assignment spends exactly {budget} units")

    x = np.zeros(n, dtype=np.int64)
    b = budget
    for l in range(n - 1, -1, -1):
        x[l] = choices[l, b]
        b -= int(x[l])
    return DPResult(value=value, x=x, budget=budget)


def solve_dp_reference(gains: Sequence[np.ndarray], budget: int) -> DPResult:
    """Algorithm 6 as printed: pure-Python triple loop.

    Identical results to :func:`solve_dp`; kept for the runtime figures
    (the paper benchmarks this shape of implementation) and as a
    vectorisation cross-check in tests.
    """
    _check_feasible(gains, budget)
    n = len(gains)
    neg = float("-inf")

    q_prev = [neg] * (budget + 1)
    first_cap = min(len(gains[0]) - 1, budget)
    for b in range(first_cap + 1):
        q_prev[b] = float(gains[0][b])
    choices = [[0] * (budget + 1) for _ in range(n)]
    for b in range(first_cap + 1):
        choices[0][b] = b

    for l in range(1, n):
        gain = gains[l]
        cap = len(gain) - 1
        q_next = [neg] * (budget + 1)
        row = choices[l]
        for b in range(budget + 1):
            best_value = neg
            best_x = 0
            for x in range(min(cap, b) + 1):
                prev = q_prev[b - x]
                if prev == neg:
                    continue
                candidate = prev + float(gain[x])
                if candidate > best_value:
                    best_value = candidate
                    best_x = x
            q_next[b] = best_value
            row[b] = best_x
        q_prev = q_next

    x = np.zeros(n, dtype=np.int64)
    b = budget
    for l in range(n - 1, -1, -1):
        x[l] = choices[l][b]
        b -= int(x[l])
    return DPResult(value=float(q_prev[budget]), x=x, budget=budget)


def brute_force_optimal(gains: Sequence[np.ndarray], budget: int) -> DPResult:
    """Exhaustive search over all exact-spend assignments (test oracle).

    Exponential — intended for ``n * budget`` in the dozens.
    """
    _check_feasible(gains, budget)
    n = len(gains)
    best_value = float("-inf")
    best_x: tuple[int, ...] = ()

    def recurse(l: int, remaining: int, acc: float, partial: tuple[int, ...]) -> None:
        nonlocal best_value, best_x
        if l == n - 1:
            if remaining <= len(gains[l]) - 1:
                total = acc + float(gains[l][remaining])
                if total > best_value:
                    best_value = total
                    best_x = partial + (remaining,)
            return
        for x in range(min(len(gains[l]) - 1, remaining) + 1):
            recurse(l + 1, remaining - x, acc + float(gains[l][x]), partial + (x,))

    recurse(0, budget, 0.0, ())
    if not best_x and n > 0 and best_value == float("-inf"):
        raise BudgetError(f"no feasible assignment spends exactly {budget} units")
    return DPResult(value=best_value, x=np.array(best_x, dtype=np.int64), budget=budget)
