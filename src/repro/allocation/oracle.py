"""Tagger sources: where completed post tasks come from.

The paper's evaluation (Section V-A) replays real posts: a strategy that
allocates a post task to resource ``r_i`` receives ``r_i``'s next
yet-unseen post from the dataset.  :class:`ReplayTaggerSource` implements
exactly that, including the *free-choice stream* — the global
timestamp-order of future posts — that models what taggers do when nobody
steers them (the FC baseline).

:class:`GenerativeTaggerSource` is the open-ended alternative for
simulation studies: posts are synthesised on demand by a caller-supplied
factory (the :mod:`repro.simulate` tagger models plug in here), so budgets
are unbounded by dataset size.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.dataset import DatasetSplit
from repro.core.posts import Post

__all__ = ["TaggerSource", "ReplayTaggerSource", "GenerativeTaggerSource"]


class TaggerSource(ABC):
    """Produces completed post tasks for chosen resources.

    A source is stateful and single-use: each allocation run consumes a
    fresh source (the runner takes care of this).
    """

    @abstractmethod
    def next_post(self, index: int) -> Post | None:
        """Complete one post task on resource ``index``.

        Returns:
            The new post, or ``None`` if the resource is exhausted (a
            replay source ran out of that resource's future posts).
            Returning ``None`` does not consume anything.
        """

    @abstractmethod
    def free_choice(self) -> int | None:
        """The resource a *freely choosing* tagger would tag next.

        Returns:
            A resource index, or ``None`` when no tagger would show up at
            all (replay: every future post already consumed).
        """

    def remaining(self, index: int) -> int | None:
        """Posts still available for ``index``; ``None`` means unbounded."""
        return None

    @property
    def total_remaining(self) -> int | None:
        """Total posts still available; ``None`` means unbounded."""
        return None


class ReplayTaggerSource(TaggerSource):
    """Replays the future posts of a :class:`~repro.core.dataset.DatasetSplit`.

    Task completion on resource ``i`` reveals ``future[i]`` in order.
    Free choice walks the global arrival order, skipping posts that some
    directed task already consumed — so a hybrid of directed and free
    tagging never hands out the same post twice.

    Args:
        split: The frozen dataset to replay.
    """

    def __init__(self, split: DatasetSplit) -> None:
        self._future = split.future
        self._positions = [0] * len(split.future)
        # Pair each free-choice entry with its per-resource offset so the
        # cursor can tell "already consumed by a directed task" apart
        # from "still pending".
        seen: dict[int, int] = {}
        order: list[tuple[int, int]] = []
        for index in split.free_choice_order:
            offset = seen.get(index, 0)
            order.append((index, offset))
            seen[index] = offset + 1
        self._order = order
        self._cursor = 0
        self._total_remaining = sum(len(posts) for posts in split.future)

    def next_post(self, index: int) -> Post | None:
        position = self._positions[index]
        if position >= len(self._future[index]):
            return None
        self._positions[index] = position + 1
        self._total_remaining -= 1
        return self._future[index][position]

    def free_choice(self) -> int | None:
        while self._cursor < len(self._order):
            index, offset = self._order[self._cursor]
            if offset < self._positions[index]:
                # This arrival was already delivered to a directed task.
                self._cursor += 1
                continue
            return index
        return None

    def remaining(self, index: int) -> int | None:
        return len(self._future[index]) - self._positions[index]

    @property
    def total_remaining(self) -> int | None:
        return self._total_remaining


class GenerativeTaggerSource(TaggerSource):
    """Synthesises posts on demand (unbounded crowdsourcing simulation).

    Args:
        post_factory: Called with a resource index; returns a fresh post
            for that resource.  The :mod:`repro.simulate` tagger models
            provide such factories.
        free_chooser: Called with no arguments; returns the resource a
            freely choosing tagger would pick (e.g. popularity-weighted
            sampling).  Required only if the FC strategy is used.
    """

    def __init__(
        self,
        post_factory: Callable[[int], Post],
        free_chooser: Callable[[], int] | None = None,
    ) -> None:
        self._post_factory = post_factory
        self._free_chooser = free_chooser

    def next_post(self, index: int) -> Post | None:
        return self._post_factory(index)

    def free_choice(self) -> int | None:
        if self._free_chooser is None:
            raise NotImplementedError(
                "this generative source has no free-choice model; pass free_chooser"
            )
        return self._free_chooser()


def popularity_chooser(
    weights: Sequence[float] | np.ndarray, rng: np.random.Generator
) -> Callable[[], int]:
    """A free-choice model: sample resources ∝ ``weights``.

    Models the empirical behaviour behind Fig 1(b): taggers pile onto
    popular resources.  Use with :class:`GenerativeTaggerSource`.

    Args:
        weights: Non-negative popularity weights, one per resource.
        rng: Source of randomness.

    Returns:
        A zero-argument callable returning resource indices.
    """
    probabilities = np.asarray(weights, dtype=np.float64)
    if probabilities.min() < 0:
        raise ValueError("popularity weights must be non-negative")
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("popularity weights must not all be zero")
    probabilities = probabilities / total

    def choose() -> int:
        return int(rng.choice(len(probabilities), p=probabilities))

    return choose
