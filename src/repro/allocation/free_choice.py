"""The Free Choice strategy (FC, Section IV-A).

FC is the status-quo baseline: taggers pick whatever resource they like,
and CHOOSE() simply returns that pick.  Under replay this means consuming
the dataset's future posts in their real arrival order — which is why FC
reproduces the paper's headline pathology: the crowd piles onto popular,
already over-tagged resources and roughly half the budget is wasted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.api.registry import register_strategy

__all__ = ["FreeChoice"]


@register_strategy("FC")
@dataclass
class FreeChoice(AllocationStrategy):
    """CHOOSE() returns whichever resource the next tagger wants to tag.

    The choice is delegated to the tagger source: a replay source yields
    the true arrival stream; a generative source samples from its
    free-choice model (e.g. popularity-weighted).
    """

    name: ClassVar[str] = "FC"

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)

    def choose(self) -> int | None:
        return self.context.source.free_choice()
