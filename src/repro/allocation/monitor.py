"""Online stability monitoring for allocation runs and campaigns.

A :class:`StabilityMonitor` watches the posts a run delivers and tracks
each resource's *observed* MA score — the deployable signal behind
adaptive stopping (no ground truth involved).  Monitors never feed back
into allocation by themselves; consumers (the runner, the campaign, the
CLI) query them and act.  The interface answers every question the
adaptive-stop loop asks each epoch:

* :meth:`~StabilityMonitor.stable_indices` — who looks stable right now;
* :meth:`~StabilityMonitor.drain_newly_stable` — who crossed ``tau``
  since the *previous* drain (exactly-once, the retirement feed);
* :meth:`~StabilityMonitor.observed_counts` — a resource's live tag
  frequency table (drives worker imitation / quality-model dynamics);
* :meth:`~StabilityMonitor.ma_scores` — every resource's observed MA.

Three backends implement it:

* :class:`TrackerStabilityMonitor` — one scalar
  :class:`~repro.core.stability.StabilityTracker` per resource, updated
  post by post; crossings surface immediately (``batched = False``).
* :class:`BankStabilityMonitor` — the vectorized
  :class:`~repro.engine.columnar.StabilityBank`; delivery chunks
  coalesce into batched ingests, crossings surface at flush granularity
  (``batched = True``).
* :class:`ShardedBankStabilityMonitor` — N independent banks behind the
  :class:`~repro.engine.shard.ShardedStabilityBank` hash router, for
  campaigns whose resource population outgrows one dense count block.

Pick one through :func:`make_monitor`; every consumer shares the same
factory, so ``"tracker"``/``"engine"``/``"sharded"`` mean the same thing
everywhere.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import ClassVar

from repro import obs
from repro.core.errors import AllocationError
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, DEFAULT_TAU, StabilityTracker

__all__ = [
    "StabilityMonitor",
    "TrackerStabilityMonitor",
    "BankStabilityMonitor",
    "ShardedBankStabilityMonitor",
    "MONITOR_BACKENDS",
    "make_monitor",
]

MONITOR_BACKENDS = ("tracker", "engine", "sharded")
"""The backend names :func:`make_monitor` accepts."""


class StabilityMonitor(ABC):
    """Observes delivered posts; answers "which resources look stable?".

    Class attributes:
        batched: Whether crossings are detected at batch granularity
            (engine-backed monitors) instead of per post.  Consumers that
            retire stable resources use this to pick their drain cadence:
            per-post for exact scalar semantics, per-epoch for the
            amortized fast path.
    """

    batched: ClassVar[bool] = False

    @abstractmethod
    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        """Reset for a run over ``n`` resources seeded with their initial posts."""

    @abstractmethod
    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        """Ingest one chunk of completed ``(resource index, post)`` tasks."""

    @abstractmethod
    def stable_indices(self) -> list[int]:
        """Resources whose observed MA has crossed ``tau``, ascending."""

    @abstractmethod
    def drain_newly_stable(self) -> list[int]:
        """Indices that crossed ``tau`` since the previous drain, ascending.

        Exactly-once semantics: an index appears in precisely one drain
        over the monitor's lifetime (resources seeded stable by
        :meth:`begin` appear in the first).  The union of all drains
        always equals :meth:`stable_indices`.
        """

    @abstractmethod
    def observed_counts(self, index: int) -> dict[str, int]:
        """A copy of the resource's observed tag counts ``h(·, k)``.

        Includes the initial posts and every delivery observed so far —
        the live frequency table that drives worker imitation dynamics.
        """

    @abstractmethod
    def ma_scores(self) -> list[float]:
        """Every resource's observed MA score, ``nan`` while ``k < omega``."""

    @property
    def stable_count(self) -> int:
        """Number of observed-stable resources so far."""
        return len(self.stable_indices())

    def close(self) -> None:
        """Release any pooled resources (no-op for most backends)."""


class TrackerStabilityMonitor(StabilityMonitor):
    """Scalar baseline: one per-resource tracker, updated per post."""

    def __init__(
        self, omega: int = DEFAULT_OMEGA, tau: float | None = DEFAULT_TAU
    ) -> None:
        self.omega = omega
        self.tau = tau
        self._obs = obs.get()
        self._trackers: list[StabilityTracker] = []
        self._pending: list[int] = []
        self._announced: set[int] = set()

    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        if len(initial_posts) != n:
            raise AllocationError("initial_posts must have length n")
        self._trackers = [StabilityTracker(self.omega, self.tau) for _ in range(n)]
        self._pending = []
        self._announced = set()
        for index, (tracker, posts) in enumerate(zip(self._trackers, initial_posts)):
            tracker.add_posts(posts)
            if tracker.is_stable:
                self._announced.add(index)
                self._pending.append(index)

    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        trackers = self._trackers
        announced = self._announced
        for index, post in deliveries:
            tracker = trackers[index]
            tracker.add_post(post.tags)
            if tracker.is_stable and index not in announced:
                announced.add(index)
                self._pending.append(index)

    def stable_indices(self) -> list[int]:
        return [i for i, tracker in enumerate(self._trackers) if tracker.is_stable]

    def drain_newly_stable(self) -> list[int]:
        drained = sorted(self._pending)
        self._pending = []
        telemetry = self._obs
        if telemetry.enabled:
            telemetry.count("monitor.drains")
            if drained:
                telemetry.count("monitor.newly_stable", len(drained))
        return drained

    def observed_counts(self, index: int) -> dict[str, int]:
        return self._trackers[index].frequency_table().counts()

    def ma_scores(self) -> list[float]:
        return [
            math.nan if (score := tracker.ma_score) is None else score
            for tracker in self._trackers
        ]


def _encode_buffer(bank, buf_rows: list, buf_tags: list, buf_times: list):
    """Build one CSR :class:`EventBatch` from a buffer, pre-interned.

    The hot path skips :class:`~repro.engine.events.TagEvent` entirely:
    rows were interned up front, post tag sets are duplicate-free by
    construction, and the batch is built directly against ``bank``'s
    interners — leaving tag interning as the only per-event Python work.
    All interning happens here, on the caller's thread, so the returned
    batch can be handed to a worker that runs the pure-NumPy ingest
    kernel without touching the interners.

    Returns the encoded :class:`~repro.engine.events.EventBatch`, or
    ``None`` for an empty buffer.
    """
    from itertools import chain

    import numpy as np

    from repro.engine.events import EventBatch

    n = len(buf_rows)
    if n == 0:
        return None
    lengths = np.fromiter(map(len, buf_tags), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    tag_ids = bank.tags.intern_all(list(chain.from_iterable(buf_tags)))
    return EventBatch(
        resources=np.fromiter(buf_rows, dtype=np.int64, count=n),
        indptr=indptr,
        tag_ids=tag_ids,
        timestamps=np.fromiter(buf_times, dtype=np.float64, count=n),
    )


def _ingest_buffer(bank, buf_rows: list, buf_tags: list, buf_times: list):
    """Encode a buffer and ingest it; ``None`` for an empty buffer."""
    batch = _encode_buffer(bank, buf_rows, buf_tags, buf_times)
    return None if batch is None else bank.ingest(batch)


class _EngineStabilityMonitor(StabilityMonitor):
    """Shared plumbing of the bank-backed monitors.

    Owns the pieces both engine backends need verbatim — the
    ``"r{i}"`` id scheme, the pending newly-stable feed, the optional
    live observed-count dicts, and every query — so the subclasses only
    provide bank construction, event buffering and :meth:`_flush`.
    (``observe_batch`` stays subclass-inlined: it is the per-event hot
    path the engine exists to keep cheap.)

    Subclass contract: :meth:`_setup` creates ``self._bank`` and its
    routing state plus empty buffers; :meth:`_buffer_posts` enqueues a
    resource's posts; :meth:`_flush_impl` ingests all buffers and routes
    each :class:`~repro.engine.columnar.IngestReport` through
    :meth:`_note_report`; :meth:`_has_buffered` reports whether a flush
    would do work (so telemetry skips the no-op flushes every query
    issues).  Consumers call :meth:`_flush`, which adds the
    ``monitor.flush`` latency histogram around the implementation when
    telemetry is enabled.
    """

    batched: ClassVar[bool] = True

    def __init__(
        self,
        omega: int,
        tau: float | None,
        flush_events: int,
        track_observed: bool,
    ) -> None:
        if flush_events < 1:
            raise AllocationError(f"flush_events must be positive, got {flush_events}")
        self.omega = omega
        self.tau = tau
        self.flush_events = flush_events
        self.track_observed = track_observed
        self._obs = obs.get()
        self._bank = None
        self._ids: list[str] = []
        self._pending: list[int] = []
        self._observed: list[dict[str, int]] | None = None

    def _setup(self, n: int) -> None:
        """Create ``self._bank``, its routing state and empty buffers."""
        raise NotImplementedError

    def _buffer_posts(self, index: int, posts: Sequence[Post]) -> None:
        """Enqueue a resource's posts for the next flush."""
        raise NotImplementedError

    def _flush_impl(self) -> None:
        """Ingest all buffers; feed every report to :meth:`_note_report`."""
        raise NotImplementedError

    def _has_buffered(self) -> bool:
        """Whether a flush would ingest anything right now."""
        raise NotImplementedError

    def _flush(self) -> None:
        """Flush buffers, recording latency/drain telemetry when enabled."""
        telemetry = self._obs
        if not telemetry.enabled or not self._has_buffered():
            self._flush_impl()
            return
        before = len(self._pending)
        started = time.perf_counter()
        self._flush_impl()
        telemetry.observe("monitor.flush", (time.perf_counter() - started) * 1000.0)
        telemetry.count("monitor.flushes")
        newly = len(self._pending) - before
        if newly:
            telemetry.count("monitor.flush_crossings", newly)

    def _note_report(self, report) -> None:
        self._pending.extend(int(rid[1:]) for rid in report.newly_stable)

    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        if len(initial_posts) != n:
            raise AllocationError("initial_posts must have length n")
        self._ids = [f"r{i}" for i in range(n)]
        self._pending = []
        self._observed = [dict() for _ in range(n)] if self.track_observed else None
        self._setup(n)
        for index, posts in enumerate(initial_posts):
            counts = None if self._observed is None else self._observed[index]
            if counts is not None:
                for post in posts:
                    for tag in post.tags:
                        counts[tag] = counts.get(tag, 0) + 1
            self._buffer_posts(index, posts)
        self._flush()

    def stable_indices(self) -> list[int]:
        if self._bank is None:
            return []
        self._flush()
        return sorted(int(rid[1:]) for rid in self._bank.stable_points())

    def drain_newly_stable(self) -> list[int]:
        if self._bank is not None:
            self._flush()
        drained = sorted(self._pending)
        self._pending = []
        telemetry = self._obs
        if telemetry.enabled:
            telemetry.count("monitor.drains")
            if drained:
                telemetry.count("monitor.newly_stable", len(drained))
        return drained

    def observed_counts(self, index: int) -> dict[str, int]:
        if self._observed is not None:
            return dict(self._observed[index])
        if self._bank is None:
            raise AllocationError("monitor used before begin()")
        self._flush()
        return self._bank.counts_of(self._ids[index])

    def ma_scores(self) -> list[float]:
        if self._bank is None:
            return []
        self._flush()
        scores = []
        for rid in self._ids:
            score = self._bank.ma_score(rid)
            scores.append(math.nan if score is None else float(score))
        return scores


class BankStabilityMonitor(_EngineStabilityMonitor):
    """Engine-backed monitor: delivery chunks coalesce into bank ingests.

    Chunks accumulate in a buffer and are applied as one vectorized CSR
    batch once ``flush_events`` of them have piled up — the bank's fixed
    per-ingest cost amortizes over thousands of events regardless of the
    caller's chunk size.  Queries flush first, so observed results are
    always exact; only the *moment* of detection is batched, the same
    trade the epoch-batched campaign backend makes.

    Args:
        omega: MA window.
        tau: Stability threshold (``None`` disables crossing detection).
        flush_events: Buffered events per bank ingest.
        track_observed: Maintain live per-resource tag-count dicts so
            :meth:`observed_counts` answers without flushing.  Campaigns
            need this (workers read counts between flushes); plain
            allocation runs leave it off and pay zero per-event cost.
    """

    def __init__(
        self,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = DEFAULT_TAU,
        *,
        flush_events: int = 4096,
        track_observed: bool = False,
    ) -> None:
        super().__init__(omega, tau, flush_events, track_observed)
        self._rows: list[int] = []
        self._buf_rows: list[int] = []
        self._buf_tags: list[tuple] = []
        self._buf_times: list[float] = []

    def _setup(self, n: int) -> None:
        from repro.engine.columnar import StabilityBank

        self._bank = StabilityBank(self.omega, self.tau, initial_rows=max(n, 1))
        self._bank.ensure(self._ids)
        rows = [self._bank.resources.lookup(rid) for rid in self._ids]
        assert all(row is not None for row in rows)
        self._rows = rows  # type: ignore[assignment]
        self._buf_rows, self._buf_tags, self._buf_times = [], [], []

    def _buffer_posts(self, index: int, posts: Sequence[Post]) -> None:
        row = self._rows[index]
        for post in posts:
            self._buf_rows.append(row)
            self._buf_tags.append(tuple(post.tags))
            self._buf_times.append(post.timestamp)

    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        if self._bank is None:
            raise AllocationError("monitor used before begin()")
        rows = self._rows
        observed = self._observed
        buf_rows, buf_tags, buf_times = self._buf_rows, self._buf_tags, self._buf_times
        for index, post in deliveries:
            buf_rows.append(rows[index])
            buf_tags.append(tuple(post.tags))
            buf_times.append(post.timestamp)
            if observed is not None:
                counts = observed[index]
                for tag in post.tags:
                    counts[tag] = counts.get(tag, 0) + 1
        if len(buf_rows) >= self.flush_events:
            self._flush()

    def _has_buffered(self) -> bool:
        return bool(self._buf_rows)

    def _flush_impl(self) -> None:
        report = _ingest_buffer(self._bank, self._buf_rows, self._buf_tags, self._buf_times)
        if report is None:
            return
        self._buf_rows, self._buf_tags, self._buf_times = [], [], []
        self._note_report(report)

    def ma_scores(self) -> list[float]:
        # vectorized override: one query for the whole population
        if self._bank is None:
            return []
        self._flush()
        _, scores = self._bank.ma_scores()
        return [float(scores[row]) for row in self._rows]


class ShardedBankStabilityMonitor(_EngineStabilityMonitor):
    """Sharded engine monitor for large-``n`` campaigns.

    Fronts a :class:`~repro.engine.shard.ShardedStabilityBank`: resources
    are routed to ``n_shards`` independent banks by the engine's stable
    CRC32 hash, so each shard's dense count block stays small while the
    monitor's answers are identical to a single bank's (the shard tests
    pin this).  Buffered deliveries are flushed shard by shard, each as
    one direct CSR batch against that shard's interners.

    Flushes run through a :class:`~repro.engine.executor.ShardExecutor`:
    every shard's buffer is encoded on the calling thread (interning is
    Python-side work) and the pure-NumPy ingest kernels are handed to
    the executor — inline for ``"serial"``, overlapped for ``"thread"``.
    Reports are consumed in shard-index order whatever the executor, so
    the monitor's answers are byte-identical at any worker count.

    Args:
        omega: MA window (shared by all shards).
        tau: Stability threshold (``None`` disables crossing detection).
        n_shards: Number of independent banks.
        flush_events: Total buffered events per flush of all shards.
        track_observed: As for :class:`BankStabilityMonitor`.
        executor: Shard-kernel executor kind
            (:data:`~repro.engine.executor.EXECUTOR_BACKENDS`).
        workers: Pool size for pooled executors (``0`` = one per core,
            capped).
        parallel_min_events: Optional override of the bank's
            inline-flush cutoff (``None`` keeps the engine default).
    """

    def __init__(
        self,
        omega: int = DEFAULT_OMEGA,
        tau: float | None = DEFAULT_TAU,
        *,
        n_shards: int = 4,
        flush_events: int = 4096,
        track_observed: bool = False,
        executor: str = "serial",
        workers: int = 0,
        parallel_min_events: int | None = None,
    ) -> None:
        if n_shards < 1:
            raise AllocationError(f"n_shards must be positive, got {n_shards}")
        super().__init__(omega, tau, flush_events, track_observed)
        from repro.engine.executor import make_executor

        self.n_shards = n_shards
        self._pending_parallel_min: int | None = parallel_min_events
        try:
            self._executor = make_executor(executor, workers)
        except Exception as exc:  # normalize to the allocation error type
            raise AllocationError(str(exc)) from exc
        self._shard_of: list[int] = []
        self._rows: list[int] = []
        self._buffers: list[tuple[list, list, list]] = []
        self._buffered = 0

    def close(self) -> None:
        """Release the executor's pooled threads (idempotent)."""
        self._executor.close()

    @property
    def parallel_min_events(self) -> int:
        """The bank's inline-flush cutoff (see
        :data:`~repro.engine.executor.PARALLEL_MIN_EVENTS`); settable
        before ``begin`` and forwarded to the bank once it exists."""
        if self._bank is not None:
            return self._bank.parallel_min_events
        if self._pending_parallel_min is not None:
            return self._pending_parallel_min
        from repro.engine.executor import PARALLEL_MIN_EVENTS

        return PARALLEL_MIN_EVENTS

    @parallel_min_events.setter
    def parallel_min_events(self, value: int) -> None:
        if self._bank is not None:
            self._bank.parallel_min_events = value
        else:
            self._pending_parallel_min = value

    def _setup(self, n: int) -> None:
        from repro.engine.shard import ShardedStabilityBank

        self._bank = ShardedStabilityBank(
            self.n_shards, self.omega, self.tau, executor=self._executor
        )
        if self._pending_parallel_min is not None:
            self._bank.parallel_min_events = self._pending_parallel_min
        self._bank.ensure(self._ids)
        self._shard_of = self._bank.shard_ids(self._ids).tolist()
        rows = [
            self._bank.shards[shard].resources.lookup(rid)
            for shard, rid in zip(self._shard_of, self._ids)
        ]
        assert all(row is not None for row in rows)
        self._rows = rows  # type: ignore[assignment]
        self._buffers = [([], [], []) for _ in range(self.n_shards)]
        self._buffered = 0

    def _buffer_posts(self, index: int, posts: Sequence[Post]) -> None:
        buf_rows, buf_tags, buf_times = self._buffers[self._shard_of[index]]
        row = self._rows[index]
        for post in posts:
            buf_rows.append(row)
            buf_tags.append(tuple(post.tags))
            buf_times.append(post.timestamp)
        self._buffered += len(posts)

    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        if self._bank is None:
            raise AllocationError("monitor used before begin()")
        shard_of, rows, buffers = self._shard_of, self._rows, self._buffers
        observed = self._observed
        for index, post in deliveries:
            buf_rows, buf_tags, buf_times = buffers[shard_of[index]]
            buf_rows.append(rows[index])
            buf_tags.append(tuple(post.tags))
            buf_times.append(post.timestamp)
            if observed is not None:
                counts = observed[index]
                for tag in post.tags:
                    counts[tag] = counts.get(tag, 0) + 1
        self._buffered += len(deliveries)
        if self._buffered >= self.flush_events:
            self._flush()

    def _has_buffered(self) -> bool:
        return self._buffered > 0

    def _flush_impl(self) -> None:
        if self._buffered == 0:
            return
        shards = self._bank.shards
        busy: list[int] = []
        batches: list = []
        # Encode every non-empty buffer on this thread (interning), then
        # hand the pure-NumPy kernels to the executor in shard order.
        for shard_index, (buf_rows, buf_tags, buf_times) in enumerate(self._buffers):
            batch = _encode_buffer(shards[shard_index], buf_rows, buf_tags, buf_times)
            if batch is not None:
                busy.append(shard_index)
                batches.append(batch)
                self._buffers[shard_index] = ([], [], [])
        if busy:
            # the bank owns the executor and the inline-flush cutoff
            for report in self._bank.ingest_encoded(busy, batches, self._buffered):
                self._note_report(report)
        self._buffered = 0


def make_monitor(
    backend: str | None,
    omega: int = DEFAULT_OMEGA,
    tau: float | None = DEFAULT_TAU,
    *,
    flush_events: int = 4096,
    track_observed: bool = False,
    n_shards: int = 4,
    executor: str = "serial",
    workers: int = 0,
    parallel_min_events: int | None = None,
) -> StabilityMonitor | None:
    """Monitor factory keyed by backend name (``None`` -> no monitoring).

    Args:
        backend: One of :data:`MONITOR_BACKENDS`, or ``None``.
        omega: MA window.
        tau: Stability threshold (``None`` disables crossing detection).
        flush_events: Engine-backed buffering grain (ignored by
            ``"tracker"``).
        track_observed: Maintain live observed-count dicts (see
            :class:`BankStabilityMonitor`; ignored by ``"tracker"``,
            whose frequency tables are always live).
        n_shards: Shard count (``"sharded"`` only).
        executor: Shard-kernel executor kind (``"sharded"`` only; one of
            :data:`~repro.engine.executor.EXECUTOR_BACKENDS`).
        workers: Pool size for pooled executors (``0`` = one per core,
            capped; ``"sharded"`` only).
        parallel_min_events: Optional inline-flush-cutoff override
            (``"sharded"`` only; ``None`` keeps the engine default).
    """
    if backend is None:
        return None
    if backend == "tracker":
        return TrackerStabilityMonitor(omega, tau)
    if backend == "engine":
        return BankStabilityMonitor(
            omega, tau, flush_events=flush_events, track_observed=track_observed
        )
    if backend == "sharded":
        return ShardedBankStabilityMonitor(
            omega,
            tau,
            n_shards=n_shards,
            flush_events=flush_events,
            track_observed=track_observed,
            executor=executor,
            workers=workers,
            parallel_min_events=parallel_min_events,
        )
    raise AllocationError(
        f"unknown stability monitor backend {backend!r} "
        f"(expected one of {MONITOR_BACKENDS})"
    )
