"""Online stability monitoring for allocation runs.

A :class:`StabilityMonitor` watches the posts a run delivers and tracks
each resource's *observed* MA score — the deployable signal behind
adaptive stopping (no ground truth involved).  Monitors never feed back
into allocation, so attaching one cannot change a trace; they exist so
:func:`repro.api.run` can report "how many resources went stable during
this run" and so the batched runner has a stability hot path worth
batching:

* :class:`TrackerStabilityMonitor` — one scalar
  :class:`~repro.core.stability.StabilityTracker` per resource, updated
  post by post.  This is the per-post Python-interpreter price the
  engine was built to avoid.
* :class:`BankStabilityMonitor` — the vectorized
  :class:`~repro.engine.columnar.StabilityBank`; a whole delivery chunk
  becomes one batched ingest, which is where
  ``IncentiveRunner.run(..., batch_size=k)`` gets its wall-clock win.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.errors import AllocationError
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, DEFAULT_TAU, StabilityTracker

__all__ = [
    "StabilityMonitor",
    "TrackerStabilityMonitor",
    "BankStabilityMonitor",
    "make_monitor",
]


class StabilityMonitor(ABC):
    """Observes delivered posts; answers "which resources look stable?"."""

    @abstractmethod
    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        """Reset for a run over ``n`` resources seeded with their initial posts."""

    @abstractmethod
    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        """Ingest one chunk of completed ``(resource index, post)`` tasks."""

    @abstractmethod
    def stable_indices(self) -> list[int]:
        """Resources whose observed MA has crossed ``tau``, ascending."""

    @property
    def stable_count(self) -> int:
        """Number of observed-stable resources so far."""
        return len(self.stable_indices())


class TrackerStabilityMonitor(StabilityMonitor):
    """Scalar baseline: one per-resource tracker, updated per post."""

    def __init__(self, omega: int = DEFAULT_OMEGA, tau: float = DEFAULT_TAU) -> None:
        self.omega = omega
        self.tau = tau
        self._trackers: list[StabilityTracker] = []

    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        if len(initial_posts) != n:
            raise AllocationError("initial_posts must have length n")
        self._trackers = [StabilityTracker(self.omega, self.tau) for _ in range(n)]
        for tracker, posts in zip(self._trackers, initial_posts):
            tracker.add_posts(posts)

    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        trackers = self._trackers
        for index, post in deliveries:
            trackers[index].add_post(post.tags)

    def stable_indices(self) -> list[int]:
        return [i for i, tracker in enumerate(self._trackers) if tracker.is_stable]


class BankStabilityMonitor(StabilityMonitor):
    """Engine-backed monitor: delivery chunks coalesce into bank ingests.

    Chunks accumulate in a buffer and are applied as one vectorized CSR
    batch once ``flush_events`` of them have piled up — the bank's fixed
    per-ingest cost amortizes over thousands of events regardless of the
    runner's chunk size.  Queries (:meth:`stable_indices`) flush first,
    so observed results are always exact; only the *moment* of detection
    is batched, the same trade the epoch-batched campaign backend makes.

    The hot path skips :class:`~repro.engine.events.TagEvent` entirely:
    resource rows are interned once at :meth:`begin`, post tag sets are
    duplicate-free by construction, and each flush builds the
    :class:`~repro.engine.events.EventBatch` directly — leaving tag
    interning as the only per-event Python work.

    Args:
        omega: MA window.
        tau: Stability threshold.
        flush_events: Buffered events per bank ingest.
    """

    def __init__(
        self,
        omega: int = DEFAULT_OMEGA,
        tau: float = DEFAULT_TAU,
        *,
        flush_events: int = 4096,
    ) -> None:
        if flush_events < 1:
            raise AllocationError(f"flush_events must be positive, got {flush_events}")
        self.omega = omega
        self.tau = tau
        self.flush_events = flush_events
        self._bank = None
        self._ids: list[str] = []
        self._rows: list[int] = []
        self._buf_rows: list[int] = []
        self._buf_tags: list[tuple] = []
        self._buf_times: list[float] = []

    def begin(self, n: int, initial_posts: Sequence[Sequence[Post]]) -> None:
        from repro.engine.columnar import StabilityBank

        if len(initial_posts) != n:
            raise AllocationError("initial_posts must have length n")
        self._ids = [f"r{i}" for i in range(n)]
        self._bank = StabilityBank(self.omega, self.tau, initial_rows=max(n, 1))
        self._bank.ensure(self._ids)
        rows = [self._bank.resources.lookup(rid) for rid in self._ids]
        assert all(row is not None for row in rows)
        self._rows = rows  # type: ignore[assignment]
        self._buf_rows, self._buf_tags, self._buf_times = [], [], []
        for index, posts in enumerate(initial_posts):
            row = self._rows[index]
            for post in posts:
                self._buf_rows.append(row)
                self._buf_tags.append(tuple(post.tags))
                self._buf_times.append(post.timestamp)
        self._flush()

    def observe_batch(self, deliveries: Sequence[tuple[int, Post]]) -> None:
        if self._bank is None:
            raise AllocationError("monitor used before begin()")
        rows = self._rows
        buf_rows, buf_tags, buf_times = self._buf_rows, self._buf_tags, self._buf_times
        for index, post in deliveries:
            buf_rows.append(rows[index])
            buf_tags.append(tuple(post.tags))
            buf_times.append(post.timestamp)
        if len(buf_rows) >= self.flush_events:
            self._flush()

    def _flush(self) -> None:
        from itertools import chain

        import numpy as np

        from repro.engine.events import EventBatch

        n = len(self._buf_rows)
        if n == 0:
            return
        lengths = np.fromiter(map(len, self._buf_tags), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        tag_ids = self._bank.tags.intern_all(list(chain.from_iterable(self._buf_tags)))
        batch = EventBatch(
            resources=np.fromiter(self._buf_rows, dtype=np.int64, count=n),
            indptr=indptr,
            tag_ids=tag_ids,
            timestamps=np.fromiter(self._buf_times, dtype=np.float64, count=n),
        )
        self._buf_rows, self._buf_tags, self._buf_times = [], [], []
        self._bank.ingest(batch)

    def stable_indices(self) -> list[int]:
        if self._bank is None:
            return []
        self._flush()
        return sorted(int(rid[1:]) for rid in self._bank.stable_points())


def make_monitor(
    backend: str | None,
    omega: int = DEFAULT_OMEGA,
    tau: float = DEFAULT_TAU,
) -> StabilityMonitor | None:
    """Monitor factory keyed by backend name (``None`` -> no monitoring)."""
    if backend is None:
        return None
    if backend == "tracker":
        return TrackerStabilityMonitor(omega, tau)
    if backend == "engine":
        return BankStabilityMonitor(omega, tau)
    raise AllocationError(
        f"unknown stability monitor backend {backend!r} (expected 'tracker' or 'engine')"
    )
