"""Incentive allocation: the paper's Section III-D and IV machinery.

* the Algorithm 1 framework (:mod:`repro.allocation.base`,
  :mod:`repro.allocation.runner`, :mod:`repro.allocation.oracle`),
* the five practical strategies — FC, RR, FP, MU, FP-MU,
* the theoretically optimal DP (Algorithm 6) with a vectorised and a
  reference implementation,
* the Section VI future-work extensions (weighted costs, tagger
  preference, offline greedy).
"""

from repro.api.registry import STRATEGIES as _STRATEGIES
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.budget import AllocationTrace, assignment_from_order
from repro.allocation.monitor import (
    MONITOR_BACKENDS,
    BankStabilityMonitor,
    ShardedBankStabilityMonitor,
    StabilityMonitor,
    TrackerStabilityMonitor,
    make_monitor,
)
from repro.allocation.dp import (
    DPResult,
    brute_force_optimal,
    gains_from_profiles,
    solve_dp,
    solve_dp_reference,
)
from repro.allocation.extensions import (
    CostAwareFewestPosts,
    PreferenceAwareMostUnstable,
    StabilityAwareFewestPosts,
    solve_greedy,
    solve_weighted_dp,
)
from repro.allocation.fewest_posts import FewestPostsFirst
from repro.allocation.free_choice import FreeChoice
from repro.allocation.hybrid import HybridFPMU
from repro.allocation.most_unstable import MostUnstableFirst
from repro.allocation.oracle import (
    GenerativeTaggerSource,
    ReplayTaggerSource,
    TaggerSource,
    popularity_chooser,
)
from repro.allocation.round_robin import RoundRobin
from repro.allocation.runner import IncentiveRunner

__all__ = [
    "AllocationContext",
    "AllocationStrategy",
    "AllocationTrace",
    "BankStabilityMonitor",
    "CostAwareFewestPosts",
    "DPResult",
    "FewestPostsFirst",
    "FreeChoice",
    "GenerativeTaggerSource",
    "HybridFPMU",
    "IncentiveRunner",
    "MONITOR_BACKENDS",
    "MostUnstableFirst",
    "PreferenceAwareMostUnstable",
    "ReplayTaggerSource",
    "RoundRobin",
    "ShardedBankStabilityMonitor",
    "StabilityAwareFewestPosts",
    "StabilityMonitor",
    "TaggerSource",
    "TrackerStabilityMonitor",
    "assignment_from_order",
    "brute_force_optimal",
    "gains_from_profiles",
    "make_monitor",
    "popularity_chooser",
    "solve_dp",
    "solve_dp_reference",
    "solve_greedy",
    "solve_weighted_dp",
]

STRATEGY_REGISTRY = _STRATEGIES.classes()
"""Legacy name -> class snapshot.

Strategies now register themselves with
:data:`repro.api.registry.STRATEGIES` (declared parameter schemas
included); this dict is kept for backward compatibility and is complete
because every strategy module above has been imported by this point.
New code should use the registry:
``repro.api.STRATEGIES.create(name, **params)``.
"""
