"""Incentive allocation: the paper's Section III-D and IV machinery.

* the Algorithm 1 framework (:mod:`repro.allocation.base`,
  :mod:`repro.allocation.runner`, :mod:`repro.allocation.oracle`),
* the five practical strategies — FC, RR, FP, MU, FP-MU,
* the theoretically optimal DP (Algorithm 6) with a vectorised and a
  reference implementation,
* the Section VI future-work extensions (weighted costs, tagger
  preference, offline greedy).
"""

from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.budget import AllocationTrace, assignment_from_order
from repro.allocation.dp import (
    DPResult,
    brute_force_optimal,
    gains_from_profiles,
    solve_dp,
    solve_dp_reference,
)
from repro.allocation.extensions import (
    CostAwareFewestPosts,
    PreferenceAwareMostUnstable,
    StabilityAwareFewestPosts,
    solve_greedy,
    solve_weighted_dp,
)
from repro.allocation.fewest_posts import FewestPostsFirst
from repro.allocation.free_choice import FreeChoice
from repro.allocation.hybrid import HybridFPMU
from repro.allocation.most_unstable import MostUnstableFirst
from repro.allocation.oracle import (
    GenerativeTaggerSource,
    ReplayTaggerSource,
    TaggerSource,
    popularity_chooser,
)
from repro.allocation.round_robin import RoundRobin
from repro.allocation.runner import IncentiveRunner

__all__ = [
    "AllocationContext",
    "AllocationStrategy",
    "AllocationTrace",
    "CostAwareFewestPosts",
    "DPResult",
    "FewestPostsFirst",
    "FreeChoice",
    "GenerativeTaggerSource",
    "HybridFPMU",
    "IncentiveRunner",
    "MostUnstableFirst",
    "PreferenceAwareMostUnstable",
    "ReplayTaggerSource",
    "RoundRobin",
    "StabilityAwareFewestPosts",
    "TaggerSource",
    "assignment_from_order",
    "brute_force_optimal",
    "gains_from_profiles",
    "popularity_chooser",
    "solve_dp",
    "solve_dp_reference",
    "solve_greedy",
    "solve_weighted_dp",
]

STRATEGY_REGISTRY = {
    "FC": FreeChoice,
    "RR": RoundRobin,
    "FP": FewestPostsFirst,
    "MU": MostUnstableFirst,
    "FP-MU": HybridFPMU,
    "FP-cost": CostAwareFewestPosts,
    "FP-stop": StabilityAwareFewestPosts,
    "MU-pref": PreferenceAwareMostUnstable,
}
"""Name -> class map used by the CLI and the experiment configs."""
