"""The Fewest Posts First strategy (FP, Section IV-C / Algorithm 3).

FP always gives the next post task to the resource with the fewest posts
so far (``c_i + x_i``).  The rationale is the diminishing-returns curve of
Fig 5: an extra post improves a 10-post resource far more than a 50-post
one.  FP is the paper's recommended strategy — nearly optimal quality,
trivially implementable, and runnable offline.

A binary heap keyed by ``(count, index)`` gives the paper's
``O((n + B) log n)`` time; the index component makes tie-breaking
deterministic.

FP's CHOOSE depends only on delivery *counts*, never on post content, so
a whole batch of future choices is computable up front:
:meth:`FewestPostsFirst.choose_batch` water-fills the count vector with
one vectorized pass (sort + ragged level expansion) and reproduces the
scalar pop/push sequence exactly — byte-identical traces at any batch
size.
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.posts import Post
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.api.registry import register_strategy

__all__ = ["FewestPostsFirst", "waterfill_plan"]


def _ragged_arange(reps: np.ndarray) -> np.ndarray:
    """``concatenate([arange(r) for r in reps])`` without the Python loop."""
    total = int(reps.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(reps) - reps
    return np.arange(total, dtype=np.int64) - np.repeat(starts, reps)


def waterfill_plan(counts: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """The first ``k`` choices of greedy fewest-first allocation.

    Reproduces exactly the sequence "repeatedly pick the id with the
    lexicographically smallest ``(count, id)``, then increment its
    count" — i.e. FP's scalar heap loop — in one vectorized pass:
    resource ``i`` emits choices at levels ``counts[i], counts[i]+1, …``
    and the choice order is all ``(level, id)`` pairs sorted
    lexicographically.

    Args:
        counts: Current post counts, one per candidate.
        ids: Resource index per candidate (the tie-breaker).
        k: Number of choices to plan, ``>= 1``.

    Returns:
        ``int64`` array of ``k`` resource ids, in choice order.
    """
    counts = np.asarray(counts, dtype=np.int64)
    ids = np.asarray(ids, dtype=np.int64)
    cs = np.sort(counts)
    prefix = np.cumsum(cs)

    def emitted_through(level: int) -> int:
        m = int(np.searchsorted(cs, level, side="right"))
        return (level + 1) * m - (int(prefix[m - 1]) if m else 0)

    # Smallest level whose cumulative emissions cover k (binary search;
    # by level cs[0] + k the minimum resource alone has emitted k+1).
    lo, hi = int(cs[0]), int(cs[0]) + k
    while lo < hi:
        mid = (lo + hi) // 2
        if emitted_through(mid) >= k:
            hi = mid
        else:
            lo = mid + 1
    reps = np.maximum(0, lo + 1 - counts)
    id_rep = np.repeat(ids, reps)
    level_rep = np.repeat(counts, reps) + _ragged_arange(reps)
    order = np.lexsort((id_rep, level_rep))[:k]
    return id_rep[order]


@register_strategy("FP")
@dataclass
class FewestPostsFirst(AllocationStrategy):
    """CHOOSE() pops the resource with the minimum ``c_i + x_i``.

    The heap holds exactly one live entry per non-exhausted resource:
    CHOOSE() pops it and UPDATE() (or ``mark_exhausted``) decides whether
    a successor entry is pushed.  The batched path plans whole chunks
    with :func:`waterfill_plan` and advances the heap optimistically;
    ``cancel_plan`` rolls the undelivered suffix back.
    """

    name: ClassVar[str] = "FP"

    _heap: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)
    _pending: int | None = field(default=None, init=False, repr=False)
    _pending_count: int = field(default=0, init=False, repr=False)
    _planned: deque[int] = field(default_factory=deque, init=False, repr=False)
    _staged: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = [(int(count), index) for index, count in enumerate(context.initial_counts)]
        heapq.heapify(self._heap)
        self._pending = None
        self._pending_count = 0
        self._planned = deque()
        self._staged = []

    def choose(self) -> int | None:
        if self._pending is not None:
            # The runner re-asked without completing the previous offer
            # (e.g. a tagger refused); keep proposing the same minimum.
            return self._pending
        if not self._heap:
            return None
        count, index = heapq.heappop(self._heap)
        self._pending = index
        self._pending_count = count
        return index

    def choose_batch(self, k: int) -> list[int]:
        if k == 1:
            # Tail of a batched run (or batch_size=1): the scalar
            # pop/pending path is cheaper than a vectorized plan of one.
            return super().choose_batch(k)
        if self._pending is not None:
            return [self._pending]
        if not self._heap:
            return []
        # Pop only the candidate prefix.  The k-task plan touches at most
        # k distinct resources, and (because greedy always serves the
        # lexicographic minimum) the touched set is a prefix of the heap's
        # (count, index) order; a further entry can participate only if
        # raising every current candidate to its count still leaves tasks
        # to hand out.  This keeps planning at O(k log n) instead of
        # rebuilding the whole heap per batch.
        candidates: list[tuple[int, int]] = []
        count_sum = 0
        while self._heap and len(candidates) < k:
            next_count, _ = self._heap[0]
            if candidates and len(candidates) * next_count - count_sum >= k:
                break  # the water level can never reach this entry
            candidates.append(heapq.heappop(self._heap))
            count_sum += next_count
        counts = np.fromiter((c for c, _ in candidates), dtype=np.int64, count=len(candidates))
        ids = np.fromiter((i for _, i in candidates), dtype=np.int64, count=len(candidates))
        plan = waterfill_plan(counts, ids, k).tolist()
        # Stage the candidates' post-plan entries instead of pushing them:
        # they re-enter the heap when the plan completes (update) or is
        # rolled back (cancel_plan) — O(k log n) either way, never O(n).
        occurrences = Counter(plan)
        self._staged = [
            (count + occurrences.get(index, 0), index) for count, index in candidates
        ]
        self._planned = deque(plan)
        return plan

    def update(self, index: int, post: Post) -> None:
        if self._planned and self._planned[0] == index:
            self._planned.popleft()  # counts were already advanced at plan time
            if not self._planned:
                for entry in self._staged:
                    heapq.heappush(self._heap, entry)
                self._staged = []
            return
        if index == self._pending:
            heapq.heappush(self._heap, (self._pending_count + 1, index))
            self._pending = None

    def cancel_plan(self) -> None:
        if not self._planned:
            return
        undelivered = Counter(self._planned)
        self._planned = deque()
        for count, index in self._staged:
            if not self.is_exhausted(index):
                heapq.heappush(
                    self._heap, (count - undelivered.get(index, 0), index)
                )
        self._staged = []

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if index == self._pending:
            self._pending = None  # dropped from the heap permanently
