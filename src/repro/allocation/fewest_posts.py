"""The Fewest Posts First strategy (FP, Section IV-C / Algorithm 3).

FP always gives the next post task to the resource with the fewest posts
so far (``c_i + x_i``).  The rationale is the diminishing-returns curve of
Fig 5: an extra post improves a 10-post resource far more than a 50-post
one.  FP is the paper's recommended strategy — nearly optimal quality,
trivially implementable, and runnable offline.

A binary heap keyed by ``(count, index)`` gives the paper's
``O((n + B) log n)`` time; the index component makes tie-breaking
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.posts import Post
from repro.allocation.base import AllocationContext, AllocationStrategy

__all__ = ["FewestPostsFirst"]


@dataclass
class FewestPostsFirst(AllocationStrategy):
    """CHOOSE() pops the resource with the minimum ``c_i + x_i``.

    The heap holds exactly one live entry per non-exhausted resource:
    CHOOSE() pops it and UPDATE() (or ``mark_exhausted``) decides whether
    a successor entry is pushed.
    """

    name: ClassVar[str] = "FP"

    _heap: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)
    _pending: int | None = field(default=None, init=False, repr=False)
    _pending_count: int = field(default=0, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = [(int(count), index) for index, count in enumerate(context.initial_counts)]
        heapq.heapify(self._heap)
        self._pending = None
        self._pending_count = 0

    def choose(self) -> int | None:
        if self._pending is not None:
            # The runner re-asked without completing the previous offer
            # (e.g. a tagger refused); keep proposing the same minimum.
            return self._pending
        if not self._heap:
            return None
        count, index = heapq.heappop(self._heap)
        self._pending = index
        self._pending_count = count
        return index

    def update(self, index: int, post: Post) -> None:
        if index == self._pending:
            heapq.heappush(self._heap, (self._pending_count + 1, index))
            self._pending = None

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if index == self._pending:
            self._pending = None  # dropped from the heap permanently
