"""Extensions from the paper's future-work list (Section VI).

The paper closes with two open directions: *post tasks with different
costs* and *taking user preference into account*.  This module implements
both, plus a fast offline greedy that serves as a near-optimal comparator
to DP in the ablation benchmarks:

* :func:`solve_weighted_dp` — optimal allocation when a task on resource
  ``i`` costs ``w_i`` reward units (budget becomes ``Σ w_i x_i <= B``);
* :class:`CostAwareFewestPosts` — FP that breaks count ties toward
  cheaper resources (the runner already refuses unaffordable offers);
* :class:`PreferenceAwareMostUnstable` — MU whose priority is the
  *expected* stability deficit ``(1 - MA) * p̂_i``, where ``p̂_i`` is a
  Beta-posterior estimate of the probability that a tagger accepts a
  task on resource ``i``, updated online from observed refusals;
* :func:`solve_greedy` — marginal-gain greedy with full future knowledge.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import ClassVar

import numpy as np

from repro.core.errors import AllocationError, BudgetError
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, StabilityTracker
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.dp import DPResult
from repro.api.registry import Param, register_strategy

__all__ = [
    "solve_weighted_dp",
    "CostAwareFewestPosts",
    "PreferenceAwareMostUnstable",
    "StabilityAwareFewestPosts",
    "solve_greedy",
]


def solve_weighted_dp(
    gains: Sequence[np.ndarray],
    costs: Sequence[int] | np.ndarray,
    budget: int,
) -> DPResult:
    """Optimal allocation with per-resource task costs.

    Maximises ``Σ_i g_i[x_i]`` subject to ``Σ_i w_i · x_i <= B`` (the
    constraint relaxes to an inequality: with heterogeneous costs an
    exact spend may be impossible).  Reduces to :func:`solve_dp`'s
    problem when all costs are 1 and capacity is tight.

    Args:
        gains: Per-resource gain tables (``gains[i][x] = q_i(c_i + x)``).
        costs: Positive integer cost per task, one per resource.
        budget: Total reward units.

    Returns:
        The optimal :class:`DPResult` (``x`` holds task counts).

    Raises:
        BudgetError: On negative budget.
        AllocationError: On non-positive or non-matching costs.
    """
    if budget < 0:
        raise BudgetError(f"budget must be non-negative, got {budget}")
    costs = np.asarray(costs, dtype=np.int64)
    if len(costs) != len(gains):
        raise AllocationError("costs must match gains length")
    if len(costs) and costs.min() < 1:
        raise AllocationError("task costs must be positive integers")

    n = len(gains)
    neg = float("-inf")
    # q[b] = best total gain using budget at most b over resources seen so far.
    q = np.zeros(budget + 1, dtype=np.float64)
    choices: list[np.ndarray] = []
    for l in range(n):
        gain = np.asarray(gains[l], dtype=np.float64)
        cap = len(gain) - 1
        w = int(costs[l])
        q_next = np.full(budget + 1, neg, dtype=np.float64)
        choice = np.zeros(budget + 1, dtype=np.int32)
        for b in range(budget + 1):
            x_max = min(cap, b // w)
            # q[b - w*x] for x = 0..x_max
            window = q[b - w * x_max : b + 1 : w][::-1] if x_max > 0 else q[b : b + 1]
            candidates = window + gain[: x_max + 1]
            best = int(np.argmax(candidates))
            q_next[b] = candidates[best]
            choice[b] = best
        q = q_next
        choices.append(choice)

    x = np.zeros(n, dtype=np.int64)
    b = budget
    for l in range(n - 1, -1, -1):
        x[l] = choices[l][b]
        b -= int(costs[l]) * int(x[l])
    return DPResult(value=float(q[budget]), x=x, budget=budget)


@register_strategy("FP-cost")
@dataclass
class CostAwareFewestPosts(AllocationStrategy):
    """FP under heterogeneous task costs.

    Priority is ``(posts so far, task cost, index)``: fewest-posts first
    (Fig 5's diminishing-returns argument is unchanged by costs), but
    among equally-tagged resources the cheaper task buys the same
    improvement for less budget.  Unaffordable resources are pruned by
    the runner via ``mark_exhausted``.
    """

    name: ClassVar[str] = "FP-cost"

    _heap: list[tuple[int, int, int]] = field(default_factory=list, init=False, repr=False)
    _pending: tuple[int, int, int] | None = field(default=None, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = [
            (int(count), context.cost_of(index), index)
            for index, count in enumerate(context.initial_counts)
        ]
        heapq.heapify(self._heap)
        self._pending = None

    def choose(self) -> int | None:
        if self._pending is not None:
            return self._pending[2]
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self._pending = entry
        return entry[2]

    def update(self, index: int, post: Post) -> None:
        if self._pending is not None and self._pending[2] == index:
            count, cost, _ = self._pending
            heapq.heappush(self._heap, (count + 1, cost, index))
            self._pending = None

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if self._pending is not None and self._pending[2] == index:
            self._pending = None


@register_strategy(
    "MU-pref",
    params={
        "omega": Param(int, DEFAULT_OMEGA, "MA window"),
        "prior_weight": Param(float, 2.0, "pseudo-count weight of the acceptance prior"),
    },
)
@dataclass
class PreferenceAwareMostUnstable(AllocationStrategy):
    """MU weighted by estimated tagger acceptance (user preference).

    Each resource's priority is the expected stability deficit a task
    offer recovers: ``(1 - MA_i) * p̂_i``, maximised.  ``p̂_i`` starts
    from an optional prior and is updated as a Beta posterior mean from
    observed accepts/refusals, so resources whose taggers never accept
    sink in priority instead of deadlocking the run.

    Args:
        omega: MA window (resources below it are ignored, as in MU).
        prior_acceptance: Initial acceptance estimates per resource
            (``None`` → optimistic 1.0 everywhere).
        prior_weight: Pseudo-count weight of the prior in the posterior.
    """

    omega: int = DEFAULT_OMEGA
    prior_acceptance: np.ndarray | None = None
    prior_weight: float = 2.0

    name: ClassVar[str] = "MU-pref"

    _heap: list[tuple[float, int]] = field(default_factory=list, init=False, repr=False)
    _trackers: dict[int, StabilityTracker] = field(default_factory=dict, init=False, repr=False)
    _accepts: dict[int, int] = field(default_factory=dict, init=False, repr=False)
    _refusals: dict[int, int] = field(default_factory=dict, init=False, repr=False)
    _pending: int | None = field(default=None, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        if self.prior_acceptance is not None and len(self.prior_acceptance) != context.n:
            raise AllocationError("prior_acceptance must have length n")
        self._heap = []
        self._trackers = {}
        self._accepts = {}
        self._refusals = {}
        self._pending = None
        for index in range(context.n):
            posts = context.initial_posts[index]
            if len(posts) < self.omega:
                continue
            tracker = StabilityTracker(self.omega)
            tracker.add_posts(posts)
            self._trackers[index] = tracker
            self._heap.append((-self._expected_deficit(index), index))
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------

    def _acceptance_estimate(self, index: int) -> float:
        prior = 1.0 if self.prior_acceptance is None else float(self.prior_acceptance[index])
        accepts = self._accepts.get(index, 0)
        refusals = self._refusals.get(index, 0)
        return (prior * self.prior_weight + accepts) / (
            self.prior_weight + accepts + refusals
        )

    def _expected_deficit(self, index: int) -> float:
        score = self._trackers[index].ma_score
        assert score is not None
        return (1.0 - score) * self._acceptance_estimate(index)

    def _push(self, index: int) -> None:
        heapq.heappush(self._heap, (-self._expected_deficit(index), index))

    # ------------------------------------------------------------------

    def choose(self) -> int | None:
        if self._pending is not None:
            return self._pending
        if not self._heap:
            return None
        _, index = heapq.heappop(self._heap)
        self._pending = index
        return index

    def update(self, index: int, post: Post) -> None:
        self._accepts[index] = self._accepts.get(index, 0) + 1
        self._trackers[index].add_post(post.tags)
        if index == self._pending:
            self._push(index)
            self._pending = None

    def notify_refusal(self, index: int) -> None:
        self._refusals[index] = self._refusals.get(index, 0) + 1
        if index == self._pending:
            # Reconsider: the refusal lowered p̂, maybe another resource
            # now has a higher expected deficit.
            self._push(index)
            self._pending = None

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if index == self._pending:
            self._pending = None

    def acceptance_estimate(self, index: int) -> float:
        """Current posterior-mean acceptance estimate for ``index``."""
        return self._acceptance_estimate(index)


@register_strategy(
    "FP-stop",
    params={
        "omega": Param(int, DEFAULT_OMEGA, "MA window of the online detector"),
        "tau": Param(float, 0.999, "observed-MA retirement threshold"),
    },
)
@dataclass
class StabilityAwareFewestPosts(AllocationStrategy):
    """FP with *online* stable-point detection.

    Plain FP keeps feeding a resource even after its rfd has stabilised —
    harmless at small budgets, wasteful at large ones.  This variant
    tracks every resource's observed MA score and retires a resource the
    moment ``m(k, omega) > tau`` on its *observed* sequence, so no ground
    truth (and no future knowledge) is used.  The retired budget flows to
    the still-unstable resources.

    Args:
        omega: MA window of the online detector.
        tau: Observed-MA retirement threshold.
    """

    omega: int = DEFAULT_OMEGA
    tau: float = 0.999

    name: ClassVar[str] = "FP-stop"

    _heap: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)
    _trackers: list[StabilityTracker] = field(default_factory=list, init=False, repr=False)
    _pending: tuple[int, int] | None = field(default=None, init=False, repr=False)
    _retired: set[int] = field(default_factory=set, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = []
        self._trackers = []
        self._pending = None
        self._retired = set()
        for index in range(context.n):
            tracker = StabilityTracker(self.omega, self.tau)
            tracker.add_posts(context.initial_posts[index])
            self._trackers.append(tracker)
            if tracker.is_stable:
                self._retired.add(index)
            else:
                self._heap.append((int(context.initial_counts[index]), index))
        heapq.heapify(self._heap)

    def choose(self) -> int | None:
        if self._pending is not None:
            return self._pending[1]
        while self._heap:
            count, index = heapq.heappop(self._heap)
            if index in self._retired or self.is_exhausted(index):
                continue
            self._pending = (count, index)
            return index
        return None

    def update(self, index: int, post: Post) -> None:
        tracker = self._trackers[index]
        tracker.add_post(post.tags)
        if self._pending is not None and self._pending[1] == index:
            count = self._pending[0] + 1
            self._pending = None
            if tracker.is_stable:
                self._retired.add(index)
            else:
                heapq.heappush(self._heap, (count, index))

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if self._pending is not None and self._pending[1] == index:
            self._pending = None

    def retired_count(self) -> int:
        """Resources retired by the online detector so far."""
        return len(self._retired)


def solve_greedy(gains: Sequence[np.ndarray], budget: int) -> DPResult:
    """Offline marginal-gain greedy (ablation comparator for DP).

    Repeatedly assigns the next task to the resource whose next post has
    the largest quality delta ``g_i[x_i + 1] - g_i[x_i]``.  Optimal when
    every gain table is concave; in general a fast approximation — the
    ablation benchmark measures how close it lands to DP on real gain
    shapes.

    Raises:
        BudgetError: If the budget exceeds total capacity.
    """
    if budget < 0:
        raise BudgetError(f"budget must be non-negative, got {budget}")
    capacity = sum(len(g) - 1 for g in gains)
    if capacity < budget:
        raise BudgetError(f"budget {budget} exceeds total task capacity {capacity}")

    x = np.zeros(len(gains), dtype=np.int64)
    heap: list[tuple[float, int]] = []
    for index, gain in enumerate(gains):
        if len(gain) > 1:
            heap.append((-(float(gain[1]) - float(gain[0])), index))
    heapq.heapify(heap)

    for _ in range(budget):
        delta_neg, index = heapq.heappop(heap)
        x[index] += 1
        gain = gains[index]
        position = int(x[index])
        if position < len(gain) - 1:
            next_delta = float(gain[position + 1]) - float(gain[position])
            heapq.heappush(heap, (-next_delta, index))

    value = float(sum(float(g[x[i]]) for i, g in enumerate(gains)))
    return DPResult(value=value, x=x, budget=budget)
