"""The Most Unstable First strategy (MU, Section IV-D / Algorithm 4).

MU gives the next post task to the resource with the *lowest MA score* —
the one whose rfd is least stable and so presumably needs help most.  Two
properties from the paper carry over exactly:

* the MA score is only defined after ``omega`` posts, so resources with
  fewer initial posts are **ignored** (the weakness FP-MU repairs);
* the incremental MA maintenance of Appendix C makes each update
  ``O(|post|)`` instead of ``O(omega * |T|)``.

Unlike FP and RR, MU's CHOOSE depends on post *content* (each delivered
post moves the chosen resource's MA score), so a batch of future choices
cannot be precomputed blindly.  :meth:`MostUnstableFirst.choose_batch`
instead exploits the window structure of Definition 7: adding one post
shifts the MA by ``(s_new - s_oldest) / (omega - 1)`` with
``s_new <= 1``, so the score after ``j`` more posts is bounded above by
a cumulative-slack sum over the *known* window entries.  As long as that
upper bound stays below the runner-up's score, the scalar loop would
provably re-choose the same resource no matter what the taggers write —
those choices are committed as a batch, keeping traces byte-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, StabilityTracker
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.api.registry import Param, register_strategy

__all__ = ["MostUnstableFirst"]


@register_strategy("MU", params={"omega": Param(int, DEFAULT_OMEGA, "MA window")})
@dataclass
class MostUnstableFirst(AllocationStrategy):
    """CHOOSE() pops the resource with the minimum MA score.

    Args:
        omega: MA window; resources with fewer than ``omega`` observed
            posts never enter the priority queue (Algorithm 4, line 3).
    """

    omega: int = DEFAULT_OMEGA

    name: ClassVar[str] = "MU"

    _heap: list[tuple[float, int]] = field(default_factory=list, init=False, repr=False)
    _trackers: dict[int, StabilityTracker] = field(default_factory=dict, init=False, repr=False)
    _pending: int | None = field(default=None, init=False, repr=False)
    _planned_index: int | None = field(default=None, init=False, repr=False)
    _planned_left: int = field(default=0, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = []
        self._trackers = {}
        self._pending = None
        self._planned_index = None
        self._planned_left = 0
        for index in range(context.n):
            posts = context.initial_posts[index]
            if len(posts) < self.omega:
                continue
            tracker = StabilityTracker(self.omega)
            tracker.add_posts(posts)
            self._trackers[index] = tracker
            score = tracker.ma_score
            assert score is not None  # guaranteed: len(posts) >= omega
            self._heap.append((score, index))
        heapq.heapify(self._heap)

    def choose(self) -> int | None:
        if self._pending is not None:
            return self._pending
        if not self._heap:
            return None
        _, index = heapq.heappop(self._heap)
        self._pending = index
        return index

    def choose_batch(self, k: int) -> list[int]:
        if k == 1:
            return super().choose_batch(k)
        if self._pending is not None:
            return [self._pending]
        if not self._heap:
            return []
        score, index = heapq.heappop(self._heap)
        if not self._heap:
            # No competitor: the scalar loop re-chooses this resource
            # forever, regardless of what its posts do to the score.
            run = k
        else:
            runner_up_score, runner_up = self._heap[0]
            # Upper bound on the score after j more posts: each post
            # drops one known window entry w and gains at most 1, moving
            # the MA by at most (1 - w) / (omega - 1); once the original
            # window has fully rotated out the dropped entries are
            # unknown (>= 0), so the slack degrades to 1 / (omega - 1).
            window = np.array(self._trackers[index].similarity_window, dtype=np.float64)
            slack = np.full(k - 1, 1.0, dtype=np.float64)
            known = min(k - 1, len(window))
            slack[:known] = 1.0 - window[:known]
            bounds = score + np.cumsum(slack) / (self.omega - 1)
            # The scalar heap breaks score ties by index.
            if index < runner_up:
                certain = bounds <= runner_up_score
            else:
                certain = bounds < runner_up_score
            run = 1 + int(np.argmin(certain)) if not certain.all() else k
        self._planned_index = index
        self._planned_left = run
        return [index] * run

    def update(self, index: int, post: Post) -> None:
        tracker = self._trackers[index]
        tracker.add_post(post.tags)
        if self._planned_left and index == self._planned_index:
            self._planned_left -= 1
            if self._planned_left == 0:
                self._planned_index = None
                score = tracker.ma_score
                assert score is not None
                heapq.heappush(self._heap, (score, index))
            return
        if index == self._pending:
            score = tracker.ma_score
            assert score is not None
            heapq.heappush(self._heap, (score, index))
            self._pending = None

    def cancel_plan(self) -> None:
        if not self._planned_left:
            return
        index = self._planned_index
        assert index is not None
        self._planned_index = None
        self._planned_left = 0
        if not self.is_exhausted(index):
            score = self._trackers[index].ma_score
            assert score is not None
            heapq.heappush(self._heap, (score, index))

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if index == self._pending:
            self._pending = None

    def ma_score_of(self, index: int) -> float | None:
        """Current MA score of ``index`` (None if below the window)."""
        tracker = self._trackers.get(index)
        return None if tracker is None else tracker.ma_score
