"""The Most Unstable First strategy (MU, Section IV-D / Algorithm 4).

MU gives the next post task to the resource with the *lowest MA score* —
the one whose rfd is least stable and so presumably needs help most.  Two
properties from the paper carry over exactly:

* the MA score is only defined after ``omega`` posts, so resources with
  fewer initial posts are **ignored** (the weakness FP-MU repairs);
* the incremental MA maintenance of Appendix C makes each update
  ``O(|post|)`` instead of ``O(omega * |T|)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, StabilityTracker
from repro.allocation.base import AllocationContext, AllocationStrategy

__all__ = ["MostUnstableFirst"]


@dataclass
class MostUnstableFirst(AllocationStrategy):
    """CHOOSE() pops the resource with the minimum MA score.

    Args:
        omega: MA window; resources with fewer than ``omega`` observed
            posts never enter the priority queue (Algorithm 4, line 3).
    """

    omega: int = DEFAULT_OMEGA

    name: ClassVar[str] = "MU"

    _heap: list[tuple[float, int]] = field(default_factory=list, init=False, repr=False)
    _trackers: dict[int, StabilityTracker] = field(default_factory=dict, init=False, repr=False)
    _pending: int | None = field(default=None, init=False, repr=False)

    def initialize(self, context: AllocationContext) -> None:
        super().initialize(context)
        self._heap = []
        self._trackers = {}
        self._pending = None
        for index in range(context.n):
            posts = context.initial_posts[index]
            if len(posts) < self.omega:
                continue
            tracker = StabilityTracker(self.omega)
            tracker.add_posts(posts)
            self._trackers[index] = tracker
            score = tracker.ma_score
            assert score is not None  # guaranteed: len(posts) >= omega
            self._heap.append((score, index))
        heapq.heapify(self._heap)

    def choose(self) -> int | None:
        if self._pending is not None:
            return self._pending
        if not self._heap:
            return None
        _, index = heapq.heappop(self._heap)
        self._pending = index
        return index

    def update(self, index: int, post: Post) -> None:
        tracker = self._trackers[index]
        tracker.add_post(post.tags)
        if index == self._pending:
            score = tracker.ma_score
            assert score is not None
            heapq.heappush(self._heap, (score, index))
            self._pending = None

    def mark_exhausted(self, index: int) -> None:
        super().mark_exhausted(index)
        if index == self._pending:
            self._pending = None

    def ma_score_of(self, index: int) -> float | None:
        """Current MA score of ``index`` (None if below the window)."""
        tracker = self._trackers.get(index)
        return None if tracker is None else tracker.ma_score
