"""Render telemetry snapshots / trace files as human-readable tables.

Backs the ``repro-tagging stats`` CLI command.  :func:`load_stats`
accepts any of the three on-disk shapes telemetry produces and
normalises them to the snapshot dict:

* a snapshot JSON file (``{"counters": ..., "gauges": ...,
  "histograms": ...}``) — written by ``TelemetrySpec.snapshot_path`` or
  :meth:`~repro.obs.telemetry.Telemetry.write_snapshot`;
* a ``RunResult`` JSON file — the embedded ``telemetry`` payload is
  extracted;
* a JSONL Chrome-trace stream — span events (``ph: "X"``) are
  aggregated back into per-name latency summaries (exact percentiles,
  since the trace holds every duration) and instant events (``ph:
  "i"``) into counters.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

__all__ = ["load_stats", "render_snapshot"]


def _percentile(ordered: list[float], q: float) -> float:
    """Exact inverted-CDF percentile of an already-sorted sample."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _snapshot_from_trace(lines: list[str]) -> dict[str, Any]:
    durations: dict[str, list[float]] = {}
    counters: dict[str, int] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        phase = event.get("ph")
        name = str(event.get("name", "?"))
        if phase == "X":
            durations.setdefault(name, []).append(float(event.get("dur", 0.0)) / 1000.0)
        elif phase == "i":
            counters[name] = counters.get(name, 0) + 1
    histograms: dict[str, dict[str, float]] = {}
    for name, values in sorted(durations.items()):
        values.sort()
        histograms[name] = {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
            "min": values[0],
            "max": values[-1],
        }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {},
        "histograms": histograms,
    }


def load_stats(path: str | Path) -> dict[str, Any]:
    """Load ``path`` (snapshot / RunResult / JSONL trace) as a snapshot dict."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.strip()
    if not stripped:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError:
        # not a single JSON document: treat as a JSONL trace stream
        return _snapshot_from_trace(stripped.splitlines())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object or JSONL trace")
    if "ph" in payload and "name" in payload:  # a one-event trace stream
        return _snapshot_from_trace(stripped.splitlines())
    if "telemetry" in payload and "kind" in payload:  # a RunResult dump
        payload = payload["telemetry"] or {}
    return {
        "counters": dict(payload.get("counters", {})),
        "gauges": dict(payload.get("gauges", {})),
        "histograms": dict(payload.get("histograms", {})),
    }


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return f"{value:,}"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:])]
        return "  " + "  ".join(parts).rstrip()
    lines = [fmt(headers), "  " + "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return lines


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """A multi-section plain-text table for one telemetry snapshot."""
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if not (counters or gauges or histograms):
        return "telemetry: no data recorded"

    sections: list[str] = []
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            rows.append(
                [
                    name,
                    _format_value(int(h.get("count", 0))),
                    _format_value(h.get("p50", math.nan)),
                    _format_value(h.get("p95", math.nan)),
                    _format_value(h.get("p99", math.nan)),
                    _format_value(h.get("mean", math.nan)),
                    _format_value(h.get("max", math.nan)),
                ]
            )
        sections.append("latency (ms)")
        sections.extend(
            _table(["histogram", "count", "p50", "p95", "p99", "mean", "max"], rows)
        )
    if counters:
        rows = [[name, _format_value(counters[name])] for name in sorted(counters)]
        if sections:
            sections.append("")
        sections.append("counters")
        sections.extend(_table(["counter", "value"], rows))
    if gauges:
        rows = [[name, _format_value(gauges[name])] for name in sorted(gauges)]
        if sections:
            sections.append("")
        sections.append("gauges")
        sections.extend(_table(["gauge", "value"], rows))
    return "\n".join(sections)
