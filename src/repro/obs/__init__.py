"""repro.obs — process-local telemetry: counters, histograms, spans.

The hot-path contract: capture the active telemetry once at component
construction (``self._obs = obs.get()``) and guard each instrumentation
point with ``if self._obs.enabled:``.  When telemetry is off (the
default), the active instance is the shared :data:`NULL` singleton and
each point costs one attribute check.

See :mod:`repro.obs.telemetry` for the full design notes and
:mod:`repro.obs.render` for the ``repro-tagging stats`` table renderer.
"""

from repro.obs.telemetry import (
    BUCKETS_PER_DECADE,
    GROWTH,
    NULL,
    LatencyHistogram,
    NullTelemetry,
    Telemetry,
    activated,
    get,
    set_active,
    telemetry_from_env,
)
from repro.obs.render import load_stats, render_snapshot

__all__ = [
    "BUCKETS_PER_DECADE",
    "GROWTH",
    "NULL",
    "LatencyHistogram",
    "NullTelemetry",
    "Telemetry",
    "activated",
    "get",
    "load_stats",
    "render_snapshot",
    "set_active",
    "telemetry_from_env",
]
